//! Offline stand-in for `criterion` (API subset).
//!
//! A minimal wall-clock micro-benchmark harness exposing the names this
//! workspace's benches use: [`Criterion`], [`black_box`], [`BenchmarkId`],
//! [`Throughput`], benchmark groups, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up for ~3 timed batches,
//! then the iteration count is scaled until one sample batch runs at
//! least ~50 ms; `sample_count` such batches are timed and the per-
//! iteration mean/min/max are printed. No plots, no statistics files —
//! numbers go to stdout. Substring filtering via the first CLI argument
//! works like the real crate (`cargo bench -- <filter>`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `"{function}/{parameter}"`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter component.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Allows `bench_function("name", ..)` and `bench_function(BenchmarkId::new(..), ..)`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Units processed per iteration, reported as a rate alongside the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Advisory input-size hint for [`Bencher::iter_batched`] (accepted for
/// signature compatibility; this shim caps batch sizes itself).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    sample_count: usize,
    result: &'a mut Sample,
}

#[derive(Debug, Default, Clone, Copy)]
struct Sample {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: grow the batch until it is long enough
        // to time reliably.
        let mut batch: u64 = 1;
        let mut elapsed = Duration::ZERO;
        for _ in 0..12 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) {
                break;
            }
            // Aim the next batch at ~100 ms based on what we just saw.
            // Sub-nanosecond routines round to zero under integer
            // division; clamp after dividing so the batch target below
            // never divides by zero.
            let per_iter = (elapsed.as_nanos() / batch as u128).max(1);
            batch = (100_000_000u128 / per_iter).clamp(batch as u128 + 1, 1_000_000_000) as u64;
        }

        let mut means: Vec<f64> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            means.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        if means.is_empty() {
            means.push(elapsed.as_nanos() as f64 / batch as f64);
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        *self.result = Sample {
            mean_ns: mean,
            min_ns: means.iter().copied().fold(f64::INFINITY, f64::min),
            max_ns: means.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        };
    }

    /// Like [`Bencher::iter`], but each iteration consumes a fresh input
    /// built by `setup`; only `routine` is timed. Batches are capped at
    /// 1024 inputs so setup memory stays bounded regardless of the
    /// [`BatchSize`] hint.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut batch: u64 = 1;
        let mut elapsed = Duration::ZERO;
        for _ in 0..12 {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) {
                break;
            }
            let per_iter = elapsed.as_nanos().max(1) / batch as u128;
            batch = (100_000_000u128 / per_iter).clamp(batch as u128 + 1, 1024) as u64;
        }

        let mut means: Vec<f64> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            means.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        if means.is_empty() {
            means.push(elapsed.as_nanos() as f64 / batch as f64);
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        *self.result = Sample {
            mean_ns: mean,
            min_ns: means.iter().copied().fold(f64::INFINITY, f64::min),
            max_ns: means.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        };
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark manager: owns the CLI filter and print formatting.
pub struct Criterion {
    filter: Option<String>,
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            sample_count: 10,
        }
    }
}

impl Criterion {
    /// Reads the benchmark filter from the command line (first free
    /// argument, as `cargo bench -- <filter>` passes it).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && !a.is_empty());
        Criterion {
            filter,
            ..Default::default()
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(
        &mut self,
        id: &str,
        sample_count: usize,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.matches(id) {
            return;
        }
        let mut sample = Sample::default();
        f(&mut Bencher {
            sample_count,
            result: &mut sample,
        });
        let rate = match throughput {
            Some(Throughput::Elements(n)) if sample.mean_ns > 0.0 => {
                format!(
                    "  thrpt: {:.3} Melem/s",
                    n as f64 / sample.mean_ns * 1_000.0
                )
            }
            Some(Throughput::Bytes(n)) if sample.mean_ns > 0.0 => {
                format!("  thrpt: {:.3} MiB/s", n as f64 / sample.mean_ns * 953.674)
            }
            _ => String::new(),
        };
        println!(
            "{id:<48} time: [{} {} {}]{rate}",
            format_ns(sample.min_ns),
            format_ns(sample.mean_ns),
            format_ns(sample.max_ns),
        );
    }

    /// Benchmarks a single function.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let samples = self.sample_count;
        self.run_one(&id.id, samples, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: None,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_count: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed sample batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion requires >= 10; accept anything >= 1 here.
        self.sample_count = Some(n.clamp(1, 100));
        self
    }

    /// Sets the throughput used for rate reporting of later benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        let throughput = self.throughput;
        self.criterion.run_one(&full, samples, throughput, &mut f);
        self
    }

    /// Benchmarks a function parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        let throughput = self.throughput;
        self.criterion
            .run_one(&full, samples, throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op marker).
    pub fn finish(self) {}
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut sample = Sample::default();
        let mut b = Bencher {
            sample_count: 3,
            result: &mut sample,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(17));
            acc
        });
        assert!(sample.mean_ns > 0.0);
        assert!(sample.min_ns <= sample.mean_ns && sample.mean_ns <= sample.max_ns);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("insert", 512).id, "insert/512");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }

    #[test]
    fn filter_matches_substrings() {
        let c = Criterion {
            filter: Some("pst".into()),
            sample_count: 10,
        };
        assert!(c.matches("group/pst_insert/4"));
        assert!(!c.matches("group/similarity/4"));
        let all = Criterion::default();
        assert!(all.matches("anything"));
    }
}
