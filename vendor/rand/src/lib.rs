//! Offline stand-in for the `rand` crate (API subset).
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the slice of `rand`'s API it actually uses:
//! [`rngs::StdRng`] (a xoshiro256++ generator seeded via SplitMix64),
//! the [`Rng`] / [`SeedableRng`] traits, [`seq::SliceRandom`], and the
//! [`distributions`] module with `Uniform`, `WeightedIndex`, and the
//! `Standard` distribution.
//!
//! Determinism contract: for a fixed seed, every generator here produces
//! the same stream on every platform and every run. Numeric streams are
//! *not* identical to the real `rand` crate's (`StdRng` there is ChaCha12)
//! — all in-repo seeds, golden tests, and experiment tables are defined
//! against this implementation.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`](distributions::Standard)
    /// distribution (`f64` is uniform in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Small, fast, and high quality for simulation workloads; seeded by
    /// expanding a 64-bit seed with SplitMix64 so that nearby seeds give
    /// unrelated streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Workspace extension (not in the real `rand` API): the raw
        /// xoshiro256++ state words, in order. Together with
        /// [`StdRng::from_state`] this lets a long-running computation
        /// checkpoint its generator mid-stream and resume the exact
        /// numeric stream later — the crash-recovery path depends on it.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Workspace extension (not in the real `rand` API): rebuilds a
        /// generator from [`StdRng::state`] output. The restored generator
        /// continues the original stream bit for bit.
        ///
        /// # Panics
        ///
        /// Panics if all four words are zero — the all-zero state is a
        /// fixed point of xoshiro256++ (the generator would emit zeros
        /// forever) and is unreachable from any seeded generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "all-zero xoshiro256++ state is degenerate"
            );
            StdRng { s }
        }

        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// A distribution over values of `T`, sampled with any generator.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: uniform bits for integers,
    /// uniform `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub mod uniform {
        use super::super::RngCore;

        /// Types `Uniform` and `gen_range` can sample.
        pub trait SampleUniform: Sized + Copy + PartialOrd {
            /// Uniform draw from `[lo, hi)`; `inclusive` widens to `[lo, hi]`.
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        if inclusive {
                            assert!(lo <= hi, "empty sampling range");
                        } else {
                            assert!(lo < hi, "empty sampling range");
                        }
                        // Width as u128 so `lo..=hi` spanning the full
                        // domain cannot overflow.
                        let span = (hi as i128 - lo as i128) as u128
                            + if inclusive { 1 } else { 0 };
                        // Rejection-free multiply-shift would need 128-bit
                        // widening per type; plain modulo is fine here (the
                        // bias at span << 2^64 is far below what any test
                        // or experiment in this workspace can observe).
                        let offset = (rng.next_u64() as u128 % span) as i128;
                        (lo as i128 + offset) as $t
                    }
                }
            )*};
        }
        impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_sample_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        assert!(lo < hi, "empty sampling range");
                        let unit =
                            (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                        lo + unit * (hi - lo)
                    }
                }
            )*};
        }
        impl_sample_uniform_float!(f32, f64);

        /// Ranges acceptable to [`Rng::gen_range`](crate::Rng::gen_range).
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_uniform(self.start, self.end, false, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_uniform(*self.start(), *self.end(), true, rng)
            }
        }
    }

    pub use uniform::SampleUniform;

    /// Uniform distribution over a fixed range, reusable across draws.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_uniform(self.lo, self.hi, self.inclusive, rng)
        }
    }

    /// Error from constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl core::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            let msg = match self {
                WeightedError::NoItem => "no weights provided",
                WeightedError::InvalidWeight => "negative or non-finite weight",
                WeightedError::AllWeightsZero => "all weights are zero",
            };
            f.write_str(msg)
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..n` proportionally to the given weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex<W> {
        cumulative: Vec<W>,
    }

    impl WeightedIndex<f64> {
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: core::borrow::Borrow<f64>,
        {
            use core::borrow::Borrow;
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !(w.is_finite() && w >= 0.0) {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative })
        }
    }

    impl Distribution<usize> for WeightedIndex<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let total = *self.cumulative.last().expect("non-empty by construction");
            let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * total;
            // First cumulative weight strictly above x; zero-weight entries
            // (cumulative equal to their predecessor) are never selected.
            let i = self.cumulative.partition_point(|&c| c <= x);
            i.min(self.cumulative.len() - 1)
        }
    }
}

pub mod seq {
    use super::distributions::uniform::SampleRange;
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle, deterministic for a fixed generator state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform, WeightedIndex};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.gen::<u64>();
        }
        let mut resumed = StdRng::from_state(rng.state());
        let expect: Vec<u64> = (0..8).map(|_| rng.gen::<u64>()).collect();
        let got: Vec<u64> = (0..8).map(|_| resumed.gen::<u64>()).collect();
        assert_eq!(expect, got);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_is_rejected() {
        StdRng::from_state([0; 4]);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let dist = Uniform::new_inclusive(0u16, 3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[dist.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let dist = WeightedIndex::new([1.0, 0.0, 9.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight is never drawn");
        assert!(counts[2] > counts[0] * 5, "counts: {counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_inputs() {
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new([1.0, -1.0]).is_err());
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
