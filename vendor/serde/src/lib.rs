//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its parameter and
//! result types for downstream embedders, but deliberately uses no serde
//! *format* crate anywhere (persistence goes through `cluseq-seq`'s own
//! binary codec). That means nothing in-tree ever calls serde's data-model
//! machinery — so in this network-less build environment the traits can be
//! satisfied by universal marker impls, and the derive macros (re-exported
//! from [`serde_derive`]) expand to nothing.
//!
//! If a future PR adds a real serializer, replace this shim with the real
//! crates via a vendored registry.

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
