//! Offline stand-in for `proptest` (API subset).
//!
//! Provides the pieces this workspace's property tests use: the
//! [`proptest!`] macro with optional `#![proptest_config(..)]`, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, range / tuple strategies, [`collection::vec`],
//! [`option::of`], [`bool::ANY`], and the `prop_assert*` / `prop_assume`
//! macros.
//!
//! Differences from the real crate, on purpose:
//!
//! - **No shrinking.** A failing case reports the generated inputs
//!   verbatim; cases here are small enough to debug unshrunk.
//! - **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   its module path and name, so failures reproduce exactly across runs
//!   and machines (set `PROPTEST_SEED_OFFSET` to explore other streams).
//! - **No persistence.** There is no failure-regression file.

/// Deterministic RNG and error plumbing for the runner macro.
pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried with
        /// fresh ones and does not count toward the case budget.
        Reject(String),
        /// `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// xoshiro256++ with SplitMix64 seeding (same construction as the
    /// vendored `rand` shim, duplicated to keep this crate dependency-free).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn from_seed(mut seed: u64) -> Self {
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Seeded from the test's fully qualified name (FNV-1a), plus the
        /// optional `PROPTEST_SEED_OFFSET` environment variable.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let offset = std::env::var("PROPTEST_SEED_OFFSET")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            Self::from_seed(h.wrapping_add(offset))
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[lo, hi]` (used for sizes and integer strategies).
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            lo + (self.next_u64() as u128 % span) as u64
        }

        pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
            debug_assert!(lo <= hi);
            let span = (hi as i128 - lo as i128) as u128 + 1;
            (lo as i128 + (self.next_u64() as u128 % span) as i128) as i64
        }
    }
}

/// Runner configuration (`#![proptest_config(..)]`).
pub mod config {
    /// The subset of proptest's config this runner honours.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Rejection budget (`prop_assume!`) before the test errors out.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Generates random values of an associated type.
    ///
    /// Unlike real proptest there is no value tree: generation is direct
    /// and there is no shrinking.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values failing the predicate (retrying, up
        /// to a bound, rather than rejecting the whole case).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({}) rejected 10000 candidates in a row",
                self.whence
            );
        }
    }

    macro_rules! impl_range_strategy_unsigned {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    rng.range_u64(self.start as u64, self.end as u64 - 1) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_u64(*self.start() as u64, *self.end() as u64) as $t
                }
            }
        )*};
    }
    impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_signed {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    rng.range_i64(self.start as i64, self.end as i64 - 1) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_i64(*self.start() as i64, *self.end() as i64) as $t
                }
            }
        )*};
    }
    impl_range_strategy_signed!(i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    }

    /// Marker for types with a canonical strategy (only what the
    /// workspace needs).
    pub struct Any<T>(PhantomData<T>);

    impl<T> Any<T> {
        pub const ANY: Any<T> = Any(PhantomData);
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `prop::collection` — sized collections of strategy-generated elements.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Bounds for generated collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option` — optional values.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `None` roughly a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `prop::bool` — boolean strategies.
pub mod bool {
    /// Uniformly random booleans.
    pub const ANY: crate::strategy::Any<::core::primitive::bool> =
        crate::strategy::Any::<::core::primitive::bool>::ANY;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias module so `prop::collection::vec(..)` paths resolve.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}\n  both: {:?}", format!($($fmt)*), l);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// The property-test block: a config attribute plus `fn name(bindings in
/// strategies) { body }` items, each expanded into a `#[test]`-compatible
/// function that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::config::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __config: $crate::config::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                let __values = ($($crate::strategy::Strategy::generate(&$strategy, &mut __rng),)+);
                let __described = format!("{:?}", __values);
                let ($($pat,)+) = __values;
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __outcome {
                    Ok(()) => __passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __config.max_global_rejects,
                            "{} rejected {} inputs without completing {} cases (last: {})",
                            stringify!($name), __rejected, __config.cases, __why,
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(__why)) => panic!(
                        "proptest case failed for {}\ninputs ({}): {}\n{}",
                        stringify!($name),
                        stringify!(($($pat),+)),
                        __described,
                        __why,
                    ),
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_honour_bounds(x in 3u16..9, y in -4i32..=4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_and_maps_compose(v in prop::collection::vec((0u16..5).prop_map(|s| s * 2), 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!(v.iter().all(|&s| s % 2 == 0 && s < 10));
        }

        #[test]
        fn option_tuple_and_assume(pair in (prop::option::of(0u32..4), prop::bool::ANY)) {
            let (opt, flag) = pair;
            prop_assume!(opt.is_some() || flag);
            prop_assert!(opt.is_none_or(|x| x < 4));
        }

        #[test]
        fn flat_map_links_dimensions(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u8..=1, n..=n))) {
            prop_assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("some::test");
        let mut b = crate::test_runner::TestRng::deterministic("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("other::test");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        // No #[test] attribute on the inner fn: it is invoked by hand
        // below (a nested #[test] would be unrunnable and warns).
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 10, "x was {}", x);
            }
        }
        always_fails();
    }
}
