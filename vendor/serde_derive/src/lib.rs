//! No-op derive macros backing the vendored `serde` stand-in.
//!
//! The real trait impls come from blanket impls in the `serde` shim, so
//! these derives only need to (a) exist, and (b) accept `#[serde(...)]`
//! helper attributes without error. They expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
