//! Wall-clock measurement helpers for the response-time tables.

use std::time::{Duration, Instant};

/// A simple stopwatch accumulating named laps.
///
/// The experiment binaries use it to report per-phase response times in the
/// same layout as the paper's tables.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
    laps: Vec<(String, Duration)>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Starts the stopwatch.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            laps: Vec::new(),
        }
    }

    /// Records the time since the previous lap (or start) under `name`.
    ///
    /// Clock-safe end to end: the elapsed reading saturates at zero
    /// instead of panicking, so a platform whose monotonic clock steps
    /// coarsely (or a lap recorded within the clock's resolution of the
    /// previous one) yields a zero-length lap rather than a `Duration`
    /// underflow panic.
    pub fn lap(&mut self, name: &str) -> Duration {
        let d = Instant::now().saturating_duration_since(self.start);
        let prev: Duration = self.laps.iter().map(|(_, d)| *d).sum();
        let lap = d.checked_sub(prev).unwrap_or_default();
        self.laps.push((name.to_owned(), lap));
        lap
    }

    /// Total elapsed time since the stopwatch started.
    pub fn total(&self) -> Duration {
        self.start.elapsed()
    }

    /// The recorded laps.
    pub fn laps(&self) -> &[(String, Duration)] {
        &self.laps
    }

    /// Times a closure, returning its result and the elapsed wall-clock.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
        let start = Instant::now();
        let out = f();
        (out, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_accumulate() {
        let mut sw = Stopwatch::new();
        sw.lap("a");
        sw.lap("b");
        assert_eq!(sw.laps().len(), 2);
        assert_eq!(sw.laps()[0].0, "a");
    }

    #[test]
    fn time_returns_result_and_duration() {
        let (v, d) = Stopwatch::time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn rapid_laps_never_underflow() {
        // Back-to-back laps land within the clock's resolution of each
        // other; each must come out as a (possibly zero) duration, never
        // a subtraction panic.
        let mut sw = Stopwatch::new();
        for i in 0..1_000 {
            sw.lap(&format!("lap{i}"));
        }
        let lap_sum: Duration = sw.laps().iter().map(|(_, d)| *d).sum();
        assert!(sw.total() >= lap_sum);
    }

    #[test]
    fn total_is_at_least_sum_of_laps() {
        let mut sw = Stopwatch::new();
        sw.lap("x");
        let lap_sum: Duration = sw.laps().iter().map(|(_, d)| *d).sum();
        assert!(sw.total() >= lap_sum);
    }
}
