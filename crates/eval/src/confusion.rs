//! Cluster ↔ class matching and per-class precision/recall.
//!
//! The paper's quality numbers are all derived from a matching between
//! discovered clusters and ground-truth classes:
//!
//! * per-family **precision** `|F ∩ F′| / |F′|` and **recall**
//!   `|F ∩ F′| / |F|` (Tables 3, 4), where `F` is the set of sequences
//!   actually in the family and `F′` the set assigned to the matched
//!   cluster;
//! * the overall **percentage of correctly labeled** sequences (Table 2):
//!   a sequence is correct when it belongs to the cluster matched to its
//!   true class, and an outlier is correct when it belongs to no cluster.
//!
//! Clusters may overlap (CLUSEQ's are "possibly overlapped"), so the
//! confusion matrix is built from membership lists, not a partition.

use serde::{Deserialize, Serialize};

use crate::hungarian::hungarian_max;

/// How clusters are matched to ground-truth classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchStrategy {
    /// Optimal one-to-one matching maximizing total overlap
    /// (Kuhn–Munkres). The default.
    Hungarian,
    /// Repeatedly match the (cluster, class) pair with the largest
    /// remaining overlap. Faster, and what many clustering papers of the
    /// era effectively used.
    Greedy,
}

/// Quality numbers for one ground-truth class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// The external class label.
    pub class: u32,
    /// Number of sequences truly in the class (`|F|`).
    pub size: usize,
    /// Index of the matched cluster, if any.
    pub cluster: Option<usize>,
    /// `|F ∩ F′| / |F′|` (1.0 when the matched cluster is empty or absent).
    pub precision: f64,
    /// `|F ∩ F′| / |F|`.
    pub recall: f64,
}

impl ClassMetrics {
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let denom = self.precision + self.recall;
        if denom == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / denom
        }
    }
}

/// A cluster-vs-class confusion structure over possibly-overlapping
/// clusters, with a computed matching.
#[derive(Debug, Clone)]
pub struct Confusion {
    /// Distinct ground-truth labels, sorted (dense class index → label).
    classes: Vec<u32>,
    /// `overlap[cluster][class]` = members of the cluster with that label.
    overlap: Vec<Vec<usize>>,
    cluster_sizes: Vec<usize>,
    class_sizes: Vec<usize>,
    /// cluster index → dense class index.
    matching: Vec<Option<usize>>,
    total_sequences: usize,
    correct: usize,
}

impl Confusion {
    /// Builds the confusion structure.
    ///
    /// `labels[i]` is the ground-truth class of sequence `i` (`None` for a
    /// planted outlier); `clusters[k]` lists the sequence ids in cluster
    /// `k` (ids may repeat across clusters but not within one).
    ///
    /// # Panics
    ///
    /// Panics if any member id is out of range.
    pub fn new(labels: &[Option<u32>], clusters: &[Vec<usize>], strategy: MatchStrategy) -> Self {
        let mut classes: Vec<u32> = labels.iter().copied().flatten().collect();
        classes.sort_unstable();
        classes.dedup();
        let class_index = |label: u32| classes.binary_search(&label).unwrap();

        let mut class_sizes = vec![0usize; classes.len()];
        for l in labels.iter().flatten() {
            class_sizes[class_index(*l)] += 1;
        }

        let mut overlap = vec![vec![0usize; classes.len()]; clusters.len()];
        let mut cluster_sizes = vec![0usize; clusters.len()];
        for (k, members) in clusters.iter().enumerate() {
            cluster_sizes[k] = members.len();
            for &i in members {
                assert!(i < labels.len(), "member id {i} out of range");
                if let Some(l) = labels[i] {
                    overlap[k][class_index(l)] += 1;
                }
            }
        }

        let matching = match strategy {
            MatchStrategy::Hungarian => {
                let weights: Vec<Vec<f64>> = overlap
                    .iter()
                    .map(|row| row.iter().map(|&c| c as f64).collect())
                    .collect();
                hungarian_max(&weights)
            }
            MatchStrategy::Greedy => greedy_match(&overlap),
        };

        // Correctly-labeled count: clustered sequences must sit in their
        // class's matched cluster; outliers must sit in no cluster.
        let mut in_matched = vec![false; labels.len()];
        let mut clustered = vec![false; labels.len()];
        for (k, members) in clusters.iter().enumerate() {
            for &i in members {
                clustered[i] = true;
            }
            if let Some(class) = matching[k] {
                for &i in members {
                    if labels[i].map(class_index) == Some(class) {
                        in_matched[i] = true;
                    }
                }
            }
        }
        let correct = labels
            .iter()
            .enumerate()
            .filter(|&(i, l)| match l {
                Some(_) => in_matched[i],
                None => !clustered[i],
            })
            .count();

        Self {
            classes,
            overlap,
            cluster_sizes,
            class_sizes,
            matching,
            total_sequences: labels.len(),
            correct,
        }
    }

    /// The distinct ground-truth labels, sorted.
    pub fn classes(&self) -> &[u32] {
        &self.classes
    }

    /// The matched class (dense index) of cluster `k`.
    pub fn matched_class(&self, k: usize) -> Option<usize> {
        self.matching.get(k).copied().flatten()
    }

    /// Fraction of correctly labeled sequences (Table 2's headline metric).
    pub fn accuracy(&self) -> f64 {
        if self.total_sequences == 0 {
            return 1.0;
        }
        self.correct as f64 / self.total_sequences as f64
    }

    /// Per-class precision/recall through the matching.
    pub fn class_metrics(&self) -> Vec<ClassMetrics> {
        let mut out: Vec<ClassMetrics> = self
            .classes
            .iter()
            .enumerate()
            .map(|(ci, &class)| {
                let cluster = self.matching.iter().position(|&m| m == Some(ci));
                let (precision, recall) = match cluster {
                    Some(k) => {
                        let hit = self.overlap[k][ci] as f64;
                        let p = if self.cluster_sizes[k] == 0 {
                            1.0
                        } else {
                            hit / self.cluster_sizes[k] as f64
                        };
                        let r = if self.class_sizes[ci] == 0 {
                            1.0
                        } else {
                            hit / self.class_sizes[ci] as f64
                        };
                        (p, r)
                    }
                    None => (1.0, 0.0),
                };
                ClassMetrics {
                    class,
                    size: self.class_sizes[ci],
                    cluster,
                    precision,
                    recall,
                }
            })
            .collect();
        // Largest families first, matching the paper's Table 3 layout.
        out.sort_by(|a, b| b.size.cmp(&a.size).then(a.class.cmp(&b.class)));
        out
    }

    /// Unweighted mean precision over classes.
    pub fn macro_precision(&self) -> f64 {
        mean(self.class_metrics().iter().map(|m| m.precision))
    }

    /// Unweighted mean recall over classes.
    pub fn macro_recall(&self) -> f64 {
        mean(self.class_metrics().iter().map(|m| m.recall))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn greedy_match(overlap: &[Vec<usize>]) -> Vec<Option<usize>> {
    let clusters = overlap.len();
    let classes = overlap.first().map_or(0, |r| r.len());
    let mut matching = vec![None; clusters];
    let mut cluster_used = vec![false; clusters];
    let mut class_used = vec![false; classes];
    loop {
        let mut best = 0usize;
        let mut best_pair = None;
        for (k, row) in overlap.iter().enumerate() {
            if cluster_used[k] {
                continue;
            }
            for (c, &o) in row.iter().enumerate() {
                if !class_used[c] && o > best {
                    best = o;
                    best_pair = Some((k, c));
                }
            }
        }
        match best_pair {
            Some((k, c)) => {
                matching[k] = Some(c);
                cluster_used[k] = true;
                class_used[c] = true;
            }
            None => break,
        }
    }
    matching
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(v: &[i64]) -> Vec<Option<u32>> {
        v.iter()
            .map(|&x| if x < 0 { None } else { Some(x as u32) })
            .collect()
    }

    #[test]
    fn perfect_clustering_scores_one() {
        let l = labels(&[0, 0, 1, 1]);
        let clusters = vec![vec![0, 1], vec![2, 3]];
        let c = Confusion::new(&l, &clusters, MatchStrategy::Hungarian);
        assert_eq!(c.accuracy(), 1.0);
        for m in c.class_metrics() {
            assert_eq!(m.precision, 1.0);
            assert_eq!(m.recall, 1.0);
            assert_eq!(m.f1(), 1.0);
        }
    }

    #[test]
    fn matching_is_label_invariant() {
        // Clusters discovered in the "wrong" order still match optimally.
        let l = labels(&[0, 0, 1, 1]);
        let clusters = vec![vec![2, 3], vec![0, 1]];
        let c = Confusion::new(&l, &clusters, MatchStrategy::Hungarian);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn partial_overlap_scores_proportionally() {
        let l = labels(&[0, 0, 0, 1, 1, 1]);
        // Cluster 0 captures two of class 0 plus one of class 1.
        let clusters = vec![vec![0, 1, 3], vec![4, 5]];
        let c = Confusion::new(&l, &clusters, MatchStrategy::Hungarian);
        let metrics = c.class_metrics();
        let m0 = metrics.iter().find(|m| m.class == 0).unwrap();
        assert!((m0.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m0.recall - 2.0 / 3.0).abs() < 1e-12);
        // Correct: ids 0,1 (in matched cluster 0), ids 4,5. Ids 2 and 3 not.
        assert!((c.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn outliers_count_as_correct_only_when_unclustered() {
        let l = labels(&[0, 0, -1, -1]);
        let clusters = vec![vec![0, 1, 2]]; // swallowed one outlier
        let c = Confusion::new(&l, &clusters, MatchStrategy::Hungarian);
        // Correct: 0, 1 (clustered right), 3 (outlier left out). Not 2.
        assert!((c.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unmatched_class_has_zero_recall() {
        let l = labels(&[0, 0, 1, 1]);
        let clusters = vec![vec![0, 1]]; // class 1 never found
        let c = Confusion::new(&l, &clusters, MatchStrategy::Hungarian);
        let metrics = c.class_metrics();
        let m1 = metrics.iter().find(|m| m.class == 1).unwrap();
        assert_eq!(m1.recall, 0.0);
        assert!(m1.cluster.is_none());
        assert_eq!(m1.f1(), 0.0);
    }

    #[test]
    fn overlapping_memberships_are_allowed() {
        let l = labels(&[0, 0, 1, 1]);
        // Sequence 1 sits in both clusters.
        let clusters = vec![vec![0, 1], vec![1, 2, 3]];
        let c = Confusion::new(&l, &clusters, MatchStrategy::Hungarian);
        assert_eq!(c.accuracy(), 1.0, "each sequence is in its own cluster");
        let m1 = c
            .class_metrics()
            .into_iter()
            .find(|m| m.class == 1)
            .unwrap();
        assert!((m1.precision - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_and_hungarian_agree_on_clear_cut_data() {
        let l = labels(&[0, 0, 0, 1, 1, 2, 2, 2, 2]);
        let clusters = vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7, 8]];
        let h = Confusion::new(&l, &clusters, MatchStrategy::Hungarian);
        let g = Confusion::new(&l, &clusters, MatchStrategy::Greedy);
        assert_eq!(h.accuracy(), 1.0);
        assert_eq!(g.accuracy(), 1.0);
    }

    #[test]
    fn hungarian_beats_greedy_when_greedy_is_myopic() {
        // Greedy grabs the big overlap (cluster0↔class0 = 3) which forces a
        // bad leftover; optimal total is 3+2 either way here, so instead
        // build a case where greedy's first grab costs it.
        // cluster0: class0=3, class1=3 (tie — takes class0 first found)
        // cluster1: class0=3, class1=0
        let l = labels(&[0, 0, 0, 1, 1, 1, 0, 0, 0]);
        let clusters = vec![vec![0, 1, 2, 3, 4, 5], vec![6, 7, 8]];
        let h = Confusion::new(&l, &clusters, MatchStrategy::Hungarian);
        // Optimal: cluster0→class1 (3), cluster1→class0 (3) = 6 correct of 9.
        assert!((h.accuracy() - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn class_metrics_sorted_by_size_desc() {
        let l = labels(&[0, 1, 1, 1, 2, 2]);
        let clusters = vec![vec![0], vec![1, 2, 3], vec![4, 5]];
        let c = Confusion::new(&l, &clusters, MatchStrategy::Hungarian);
        let sizes: Vec<usize> = c.class_metrics().iter().map(|m| m.size).collect();
        assert_eq!(sizes, vec![3, 2, 1]);
    }

    #[test]
    fn empty_everything() {
        let c = Confusion::new(&[], &[], MatchStrategy::Hungarian);
        assert_eq!(c.accuracy(), 1.0);
        assert!(c.class_metrics().is_empty());
    }

    #[test]
    fn macro_metrics_average_over_classes() {
        let l = labels(&[0, 0, 1, 1]);
        let clusters = vec![vec![0, 1]];
        let c = Confusion::new(&l, &clusters, MatchStrategy::Hungarian);
        assert!((c.macro_precision() - 1.0).abs() < 1e-12); // unmatched = 1.0
        assert!((c.macro_recall() - 0.5).abs() < 1e-12);
    }
}
