//! The Hungarian (Kuhn–Munkres) assignment algorithm, maximization form.
//!
//! Used to match discovered clusters to ground-truth classes so that the
//! reported accuracy is the best achievable one-to-one relabeling — the
//! standard methodology behind "percentage of correctly labeled" numbers
//! like the paper's Table 2.
//!
//! Implementation: the O(n³) potentials formulation (Jonker–Volgenant
//! style) on a square padded cost matrix.

// The potentials method walks index-parallel arrays (mins/links/visited);
// indexed loops mirror the standard presentation.
#[allow(clippy::needless_range_loop)]
/// Solves the maximum-weight one-to-one assignment.
///
/// `weights[r][c]` is the benefit of assigning row `r` to column `c`.
/// Rows and columns need not be equal in number; the matrix is implicitly
/// padded with zero-benefit cells. Returns, for each row, the matched
/// column (`None` when the row is matched to a padding column, which can
/// only happen when there are more rows than columns).
///
/// # Panics
///
/// Panics if `weights` is ragged or any weight is not finite.
pub fn hungarian_max(weights: &[Vec<f64>]) -> Vec<Option<usize>> {
    let rows = weights.len();
    if rows == 0 {
        return Vec::new();
    }
    let cols = weights[0].len();
    assert!(
        weights.iter().all(|r| r.len() == cols),
        "weight matrix must be rectangular"
    );
    assert!(
        weights.iter().flatten().all(|w| w.is_finite()),
        "weights must be finite"
    );
    if cols == 0 {
        return vec![None; rows];
    }

    // Convert maximization to minimization on a square matrix of side n.
    let n = rows.max(cols);
    let max_w = weights
        .iter()
        .flatten()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        .max(0.0);
    let cost = |r: usize, c: usize| -> f64 {
        if r < rows && c < cols {
            max_w - weights[r][c]
        } else {
            max_w // padding: zero benefit
        }
    };

    // Potentials method, 1-indexed internally (index 0 is a sentinel).
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut match_col = vec![0usize; n + 1]; // column -> row (0 = free)

    for r in 1..=n {
        // Find an augmenting path for row r via Dijkstra on reduced costs.
        let mut links = vec![0usize; n + 1];
        let mut mins = vec![inf; n + 1];
        let mut visited = vec![false; n + 1];
        let mut col = 0usize; // virtual starting column
        match_col[0] = r;
        loop {
            visited[col] = true;
            let row = match_col[col];
            let mut delta = inf;
            let mut next_col = 0;
            for c in 1..=n {
                if visited[c] {
                    continue;
                }
                let reduced = cost(row - 1, c - 1) - u[row] - v[c];
                if reduced < mins[c] {
                    mins[c] = reduced;
                    links[c] = col;
                }
                if mins[c] < delta {
                    delta = mins[c];
                    next_col = c;
                }
            }
            for c in 0..=n {
                if visited[c] {
                    u[match_col[c]] += delta;
                    v[c] -= delta;
                } else {
                    mins[c] -= delta;
                }
            }
            col = next_col;
            if match_col[col] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        while col != 0 {
            let prev = links[col];
            match_col[col] = match_col[prev];
            col = prev;
        }
    }

    let mut result = vec![None; rows];
    for c in 1..=n {
        let r = match_col[c];
        if r >= 1 && r - 1 < rows && c - 1 < cols {
            result[r - 1] = Some(c - 1);
        }
    }
    result
}

/// Total benefit of an assignment under `weights` (padding cells score 0).
pub fn assignment_value(weights: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(r, c)| c.map(|c| weights[r][c]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive max assignment over all row→column injections.
    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        let rows = weights.len();
        let cols = if rows == 0 { 0 } else { weights[0].len() };
        fn rec(weights: &[Vec<f64>], r: usize, used: &mut Vec<bool>) -> f64 {
            if r == weights.len() {
                return 0.0;
            }
            // Option: leave this row unassigned (padding).
            let mut best = rec(weights, r + 1, used);
            for c in 0..used.len() {
                if !used[c] {
                    used[c] = true;
                    best = best.max(weights[r][c] + rec(weights, r + 1, used));
                    used[c] = false;
                }
            }
            best
        }
        let mut used = vec![false; cols];
        rec(weights, 0, &mut used)
    }

    #[test]
    fn identity_matrix_matches_diagonal() {
        let w = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let a = hungarian_max(&w);
        assert_eq!(a, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(assignment_value(&w, &a), 3.0);
    }

    #[test]
    fn picks_off_diagonal_when_better() {
        let w = vec![vec![1.0, 10.0], vec![10.0, 1.0]];
        let a = hungarian_max(&w);
        assert_eq!(a, vec![Some(1), Some(0)]);
        assert_eq!(assignment_value(&w, &a), 20.0);
    }

    #[test]
    fn rectangular_more_rows_than_cols() {
        let w = vec![vec![5.0], vec![9.0], vec![2.0]];
        let a = hungarian_max(&w);
        // Only one column; the best row gets it.
        assert_eq!(a[1], Some(0));
        assert_eq!(a.iter().filter(|c| c.is_some()).count(), 1);
    }

    #[test]
    fn rectangular_more_cols_than_rows() {
        let w = vec![vec![1.0, 3.0, 2.0]];
        assert_eq!(hungarian_max(&w), vec![Some(1)]);
    }

    #[test]
    fn empty_inputs() {
        assert!(hungarian_max(&[]).is_empty());
        assert_eq!(hungarian_max(&[vec![], vec![]]), vec![None, None]);
    }

    #[test]
    fn ties_still_produce_a_valid_perfect_matching() {
        let w = vec![vec![1.0; 4]; 4];
        let a = hungarian_max(&w);
        let mut cols: Vec<_> = a.iter().map(|c| c.unwrap()).collect();
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1, 2, 3]);
    }

    #[test]
    fn matches_brute_force_on_fixed_matrices() {
        let cases: Vec<Vec<Vec<f64>>> = vec![
            vec![
                vec![7.0, 5.0, 11.0],
                vec![5.0, 4.0, 1.0],
                vec![9.0, 3.0, 2.0],
            ],
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![vec![0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0]],
            vec![vec![2.5, 2.5], vec![2.5, 2.5]],
        ];
        for w in cases {
            let a = hungarian_max(&w);
            let got = assignment_value(&w, &a);
            let want = brute_force(&w);
            assert!(
                (got - want).abs() < 1e-9,
                "matrix {w:?}: got {got}, brute force {want}"
            );
        }
    }

    #[test]
    fn assignment_is_injective() {
        let w = vec![
            vec![3.0, 1.0, 4.0, 1.0],
            vec![5.0, 9.0, 2.0, 6.0],
            vec![5.0, 3.0, 5.0, 8.0],
            vec![9.0, 7.0, 9.0, 3.0],
        ];
        let a = hungarian_max(&w);
        let mut cols: Vec<_> = a.iter().filter_map(|&c| c).collect();
        let before = cols.len();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), before, "no column assigned twice");
        assert_eq!(before, 4);
    }
}
