//! Evaluation substrate for the CLUSEQ workspace.
//!
//! The paper evaluates clusterings against known partitions (protein
//! families, languages, planted synthetic clusters) with per-class
//! **precision** and **recall** and an overall **percentage of correctly
//! labeled** sequences (Table 2). Computing those numbers requires matching
//! discovered clusters to ground-truth classes; this crate provides both a
//! greedy matcher and an optimal assignment via a from-scratch
//! [Hungarian algorithm](hungarian::hungarian_max).
//!
//! Also here: the similarity [histogram](histogram::Histogram) machinery
//! shared by the threshold-adjustment experiments, and simple wall-clock
//! helpers for the response-time tables.

#![warn(missing_docs)]

pub mod confusion;
pub mod histogram;
pub mod hungarian;
pub mod metrics;
pub mod timer;

pub use confusion::{ClassMetrics, Confusion, MatchStrategy};
pub use histogram::Histogram;
pub use hungarian::hungarian_max;
pub use metrics::{adjusted_rand_index, normalized_mutual_information, purity};
pub use timer::Stopwatch;
