//! Fixed-bucket histograms.
//!
//! The CLUSEQ threshold-adjustment step (§4.6) builds a histogram of all
//! sequence–cluster similarities and looks for the "valley" where the curve
//! makes its sharpest turn. The valley detection itself lives in the core
//! crate (it is algorithm logic); the bucket bookkeeping lives here so the
//! experiment harness can reuse it for reporting distributions.

use serde::{Deserialize, Serialize};

/// A histogram with `n` equal-width buckets over `[lo, hi)`.
///
/// Values outside the range are clamped into the first/last bucket — the
/// similarity distribution has a long right tail and the paper's valley
/// detection only cares about the shape near the bulk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Self {
            lo,
            hi,
            counts: vec![0; buckets],
        }
    }

    /// The bucket index a value falls into (clamped).
    pub fn bucket_of(&self, value: f64) -> usize {
        let frac = (value - self.lo) / (self.hi - self.lo);
        let i = (frac * self.counts.len() as f64).floor();
        (i.max(0.0) as usize).min(self.counts.len() - 1)
    }

    /// Records one observation.
    pub fn add(&mut self, value: f64) {
        let i = self.bucket_of(value);
        self.counts[i] += 1;
    }

    /// The `(lo, hi)` edges of the bucketed domain.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The median value of bucket `i` — the paper's `xᵢ` for the regression
    /// fit.
    pub fn bucket_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Renders the histogram as text-art bars, `width` characters at the
    /// tallest bucket — the CLI's similarity-distribution diagnostic.
    pub fn render_ascii(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = (c as usize * width) / max as usize;
            let _ = writeln!(
                out,
                "{:>10.3} | {:<width$} {c}",
                self.bucket_center(i),
                "#".repeat(bar),
                width = width
            );
        }
        out
    }

    /// `(xᵢ, yᵢ)` points for all buckets.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bucket_center(i), c as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_their_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(5.5);
        h.add(9.9);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(42.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn boundary_value_goes_to_last_bucket() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(1.0);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn range_returns_the_constructed_edges() {
        let h = Histogram::new(-1.5, 4.25, 3);
        assert_eq!(h.range(), (-1.5, 4.25));
    }

    #[test]
    fn bucket_centers_are_medians() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!((h.bucket_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bucket_center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn points_pair_centers_with_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.1);
        h.add(0.2);
        h.add(1.5);
        let pts = h.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], (0.5, 2.0));
        assert_eq!(pts[1], (1.5, 1.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_range() {
        Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn ascii_rendering_scales_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        for _ in 0..10 {
            h.add(0.5);
        }
        h.add(1.5);
        let art = h.render_ascii(20);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].matches('#').count() == 20, "{art}");
        assert!(lines[1].matches('#').count() == 2, "{art}");
        assert!(lines[0].ends_with("10"));
    }

    #[test]
    fn ascii_rendering_of_empty_histogram_has_no_bars() {
        let h = Histogram::new(0.0, 1.0, 3);
        let art = h.render_ascii(10);
        assert!(!art.contains('#'));
        assert_eq!(art.lines().count(), 3);
    }
}
