//! Partition-quality metrics beyond matched precision/recall.
//!
//! These operate on hard assignments (`Option<usize>` per sequence: its
//! primary cluster or none) and are used by the experiment harness as
//! secondary quality signals.

/// Cluster purity: each cluster votes for its majority class; purity is the
/// fraction of clustered sequences that agree with their cluster's vote.
/// Unclustered sequences are excluded. Returns 1.0 when nothing is
/// clustered.
pub fn purity(labels: &[Option<u32>], assignment: &[Option<usize>]) -> f64 {
    assert_eq!(labels.len(), assignment.len());
    let k = assignment
        .iter()
        .flatten()
        .copied()
        .max()
        .map_or(0, |m| m + 1);
    let mut per_cluster: Vec<std::collections::HashMap<u32, usize>> = vec![Default::default(); k];
    let mut clustered = 0usize;
    for (l, a) in labels.iter().zip(assignment) {
        if let (Some(l), Some(a)) = (l, a) {
            *per_cluster[*a].entry(*l).or_insert(0) += 1;
            clustered += 1;
        }
    }
    if clustered == 0 {
        return 1.0;
    }
    let majority: usize = per_cluster
        .iter()
        .map(|m| m.values().copied().max().unwrap_or(0))
        .sum();
    majority as f64 / clustered as f64
}

/// Adjusted Rand index between the ground-truth partition and a hard
/// assignment. Sequences that are unlabeled or unassigned are excluded.
/// Returns 1.0 for identical partitions, ~0.0 for random ones; may be
/// negative for adversarial ones.
pub fn adjusted_rand_index(labels: &[Option<u32>], assignment: &[Option<usize>]) -> f64 {
    assert_eq!(labels.len(), assignment.len());
    let pairs: Vec<(u32, usize)> = labels
        .iter()
        .zip(assignment)
        .filter_map(|(l, a)| Some(((*l)?, (*a)?)))
        .collect();
    let n = pairs.len();
    if n < 2 {
        return 1.0;
    }

    let mut contingency: std::collections::HashMap<(u32, usize), u64> = Default::default();
    let mut row_sums: std::collections::HashMap<u32, u64> = Default::default();
    let mut col_sums: std::collections::HashMap<usize, u64> = Default::default();
    for &(l, a) in &pairs {
        *contingency.entry((l, a)).or_insert(0) += 1;
        *row_sums.entry(l).or_insert(0) += 1;
        *col_sums.entry(a).or_insert(0) += 1;
    }

    fn choose2(x: u64) -> f64 {
        (x as f64) * (x as f64 - 1.0) / 2.0
    }

    let sum_ij: f64 = contingency.values().map(|&c| choose2(c)).sum();
    let sum_i: f64 = row_sums.values().map(|&c| choose2(c)).sum();
    let sum_j: f64 = col_sums.values().map(|&c| choose2(c)).sum();
    let total = choose2(n as u64);
    let expected = sum_i * sum_j / total;
    let max_index = 0.5 * (sum_i + sum_j);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // degenerate: both partitions trivial
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Normalized mutual information between ground truth and a hard
/// assignment, in `[0, 1]` (arithmetic-mean normalization). Sequences
/// that are unlabeled or unassigned are excluded; degenerate cases (either
/// partition trivial) return 1.0 when the partitions agree trivially and
/// 0.0 otherwise.
pub fn normalized_mutual_information(labels: &[Option<u32>], assignment: &[Option<usize>]) -> f64 {
    assert_eq!(labels.len(), assignment.len());
    let pairs: Vec<(u32, usize)> = labels
        .iter()
        .zip(assignment)
        .filter_map(|(l, a)| Some(((*l)?, (*a)?)))
        .collect();
    let n = pairs.len() as f64;
    if pairs.is_empty() {
        return 1.0;
    }

    let mut joint: std::collections::HashMap<(u32, usize), f64> = Default::default();
    let mut px: std::collections::HashMap<u32, f64> = Default::default();
    let mut py: std::collections::HashMap<usize, f64> = Default::default();
    for &(l, a) in &pairs {
        *joint.entry((l, a)).or_insert(0.0) += 1.0;
        *px.entry(l).or_insert(0.0) += 1.0;
        *py.entry(a).or_insert(0.0) += 1.0;
    }
    let entropy = |m: &std::collections::HashMap<u32, f64>| -> f64 {
        m.values().map(|&c| -(c / n) * (c / n).ln()).sum()
    };
    let hx = entropy(&px);
    let hy: f64 = py.values().map(|&c| -(c / n) * (c / n).ln()).sum();
    let mut mi = 0.0;
    for (&(l, a), &c) in &joint {
        let pxy = c / n;
        mi += pxy * (pxy / (px[&l] / n) / (py[&a] / n)).ln();
    }
    let denom = 0.5 * (hx + hy);
    if denom < 1e-12 {
        // Both partitions trivial: identical iff both single-block.
        return if px.len() == py.len() { 1.0 } else { 0.0 };
    }
    (mi / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab(v: &[i64]) -> Vec<Option<u32>> {
        v.iter()
            .map(|&x| if x < 0 { None } else { Some(x as u32) })
            .collect()
    }

    fn asg(v: &[i64]) -> Vec<Option<usize>> {
        v.iter()
            .map(|&x| if x < 0 { None } else { Some(x as usize) })
            .collect()
    }

    #[test]
    fn purity_of_perfect_clustering_is_one() {
        let p = purity(&lab(&[0, 0, 1, 1]), &asg(&[0, 0, 1, 1]));
        assert_eq!(p, 1.0);
    }

    #[test]
    fn purity_of_mixed_cluster() {
        // One cluster holding 3 of class 0 and 1 of class 1.
        let p = purity(&lab(&[0, 0, 0, 1]), &asg(&[0, 0, 0, 0]));
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn purity_ignores_unclustered() {
        let p = purity(&lab(&[0, 0, 1]), &asg(&[0, 0, -1]));
        assert_eq!(p, 1.0);
    }

    #[test]
    fn purity_with_nothing_clustered_is_one() {
        assert_eq!(purity(&lab(&[0, 1]), &asg(&[-1, -1])), 1.0);
    }

    #[test]
    fn ari_identical_partitions() {
        let a = adjusted_rand_index(&lab(&[0, 0, 1, 1, 2]), &asg(&[4, 4, 7, 7, 1]));
        assert!((a - 1.0).abs() < 1e-12, "label names don't matter");
    }

    #[test]
    fn ari_orthogonal_partitions_is_low() {
        // All sequences in one cluster vs two true classes.
        let a = adjusted_rand_index(&lab(&[0, 0, 1, 1]), &asg(&[0, 0, 0, 0]));
        assert!(a.abs() < 1e-9 || a == 1.0 || a < 0.5);
    }

    #[test]
    fn ari_partial_agreement_is_intermediate() {
        let a = adjusted_rand_index(&lab(&[0, 0, 0, 1, 1, 1]), &asg(&[0, 0, 1, 1, 1, 1]));
        assert!(a > 0.0 && a < 1.0);
    }

    #[test]
    fn ari_on_tiny_input_is_one() {
        assert_eq!(adjusted_rand_index(&lab(&[0]), &asg(&[0])), 1.0);
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
    }

    #[test]
    fn nmi_of_identical_partitions_is_one() {
        let v = normalized_mutual_information(&lab(&[0, 0, 1, 1, 2, 2]), &asg(&[5, 5, 3, 3, 0, 0]));
        assert!((v - 1.0).abs() < 1e-9, "nmi = {v}");
    }

    #[test]
    fn nmi_of_single_block_assignment_is_zero() {
        let v = normalized_mutual_information(&lab(&[0, 0, 1, 1]), &asg(&[0, 0, 0, 0]));
        assert!(v < 1e-9, "nmi = {v}");
    }

    #[test]
    fn nmi_partial_agreement_is_intermediate() {
        let v = normalized_mutual_information(&lab(&[0, 0, 0, 1, 1, 1]), &asg(&[0, 0, 1, 1, 1, 1]));
        assert!(v > 0.05 && v < 0.95, "nmi = {v}");
    }

    #[test]
    fn nmi_ignores_unlabeled_and_unassigned() {
        let v = normalized_mutual_information(&lab(&[0, 0, 1, 1, -1]), &asg(&[2, 2, 7, 7, 1]));
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nmi_of_empty_input_is_one() {
        assert_eq!(normalized_mutual_information(&[], &[]), 1.0);
    }
}
