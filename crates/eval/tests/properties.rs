//! Property-based tests for the evaluation substrate.

use proptest::prelude::*;

use cluseq_eval::hungarian::{assignment_value, hungarian_max};
use cluseq_eval::{adjusted_rand_index, purity, Confusion, MatchStrategy};

/// Exhaustive optimal assignment for small matrices.
fn brute_force(weights: &[Vec<f64>]) -> f64 {
    fn rec(weights: &[Vec<f64>], r: usize, used: &mut Vec<bool>) -> f64 {
        if r == weights.len() {
            return 0.0;
        }
        let mut best = rec(weights, r + 1, used);
        for c in 0..used.len() {
            if !used[c] {
                used[c] = true;
                best = best.max(weights[r][c] + rec(weights, r + 1, used));
                used[c] = false;
            }
        }
        best
    }
    let cols = weights.first().map_or(0, |r| r.len());
    rec(weights, 0, &mut vec![false; cols])
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..100.0, cols), rows)
}

proptest! {
    /// Hungarian equals the exhaustive optimum on every random matrix.
    #[test]
    fn hungarian_is_optimal(w in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| matrix(r, c))) {
        let a = hungarian_max(&w);
        let got = assignment_value(&w, &a);
        let want = brute_force(&w);
        prop_assert!((got - want).abs() < 1e-6, "got {got}, want {want} on {w:?}");
    }

    /// The assignment is always injective and in-range.
    #[test]
    fn hungarian_assignment_is_injective(w in matrix(5, 3)) {
        let a = hungarian_max(&w);
        let mut cols: Vec<usize> = a.iter().filter_map(|&c| c).collect();
        for &c in &cols {
            prop_assert!(c < 3);
        }
        let before = cols.len();
        cols.sort_unstable();
        cols.dedup();
        prop_assert_eq!(cols.len(), before);
    }

    /// Accuracy of a perfect clustering is 1 for any label arrangement.
    #[test]
    fn perfect_clustering_is_always_accurate(labels in prop::collection::vec(0u32..5, 1..40)) {
        let opt: Vec<Option<u32>> = labels.iter().copied().map(Some).collect();
        let k = labels.iter().copied().max().unwrap() as usize + 1;
        let mut clusters = vec![Vec::new(); k];
        for (i, &l) in labels.iter().enumerate() {
            clusters[l as usize].push(i);
        }
        let c = Confusion::new(&opt, &clusters, MatchStrategy::Hungarian);
        prop_assert!((c.accuracy() - 1.0).abs() < 1e-12);
        prop_assert!((adjusted_rand_index(
            &opt,
            &labels.iter().map(|&l| Some(l as usize)).collect::<Vec<_>>()
        ) - 1.0).abs() < 1e-12);
    }

    /// Accuracy, purity, and ARI are within their documented ranges on
    /// arbitrary clusterings.
    #[test]
    fn metrics_stay_in_range(
        labels in prop::collection::vec(prop::option::of(0u32..4), 2..30),
        assignment in prop::collection::vec(prop::option::of(0usize..4), 2..30),
    ) {
        let n = labels.len().min(assignment.len());
        let labels = &labels[..n];
        let assignment = &assignment[..n];
        let mut clusters = vec![Vec::new(); 4];
        for (i, a) in assignment.iter().enumerate() {
            if let Some(a) = a {
                clusters[*a].push(i);
            }
        }
        let c = Confusion::new(labels, &clusters, MatchStrategy::Hungarian);
        prop_assert!((0.0..=1.0).contains(&c.accuracy()));
        let p = purity(labels, assignment);
        prop_assert!((0.0..=1.0).contains(&p));
        let ari = adjusted_rand_index(labels, assignment);
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&ari));
    }

    /// Greedy matching never beats Hungarian in total matched overlap
    /// (hence never in accuracy of labeled-only data without outliers).
    #[test]
    fn hungarian_at_least_as_good_as_greedy(
        labels in prop::collection::vec(0u32..4, 4..30),
        cuts in prop::collection::vec(0usize..4, 4..30),
    ) {
        let n = labels.len().min(cuts.len());
        let opt: Vec<Option<u32>> = labels[..n].iter().copied().map(Some).collect();
        let mut clusters = vec![Vec::new(); 4];
        for (i, &c) in cuts[..n].iter().enumerate() {
            clusters[c].push(i);
        }
        let h = Confusion::new(&opt, &clusters, MatchStrategy::Hungarian);
        let g = Confusion::new(&opt, &clusters, MatchStrategy::Greedy);
        prop_assert!(h.accuracy() + 1e-12 >= g.accuracy());
    }
}
