//! Property tests for the out-of-core store: for arbitrary corpora, a
//! streamed CSEQ v2 write followed by indexed seeks decodes every
//! sequence exactly as the sequential in-memory decode does.

use proptest::prelude::*;

use cluseq_seq::store::{sidecar_path, CseqWriter, FileStore};
use cluseq_seq::{binio, Alphabet, Sequence, SequenceDatabase, SequenceStore, Symbol};

/// An arbitrary labeled corpus: alphabet size plus (symbols, label) rows.
type Corpus = (usize, Vec<(Vec<u16>, Option<u32>)>);

fn corpus_strategy() -> impl Strategy<Value = Corpus> {
    (2usize..20).prop_flat_map(|alphabet| {
        let seq = proptest::collection::vec(0..alphabet as u16, 0..60);
        let labeled = (seq, proptest::option::of(0u32..5));
        (Just(alphabet), proptest::collection::vec(labeled, 0..25))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_seeks_match_sequential_decode((alphabet, seqs) in corpus_strategy()) {
        let dir = std::env::temp_dir().join(format!(
            "cluseq-store-prop-{}-{alphabet}-{}",
            std::process::id(),
            seqs.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.cseq");

        let ab = Alphabet::synthetic(alphabet);
        let mut w = CseqWriter::create(&path, &ab).unwrap();
        for (symbols, label) in &seqs {
            let symbols: Vec<Symbol> = symbols.iter().map(|&s| Symbol(s)).collect();
            w.push(&symbols, *label).unwrap();
        }
        prop_assert_eq!(w.finish().unwrap(), seqs.len());

        // Sequential decode of the whole file (the reference).
        let bytes = std::fs::read(&path).unwrap();
        let decoded = binio::decode(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(decoded.len(), seqs.len());

        // Indexed seeks through a deliberately tiny window, in an access
        // order that forces both forward and backward window slides.
        let store = FileStore::open_windowed(&path, 32).unwrap();
        prop_assert_eq!(SequenceStore::len(&store), seqs.len());
        let mut reader = store.reader();
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        order.extend((0..seqs.len()).rev());
        for i in order {
            prop_assert_eq!(reader.symbols(i), decoded.sequence(i).symbols());
            prop_assert_eq!(store.label(i), decoded.label(i));
        }

        // The decoded database equals what an in-memory build would hold.
        let mut mem = SequenceDatabase::new(Alphabet::synthetic(alphabet));
        for (symbols, label) in &seqs {
            let symbols: Vec<Symbol> = symbols.iter().map(|&s| Symbol(s)).collect();
            mem.push_labeled(Sequence::new(symbols), *label);
        }
        for i in 0..mem.len() {
            prop_assert_eq!(decoded.sequence(i), mem.sequence(i));
        }

        // Sidecar present and exactly sized: 16-byte header + 16 per seq.
        let sidecar = std::fs::metadata(sidecar_path(&path)).unwrap();
        prop_assert_eq!(sidecar.len(), 16 + 16 * seqs.len() as u64);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
