//! Out-of-core sequence storage: the [`SequenceStore`] abstraction, the
//! CSEQ v2 streaming writer, the `.csix` sidecar offset index, and the
//! windowed [`FileStore`].
//!
//! The clustering engine only ever needs four things from a corpus: its
//! shape (count, alphabet), per-sequence labels, the background symbol
//! distribution, and — inside the scan loops — the symbols of one
//! sequence at a time. [`SequenceStore`] captures exactly that contract,
//! with [`SequenceDatabase`] (everything resident) and [`FileStore`]
//! (a read-only file view plus a bounded resident window) as the two
//! implementations. Scan workers each obtain their own [`StoreReader`]
//! cursor, so parallel shards stream independent regions of the file
//! without shared seek state.
//!
//! # CSEQ v2 and the `.csix` sidecar
//!
//! Version 2 of the `CSDB` container keeps version 1's byte layout
//! unchanged (see [`crate::binio`]) — the version bump only signals that
//! a sidecar offset index *may* accompany the file. The sidecar, named by
//! appending `.csix` to the data file's name, stores one 16-byte entry
//! per sequence:
//!
//! ```text
//! magic "CSIX" | version u32 = 1 | count u64
//! per sequence: offset u64 | len u32 | label u32 (MAX = none)
//! ```
//!
//! `offset` is the absolute byte position of the sequence's symbol array
//! in the data file and `len` its symbol count, so a record is fetched
//! with one positioned read and no header parsing. [`FileStore::open`]
//! validates the index against the data file (monotone offsets, in-bounds
//! records, matching count) and falls back to rebuilding it with one
//! sequential pass when the sidecar is missing — which also makes every
//! version-1 file openable out of core.

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::alphabet::{Alphabet, Symbol};
use crate::background::BackgroundModel;
use crate::binio::{self, BinError};
use crate::database::SequenceDatabase;
use crate::sequence::Sequence;

/// Magic bytes of the sidecar offset index.
pub const INDEX_MAGIC: &[u8; 4] = b"CSIX";
/// Current sidecar index format version.
pub const INDEX_VERSION: u32 = 1;
/// Default resident window of a [`FileStore`] reader, in bytes.
pub const DEFAULT_WINDOW_BYTES: usize = 4 << 20;

/// Which implementation backs a [`SequenceStore`] — recorded in
/// checkpoints so a resumed run knows how its corpus was being read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Fully resident [`SequenceDatabase`].
    #[default]
    Memory,
    /// Offset-indexed read-only file view ([`FileStore`]).
    File,
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StoreKind::Memory => "memory",
            StoreKind::File => "file",
        })
    }
}

impl std::str::FromStr for StoreKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "memory" => Ok(StoreKind::Memory),
            "file" => Ok(StoreKind::File),
            other => Err(format!("unknown store {other:?} (valid: memory, file)")),
        }
    }
}

/// A cursor over one store: yields the symbols of any sequence by id.
///
/// The returned slice borrows the reader's internal buffer and is valid
/// until the next `symbols` call — exactly the shape of the scan loops,
/// which finish with one sequence before fetching the next. Each scan
/// worker owns its own reader, so cursors never contend.
pub trait StoreReader {
    /// The symbols of sequence `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range, or (file-backed stores) if the
    /// underlying file fails mid-read — an environmental fault on a file
    /// that was validated at open, like a slice index, not a recoverable
    /// condition.
    fn symbols(&mut self, i: usize) -> &[Symbol];

    /// An owned [`Sequence`] copy of sequence `i` (cold paths: cluster
    /// seeding, PST rebuilds).
    fn sequence(&mut self, i: usize) -> Sequence {
        Sequence::new(self.symbols(i).to_vec())
    }
}

/// A read-only corpus the clustering engine can scan: shape, labels,
/// background distribution, and per-worker [`StoreReader`] cursors.
///
/// Implementations must be deterministic: two readers (or the same reader
/// twice) return identical symbols for the same id, and `background()`
/// is bit-identical across implementations holding the same content —
/// that is what makes an out-of-core run byte-identical to an in-memory
/// run (`tests/out_of_core.rs`).
pub trait SequenceStore: Sync {
    /// Number of sequences.
    fn len(&self) -> usize;

    /// Whether the store holds no sequences.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The alphabet the sequences are over.
    fn alphabet(&self) -> &Alphabet;

    /// The label of sequence `i`, if any.
    fn label(&self, i: usize) -> Option<u32>;

    /// A fresh cursor for fetching sequence symbols.
    fn reader(&self) -> Box<dyn StoreReader + '_>;

    /// The empirical background symbol distribution of the whole corpus.
    fn background(&self) -> BackgroundModel;

    /// Total symbol count across all sequences.
    fn total_symbols(&self) -> u64;

    /// Which implementation this is (checkpoint provenance).
    fn kind(&self) -> StoreKind;
}

// ---- in-memory store ----------------------------------------------------

/// Zero-copy cursor over a resident [`SequenceDatabase`].
pub struct DatabaseReader<'a> {
    db: &'a SequenceDatabase,
}

impl StoreReader for DatabaseReader<'_> {
    fn symbols(&mut self, i: usize) -> &[Symbol] {
        self.db.sequence(i).symbols()
    }
}

impl SequenceStore for SequenceDatabase {
    fn len(&self) -> usize {
        SequenceDatabase::len(self)
    }

    fn alphabet(&self) -> &Alphabet {
        SequenceDatabase::alphabet(self)
    }

    fn label(&self, i: usize) -> Option<u32> {
        SequenceDatabase::label(self, i)
    }

    fn reader(&self) -> Box<dyn StoreReader + '_> {
        Box::new(DatabaseReader { db: self })
    }

    fn background(&self) -> BackgroundModel {
        SequenceDatabase::background(self)
    }

    fn total_symbols(&self) -> u64 {
        SequenceDatabase::total_symbols(self) as u64
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Memory
    }
}

// ---- streaming writer ---------------------------------------------------

/// One entry of the in-memory (or sidecar) offset index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexEntry {
    /// Absolute byte offset of the symbol array in the data file.
    offset: u64,
    /// Symbol count.
    len: u32,
    /// Label (`u32::MAX` = none), mirrored from the record header so a
    /// fetch never parses the data file.
    label: u32,
}

/// Streams a CSEQ v2 database to disk one sequence at a time, emitting
/// the `.csix` sidecar alongside — the whole corpus never exists in RAM.
///
/// The record stream is byte-identical to [`binio::encode`] of the same
/// content (only the header's version number differs), so everything that
/// reads version 1 reads the writer's output.
///
/// ```no_run
/// # use cluseq_seq::{Alphabet, Symbol};
/// # use cluseq_seq::store::CseqWriter;
/// let alphabet = Alphabet::synthetic(4);
/// let mut w = CseqWriter::create("corpus.cseq", &alphabet).unwrap();
/// w.push(&[Symbol(0), Symbol(1)], Some(0)).unwrap();
/// w.push(&[Symbol(2)], None).unwrap();
/// w.finish().unwrap();
/// ```
pub struct CseqWriter {
    data: BufWriter<File>,
    data_path: PathBuf,
    index_path: PathBuf,
    /// Byte position in the data file (maintained, not queried).
    position: u64,
    entries: Vec<IndexEntry>,
    alphabet_size: usize,
}

impl CseqWriter {
    /// Creates `path` (and its `.csix` sibling on [`CseqWriter::finish`])
    /// and writes the v2 header for `alphabet`.
    pub fn create(path: impl AsRef<Path>, alphabet: &Alphabet) -> io::Result<Self> {
        let data_path = path.as_ref().to_path_buf();
        let index_path = sidecar_path(&data_path);
        let file = File::create(&data_path)?;
        let mut data = BufWriter::new(file);
        let mut position = 0u64;
        {
            let mut count = |buf: &[u8]| -> io::Result<()> {
                position += buf.len() as u64;
                data.write_all(buf)
            };
            count(binio::MAGIC)?;
            count(&binio::VERSION_INDEXED.to_le_bytes())?;
            count(&(alphabet.len() as u32).to_le_bytes())?;
            for sym in alphabet.symbols() {
                let name = alphabet.name(sym).as_bytes();
                count(&(name.len() as u16).to_le_bytes())?;
                count(name)?;
            }
            // Sequence count: patched by finish(); remember where it is.
            count(&0u32.to_le_bytes())?;
        }
        Ok(Self {
            data,
            data_path,
            index_path,
            position,
            entries: Vec::new(),
            alphabet_size: alphabet.len(),
        })
    }

    /// Appends one sequence.
    pub fn push(&mut self, symbols: &[Symbol], label: Option<u32>) -> io::Result<()> {
        debug_assert!(
            symbols.iter().all(|s| s.index() < self.alphabet_size),
            "symbol outside the alphabet"
        );
        let mut buf = Vec::with_capacity(8 + symbols.len() * 2);
        let label = label.unwrap_or(u32::MAX);
        buf.extend_from_slice(&label.to_le_bytes());
        buf.extend_from_slice(&(symbols.len() as u32).to_le_bytes());
        let symbols_at = self.position + buf.len() as u64;
        for s in symbols {
            buf.extend_from_slice(&s.0.to_le_bytes());
        }
        self.data.write_all(&buf)?;
        self.position += buf.len() as u64;
        self.entries.push(IndexEntry {
            offset: symbols_at,
            len: symbols.len() as u32,
            label,
        });
        Ok(())
    }

    /// Sequences pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Patches the sequence count into the data header, flushes the data
    /// file, and writes the `.csix` sidecar. Returns the sequence count.
    pub fn finish(mut self) -> io::Result<usize> {
        let n = self.entries.len();
        self.data.flush()?;
        let file = self.data.into_inner().map_err(|e| e.into_error())?;
        // The count field sits immediately before the first record (or at
        // the end of the header when the corpus is empty).
        let count_at = self.entries.first().map_or(self.position, |e| e.offset - 8) - 4;
        file.write_all_at(&(n as u32).to_le_bytes(), count_at)?;
        file.sync_all()?;
        drop(file);

        let mut index = BufWriter::new(File::create(&self.index_path)?);
        index.write_all(INDEX_MAGIC)?;
        index.write_all(&INDEX_VERSION.to_le_bytes())?;
        index.write_all(&(n as u64).to_le_bytes())?;
        for e in &self.entries {
            index.write_all(&e.offset.to_le_bytes())?;
            index.write_all(&e.len.to_le_bytes())?;
            index.write_all(&e.label.to_le_bytes())?;
        }
        index.flush()?;
        index.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        let _ = self.data_path;
        Ok(n)
    }
}

/// The sidecar index path of a data file: `corpus.cseq` →
/// `corpus.cseq.csix` (appended, never substituted, so distinct data
/// files never share an index name).
pub fn sidecar_path(data: &Path) -> PathBuf {
    let mut name = data.file_name().unwrap_or_default().to_os_string();
    name.push(".csix");
    data.with_file_name(name)
}

// ---- file-backed store --------------------------------------------------

/// An offset-indexed, read-only file view of a CSEQ database.
///
/// Resident state is the alphabet, the 16-byte-per-sequence index, and —
/// per reader — one window of `window_bytes` of raw file data plus a
/// decode buffer. Sequence bytes outside the window are fetched with
/// positioned reads (`pread`), so concurrent readers share the one file
/// handle without seek contention, and scanning a shard of ids in order
/// degenerates to sequential I/O.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    file_len: u64,
    alphabet: Alphabet,
    index: Vec<IndexEntry>,
    window_bytes: usize,
    background: BackgroundModel,
    total_symbols: u64,
}

impl FileStore {
    /// Opens `path` with the default resident window
    /// ([`DEFAULT_WINDOW_BYTES`]).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, BinError> {
        Self::open_windowed(path, DEFAULT_WINDOW_BYTES)
    }

    /// Opens `path` with a caller-chosen resident window. The `.csix`
    /// sidecar is used when present (after validation); otherwise the
    /// index is rebuilt with one sequential pass over the data file, which
    /// also accepts version-1 files.
    pub fn open_windowed(path: impl AsRef<Path>, window_bytes: usize) -> Result<Self, BinError> {
        let path = path.as_ref();
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut reader = io::BufReader::new(&file);
        let (alphabet, declared_count) = binio::decode_header(&mut reader)?;
        let records_at = reader.stream_position()?;

        let index = match read_sidecar(&sidecar_path(path)) {
            Some(entries) => {
                validate_index(&entries, declared_count, records_at, file_len)?;
                entries
            }
            None => scan_index(&mut reader, declared_count, file_len)?,
        };

        // One sequential pass for the background counts — the same
        // smoothed arithmetic as `SequenceDatabase::background`, so the
        // two stores produce bit-identical models for the same content.
        let mut counts = vec![0u64; alphabet.len()];
        let mut total_symbols = 0u64;
        let mut scratch_bytes = Vec::new();
        for e in &index {
            let byte_len = e.len as usize * 2;
            scratch_bytes.resize(byte_len, 0);
            file.read_exact_at(&mut scratch_bytes, e.offset)?;
            for chunk in scratch_bytes.chunks_exact(2) {
                let s = u16::from_le_bytes([chunk[0], chunk[1]]) as usize;
                if s >= alphabet.len() {
                    return Err(BinError::Corrupt("symbol id out of range"));
                }
                counts[s] += 1;
            }
            total_symbols += u64::from(e.len);
        }
        let background = BackgroundModel::fit_counts(&counts);

        Ok(Self {
            file,
            file_len,
            alphabet,
            index,
            window_bytes: window_bytes.max(1),
            background,
            total_symbols,
        })
    }

    /// The configured per-reader resident window, in bytes.
    pub fn window_bytes(&self) -> usize {
        self.window_bytes
    }

    /// Resident size of the offset index, in bytes.
    pub fn index_bytes(&self) -> usize {
        self.index.len() * std::mem::size_of::<IndexEntry>()
    }
}

impl SequenceStore for FileStore {
    fn len(&self) -> usize {
        self.index.len()
    }

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn label(&self, i: usize) -> Option<u32> {
        match self.index[i].label {
            u32::MAX => None,
            l => Some(l),
        }
    }

    fn reader(&self) -> Box<dyn StoreReader + '_> {
        Box::new(FileReader {
            store: self,
            window: Vec::new(),
            window_start: 0,
            decoded: Vec::new(),
        })
    }

    fn background(&self) -> BackgroundModel {
        self.background.clone()
    }

    fn total_symbols(&self) -> u64 {
        self.total_symbols
    }

    fn kind(&self) -> StoreKind {
        StoreKind::File
    }
}

/// A [`FileStore`] cursor: one resident window of raw file bytes plus a
/// decode buffer. Fetches inside the window are pure decodes; a miss
/// slides the window to start at the requested record.
pub struct FileReader<'a> {
    store: &'a FileStore,
    window: Vec<u8>,
    window_start: u64,
    decoded: Vec<Symbol>,
}

impl StoreReader for FileReader<'_> {
    fn symbols(&mut self, i: usize) -> &[Symbol] {
        let e = self.store.index[i];
        let byte_len = e.len as usize * 2;
        let in_window = e.offset >= self.window_start
            && e.offset + byte_len as u64 <= self.window_start + self.window.len() as u64;
        if !in_window {
            // Slide the window to the record; oversized records get a
            // one-off exact-sized window rather than failing.
            let take = (self.store.file_len - e.offset)
                .min(self.store.window_bytes.max(byte_len) as u64) as usize;
            self.window.resize(take, 0);
            self.store
                .file
                .read_exact_at(&mut self.window, e.offset)
                .expect("read from validated sequence store");
            self.window_start = e.offset;
        }
        let rel = (e.offset - self.window_start) as usize;
        self.decoded.clear();
        self.decoded.extend(
            self.window[rel..rel + byte_len]
                .chunks_exact(2)
                .map(|c| Symbol(u16::from_le_bytes([c[0], c[1]]))),
        );
        &self.decoded
    }
}

// ---- index I/O and validation -------------------------------------------

/// Reads a sidecar index file; `None` when it does not exist, `Some` with
/// whatever parses otherwise (structural errors surface as an empty read
/// via [`validate_index`] failing — callers treat any parse failure as
/// "no usable sidecar" only for `NotFound`; corrupt sidecars are errors,
/// not silently ignored, so a damaged index cannot demote itself to a
/// slow path that masks the damage).
fn read_sidecar(path: &Path) -> Option<Vec<IndexEntry>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
        Err(_) => return Some(Vec::new()), // unreadable → fails validation
    };
    parse_index(&bytes).map_or(Some(Vec::new()), Some)
}

/// Parses sidecar bytes; `None` on any structural problem (the caller's
/// validation then rejects the empty index against a nonzero count).
fn parse_index(bytes: &[u8]) -> Option<Vec<IndexEntry>> {
    if bytes.len() < 16 || &bytes[..4] != INDEX_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if version != INDEX_VERSION {
        return None;
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
    let body = &bytes[16..];
    if body.len() != count.checked_mul(16)? {
        return None;
    }
    Some(
        body.chunks_exact(16)
            .map(|e| IndexEntry {
                offset: u64::from_le_bytes(e[..8].try_into().unwrap()),
                len: u32::from_le_bytes(e[8..12].try_into().unwrap()),
                label: u32::from_le_bytes(e[12..16].try_into().unwrap()),
            })
            .collect(),
    )
}

/// Structural validation of an index against the data file it claims to
/// describe: entry count matches the header, offsets are monotone and
/// consistent with the record framing, and every record lies in bounds.
fn validate_index(
    entries: &[IndexEntry],
    declared_count: usize,
    records_at: u64,
    file_len: u64,
) -> Result<(), BinError> {
    if entries.len() != declared_count {
        return Err(BinError::Corrupt("index count mismatch"));
    }
    let mut expect = records_at;
    for e in entries {
        // Each record is label u32 | len u32 | symbols; the indexed
        // offset points at the symbols.
        if e.offset != expect + 8 {
            return Err(BinError::Corrupt("index offsets out of order"));
        }
        let end = e
            .offset
            .checked_add(u64::from(e.len) * 2)
            .ok_or(BinError::Corrupt("index entry overflows"))?;
        if end > file_len {
            return Err(BinError::Corrupt("index entry past end of file"));
        }
        expect = end;
    }
    Ok(())
}

/// Rebuilds the index with one sequential pass over the record stream
/// (positioned just past the header). Tolerates a data file that holds
/// exactly the declared records and nothing else.
fn scan_index(
    r: &mut (impl Read + Seek),
    declared_count: usize,
    file_len: u64,
) -> Result<Vec<IndexEntry>, BinError> {
    let mut entries = Vec::with_capacity(declared_count.min(1 << 20));
    let mut position = r.stream_position()?;
    for _ in 0..declared_count {
        let mut head = [0u8; 8];
        r.read_exact(&mut head)?;
        let label = u32::from_le_bytes(head[..4].try_into().unwrap());
        let len = u32::from_le_bytes(head[4..].try_into().unwrap());
        let offset = position + 8;
        let end = offset
            .checked_add(u64::from(len) * 2)
            .ok_or(BinError::Corrupt("record length overflows"))?;
        if end > file_len {
            return Err(BinError::Corrupt("record past end of file"));
        }
        r.seek(io::SeekFrom::Start(end))?;
        position = end;
        entries.push(IndexEntry { offset, len, label });
    }
    Ok(entries)
}

/// Streams a resident database to `path` in CSEQ v2 with its sidecar —
/// convenience over [`CseqWriter`] for tools that already hold the data.
pub fn write_indexed(db: &SequenceDatabase, path: impl AsRef<Path>) -> io::Result<usize> {
    let mut w = CseqWriter::create(path, SequenceDatabase::alphabet(db))?;
    for (_, seq, label) in db.iter() {
        w.push(seq.symbols(), label)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cluseq-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fixture() -> SequenceDatabase {
        let mut alphabet = Alphabet::new();
        for name in ["open", "close", "x", "y"] {
            alphabet.intern(name);
        }
        let mut db = SequenceDatabase::new(alphabet);
        let mk = |ids: &[u16]| Sequence::new(ids.iter().map(|&i| Symbol(i)).collect());
        db.push_labeled(mk(&[0, 1, 0, 2, 3, 1]), Some(7));
        db.push_labeled(mk(&[2, 2]), None);
        db.push_labeled(mk(&[]), Some(0));
        db.push_labeled(mk(&[3, 0, 1, 2, 3, 0, 1, 2, 3]), Some(1));
        db
    }

    fn write_fixture(dir: &Path) -> PathBuf {
        let path = dir.join("corpus.cseq");
        write_indexed(&fixture(), &path).unwrap();
        path
    }

    #[test]
    fn database_store_is_a_zero_copy_view() {
        let db = fixture();
        let store: &dyn SequenceStore = &db;
        assert_eq!(store.len(), 4);
        assert_eq!(store.kind(), StoreKind::Memory);
        assert_eq!(store.label(0), Some(7));
        assert_eq!(store.label(1), None);
        let mut reader = store.reader();
        for i in 0..db.len() {
            assert_eq!(reader.symbols(i), db.sequence(i).symbols());
        }
        assert_eq!(reader.sequence(3).symbols(), db.sequence(3).symbols());
    }

    #[test]
    fn streamed_write_round_trips_through_decode() {
        let dir = tmp_dir("roundtrip");
        let path = write_fixture(&dir);
        // The v2 file decodes with the plain reader.
        let bytes = std::fs::read(&path).unwrap();
        let loaded = binio::decode(&mut bytes.as_slice()).unwrap();
        let db = fixture();
        assert_eq!(loaded.len(), db.len());
        for i in 0..db.len() {
            assert_eq!(loaded.sequence(i), db.sequence(i));
            assert_eq!(loaded.label(i), db.label(i));
        }
        // And the record stream is byte-identical to v1 apart from the
        // version field.
        let mut v1 = Vec::new();
        binio::encode(&db, &mut v1).unwrap();
        assert_eq!(bytes[..4], v1[..4]);
        assert_eq!(bytes[8..], v1[8..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_matches_the_database_for_every_window_size() {
        let dir = tmp_dir("windows");
        let path = write_fixture(&dir);
        let db = fixture();
        for window in [1, 7, 64, DEFAULT_WINDOW_BYTES] {
            let store = FileStore::open_windowed(&path, window).unwrap();
            assert_eq!(SequenceStore::len(&store), db.len());
            assert_eq!(store.kind(), StoreKind::File);
            assert_eq!(SequenceStore::alphabet(&store).len(), 4);
            let mut reader = store.reader();
            for i in 0..db.len() {
                assert_eq!(
                    reader.symbols(i),
                    db.sequence(i).symbols(),
                    "window {window} sequence {i}"
                );
                assert_eq!(store.label(i), db.label(i));
            }
            // Random-order access through a tiny window stays correct.
            for &i in &[3usize, 0, 3, 1, 2, 0] {
                assert_eq!(reader.symbols(i), db.sequence(i).symbols());
            }
            assert_eq!(store.total_symbols(), db.total_symbols() as u64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_background_is_bit_identical_to_the_database() {
        let dir = tmp_dir("background");
        let path = write_fixture(&dir);
        let db = fixture();
        let store = FileStore::open(&path).unwrap();
        let mem = SequenceDatabase::background(&db);
        let file = store.background();
        assert_eq!(mem.alphabet_size(), file.alphabet_size());
        for i in 0..mem.alphabet_size() {
            let s = Symbol(i as u16);
            assert_eq!(mem.prob(s).to_bits(), file.prob(s).to_bits());
            assert_eq!(mem.ln_prob(s).to_bits(), file.ln_prob(s).to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_sidecar_falls_back_to_a_sequential_scan() {
        let dir = tmp_dir("nosidecar");
        let path = write_fixture(&dir);
        std::fs::remove_file(sidecar_path(&path)).unwrap();
        let store = FileStore::open(&path).unwrap();
        let db = fixture();
        let mut reader = store.reader();
        for i in 0..db.len() {
            assert_eq!(reader.symbols(i), db.sequence(i).symbols());
            assert_eq!(store.label(i), db.label(i));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_1_files_open_out_of_core() {
        let dir = tmp_dir("v1");
        let path = dir.join("old.cseq");
        let db = fixture();
        let mut bytes = Vec::new();
        binio::encode(&db, &mut bytes).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        let store = FileStore::open(&path).unwrap();
        let mut reader = store.reader();
        for i in 0..db.len() {
            assert_eq!(reader.symbols(i), db.sequence(i).symbols());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sidecars_are_rejected_not_ignored() {
        let dir = tmp_dir("hostile");
        let path = write_fixture(&dir);
        let sidecar = sidecar_path(&path);
        let good = std::fs::read(&sidecar).unwrap();

        // Truncated body.
        std::fs::write(&sidecar, &good[..good.len() - 5]).unwrap();
        assert!(matches!(
            FileStore::open(&path).unwrap_err(),
            BinError::Corrupt(_)
        ));

        // Count lies low.
        let mut fewer = good.clone();
        fewer[8..16].copy_from_slice(&2u64.to_le_bytes());
        fewer.truncate(16 + 2 * 16);
        std::fs::write(&sidecar, &fewer).unwrap();
        assert!(matches!(
            FileStore::open(&path).unwrap_err(),
            BinError::Corrupt("index count mismatch")
        ));

        // An offset pointing past the end of the data file.
        let mut wild = good.clone();
        let last = wild.len() - 16;
        wild[last..last + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        std::fs::write(&sidecar, &wild).unwrap();
        assert!(matches!(
            FileStore::open(&path).unwrap_err(),
            BinError::Corrupt(_)
        ));

        // A non-monotone offset (two entries swapped).
        let mut swapped = good.clone();
        let (a, b) = (16, 32);
        for k in 0..16 {
            swapped.swap(a + k, b + k);
        }
        std::fs::write(&sidecar, &swapped).unwrap();
        assert!(matches!(
            FileStore::open(&path).unwrap_err(),
            BinError::Corrupt("index offsets out of order")
        ));

        // Restoring the good sidecar opens cleanly again.
        std::fs::write(&sidecar, &good).unwrap();
        assert!(FileStore::open(&path).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_data_files_are_rejected() {
        let dir = tmp_dir("truncated");
        let path = write_fixture(&dir);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        // With the (now stale) sidecar: the final entry hangs past EOF.
        assert!(FileStore::open(&path).is_err());
        // Without it: the sequential scan hits the same wall.
        std::fs::remove_file(sidecar_path(&path)).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_kind_parses_and_displays() {
        assert_eq!("memory".parse::<StoreKind>().unwrap(), StoreKind::Memory);
        assert_eq!("file".parse::<StoreKind>().unwrap(), StoreKind::File);
        assert_eq!(StoreKind::File.to_string(), "file");
        let err = "tape".parse::<StoreKind>().unwrap_err();
        assert!(err.contains("memory") && err.contains("file"), "{err}");
    }

    #[test]
    fn empty_corpus_streams_and_opens() {
        let dir = tmp_dir("empty");
        let path = dir.join("empty.cseq");
        let w = CseqWriter::create(&path, &Alphabet::synthetic(2)).unwrap();
        assert!(w.is_empty());
        assert_eq!(w.finish().unwrap(), 0);
        let store = FileStore::open(&path).unwrap();
        assert!(SequenceStore::is_empty(&store));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
