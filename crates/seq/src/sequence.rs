//! The [`Sequence`] type: an ordered list of symbols.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::alphabet::{Alphabet, Symbol};

/// An ordered list of symbols over some [`Alphabet`].
///
/// Per the paper (§2): *"A sequence is an ordered list of symbols in ℑ. The
/// number of symbols in a sequence is referred to as the length of the
/// sequence. Given a sequence, a segment is defined as a consecutive portion
/// of the sequence."*
///
/// Symbols are stored in a boxed slice — sequences are immutable once built,
/// and a boxed slice saves one word per sequence versus `Vec` (the paper's
/// workloads hold 100 000+ sequences in memory).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sequence {
    symbols: Box<[Symbol]>,
}

impl Sequence {
    /// Builds a sequence from a vector of symbols.
    pub fn new(symbols: Vec<Symbol>) -> Self {
        Self {
            symbols: symbols.into_boxed_slice(),
        }
    }

    /// Parses a string of single-character symbols, interning each character.
    pub fn intern_str(alphabet: &mut Alphabet, text: &str) -> Self {
        let mut buf = [0u8; 4];
        Self::new(
            text.chars()
                .map(|c| alphabet.intern(c.encode_utf8(&mut buf)))
                .collect(),
        )
    }

    /// Parses a string of single-character symbols against a fixed alphabet.
    ///
    /// Returns `None` if any character is not in the alphabet.
    pub fn parse_str(alphabet: &Alphabet, text: &str) -> Option<Self> {
        text.chars()
            .map(|c| alphabet.get_char(c))
            .collect::<Option<Vec<_>>>()
            .map(Self::new)
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the sequence has no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbols as a slice.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// The segment (consecutive portion) `[start, end)` of this sequence.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn segment(&self, start: usize, end: usize) -> &[Symbol] {
        &self.symbols[start..end]
    }

    /// A new sequence holding this sequence's symbols in reverse order.
    ///
    /// The paper builds each probabilistic suffix tree *"on the reversed
    /// sequences (instead of the original sequences)"* (§3) so that the
    /// longest significant suffix of a context is found by a single
    /// root-to-node walk.
    pub fn reversed(&self) -> Sequence {
        Self::new(self.symbols.iter().rev().copied().collect())
    }

    /// Iterates over the symbols.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Symbol> + ExactSizeIterator + '_ {
        self.symbols.iter().copied()
    }

    /// Renders the sequence with the names from `alphabet`.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        alphabet.render(&self.symbols)
    }
}

impl Index<usize> for Sequence {
    type Output = Symbol;

    fn index(&self, i: usize) -> &Symbol {
        &self.symbols[i]
    }
}

impl From<Vec<Symbol>> for Sequence {
    fn from(v: Vec<Symbol>) -> Self {
        Self::new(v)
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = Symbol;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Symbol>>;

    fn into_iter(self) -> Self::IntoIter {
        self.symbols.iter().copied()
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in self.symbols.iter() {
            write!(f, "{s} ")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::from_chars("ab".chars())
    }

    #[test]
    fn parse_and_render_round_trip() {
        let alphabet = ab();
        let s = Sequence::parse_str(&alphabet, "abba").unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.render(&alphabet), "abba");
    }

    #[test]
    fn parse_rejects_unknown_symbols() {
        let alphabet = ab();
        assert!(Sequence::parse_str(&alphabet, "abc").is_none());
    }

    #[test]
    fn intern_str_extends_the_alphabet() {
        let mut alphabet = ab();
        let s = Sequence::intern_str(&mut alphabet, "abc");
        assert_eq!(alphabet.len(), 3);
        assert_eq!(s.render(&alphabet), "abc");
    }

    #[test]
    fn reversed_reverses() {
        let alphabet = ab();
        let s = Sequence::parse_str(&alphabet, "aab").unwrap();
        assert_eq!(s.reversed().render(&alphabet), "baa");
        // Reversal is an involution.
        assert_eq!(s.reversed().reversed(), s);
    }

    #[test]
    fn segment_is_a_consecutive_portion() {
        let alphabet = ab();
        let s = Sequence::parse_str(&alphabet, "abba").unwrap();
        assert_eq!(alphabet.render(s.segment(1, 3)), "bb");
        assert_eq!(s.segment(0, 0), &[] as &[Symbol]);
        assert_eq!(s.segment(0, 4).len(), 4);
    }

    #[test]
    fn empty_sequence() {
        let s = Sequence::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.reversed().is_empty());
    }

    #[test]
    fn indexing_yields_symbols() {
        let alphabet = ab();
        let s = Sequence::parse_str(&alphabet, "ab").unwrap();
        assert_eq!(s[0], alphabet.get("a").unwrap());
        assert_eq!(s[1], alphabet.get("b").unwrap());
    }
}
