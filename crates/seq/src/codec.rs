//! Text codecs for sequence databases.
//!
//! Two simple line-oriented formats are supported:
//!
//! * **lines** — one sequence per line, one character per symbol, with an
//!   optional `label<TAB>` prefix (`3\tabba` = sequence `abba` labeled 3,
//!   `-\tabba` = explicit outlier);
//! * **FASTA-like** — `>header` lines start a record, subsequent lines are
//!   concatenated symbols; a header of the form `>name family=ig` attaches
//!   the family name as a label (families are interned in appearance order).

use std::collections::HashMap;

use crate::alphabet::Alphabet;
use crate::database::SequenceDatabase;
use crate::sequence::Sequence;

/// Errors produced while decoding text into a [`SequenceDatabase`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A label field could not be parsed as an integer or `-`.
    BadLabel {
        /// 1-based line number in the input.
        line: usize,
        /// The offending label text, verbatim.
        text: String,
    },
    /// A FASTA body line appeared before any `>` header.
    BodyBeforeHeader {
        /// 1-based line number in the input.
        line: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadLabel { line, text } => {
                write!(f, "line {line}: cannot parse label {text:?}")
            }
            CodecError::BodyBeforeHeader { line } => {
                write!(f, "line {line}: sequence data before first '>' header")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Decodes the one-sequence-per-line format.
///
/// Blank lines and lines starting with `#` are skipped. If a line contains a
/// tab, the text before the first tab is the label (`-` for outlier).
pub fn decode_lines(text: &str) -> Result<SequenceDatabase, CodecError> {
    let mut db = SequenceDatabase::new(Alphabet::new());
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end_matches(['\r', '\n']);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (label, body) = match line.split_once('\t') {
            Some((lab, body)) => {
                let label = if lab == "-" {
                    None
                } else {
                    Some(lab.parse::<u32>().map_err(|_| CodecError::BadLabel {
                        line: lineno + 1,
                        text: lab.to_owned(),
                    })?)
                };
                (label, body)
            }
            None => (None, line),
        };
        let seq = Sequence::intern_str(db.alphabet_mut(), body);
        db.push_labeled(seq, label);
    }
    Ok(db)
}

/// Encodes a database in the one-sequence-per-line format (inverse of
/// [`decode_lines`] when all symbol names are single characters).
pub fn encode_lines(db: &SequenceDatabase) -> String {
    let mut out = String::new();
    for (_, seq, label) in db.iter() {
        match label {
            Some(l) => {
                out.push_str(&l.to_string());
                out.push('\t');
            }
            None if db.has_labels() => out.push_str("-\t"),
            None => {}
        }
        out.push_str(&seq.render(db.alphabet()));
        out.push('\n');
    }
    out
}

/// Decodes a FASTA-like format. `family=<name>` in a header attaches a
/// label; family names are interned to dense ids in appearance order.
pub fn decode_fasta(text: &str) -> Result<SequenceDatabase, CodecError> {
    let mut db = SequenceDatabase::new(Alphabet::new());
    let mut families: HashMap<String, u32> = HashMap::new();
    let mut current: Option<(Option<u32>, String)> = None;

    let flush = |db: &mut SequenceDatabase, cur: &mut Option<(Option<u32>, String)>| {
        if let Some((label, body)) = cur.take() {
            let seq = Sequence::intern_str(db.alphabet_mut(), &body);
            db.push_labeled(seq, label);
        }
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            flush(&mut db, &mut current);
            let label = header
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("family="))
                .map(|fam| {
                    let next = families.len() as u32;
                    *families.entry(fam.to_owned()).or_insert(next)
                });
            current = Some((label, String::new()));
        } else {
            match &mut current {
                Some((_, body)) => body.push_str(line),
                None => return Err(CodecError::BodyBeforeHeader { line: lineno + 1 }),
            }
        }
    }
    flush(&mut db, &mut current);
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_lines_plain() {
        let db = decode_lines("ab\nba\n").unwrap();
        assert_eq!(db.len(), 2);
        assert!(!db.has_labels());
    }

    #[test]
    fn decode_lines_with_labels_and_outliers() {
        let db = decode_lines("0\tab\n1\tba\n-\tzz\n").unwrap();
        assert_eq!(db.labels(), vec![Some(0), Some(1), None]);
        assert_eq!(db.alphabet().len(), 3); // a, b, z
    }

    #[test]
    fn decode_lines_skips_comments_and_blanks() {
        let db = decode_lines("# header\n\nab\n").unwrap();
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn decode_lines_rejects_bad_label() {
        let err = decode_lines("x\tab\n").unwrap_err();
        assert!(matches!(err, CodecError::BadLabel { line: 1, .. }));
    }

    #[test]
    fn lines_round_trip_preserves_labels() {
        let text = "0\tab\n-\tba\n";
        let db = decode_lines(text).unwrap();
        assert_eq!(encode_lines(&db), text);
    }

    #[test]
    fn lines_round_trip_unlabeled() {
        let text = "ab\nba\n";
        let db = decode_lines(text).unwrap();
        assert_eq!(encode_lines(&db), text);
    }

    #[test]
    fn decode_fasta_concatenates_body_lines() {
        let db = decode_fasta(">p1 family=ig\nABC\nDEF\n>p2 family=globin\nGG\n").unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.sequence(0).len(), 6);
        assert_eq!(db.labels(), vec![Some(0), Some(1)]);
    }

    #[test]
    fn decode_fasta_shares_family_ids() {
        let db = decode_fasta(">a family=x\nAA\n>b family=y\nBB\n>c family=x\nCC\n").unwrap();
        assert_eq!(db.labels(), vec![Some(0), Some(1), Some(0)]);
    }

    #[test]
    fn decode_fasta_headers_without_family_are_unlabeled() {
        let db = decode_fasta(">anon\nAA\n").unwrap();
        assert_eq!(db.labels(), vec![None]);
    }

    #[test]
    fn decode_fasta_rejects_headerless_body() {
        let err = decode_fasta("ABC\n").unwrap_err();
        assert_eq!(err, CodecError::BodyBeforeHeader { line: 1 });
    }
}
