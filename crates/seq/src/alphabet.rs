//! Symbol interning.
//!
//! CLUSEQ operates over an arbitrary finite alphabet ℑ = {s₁, …, sₙ}
//! (amino acids, letters, log-event codes, …). Internally every symbol is a
//! dense `u16` id so probability vectors can be flat arrays indexed by
//! symbol; the [`Alphabet`] maps back and forth between external names and
//! ids.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense symbol identifier: an index into an [`Alphabet`].
///
/// `u16` bounds the alphabet at 65 535 distinct symbols, far beyond anything
/// in the paper's experiments (≤ 200 distinct symbols) while keeping
/// per-node probability vectors small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol(pub u16);

impl Symbol {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An interning table for the symbols of a sequence database.
///
/// Symbols are identified externally by strings (a single character for
/// text, an arbitrary token for logs). Interning is append-only: ids are
/// assigned in first-seen order and never reused.
///
/// ```
/// use cluseq_seq::Alphabet;
/// let mut ab = Alphabet::new();
/// let a = ab.intern("a");
/// let b = ab.intern("b");
/// assert_eq!(ab.intern("a"), a); // idempotent
/// assert_eq!(ab.len(), 2);
/// assert_eq!(ab.name(b), "b");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Alphabet {
    names: Vec<String>,
    ids: HashMap<String, Symbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet with `n` anonymous symbols named `"0"`, `"1"`, ….
    ///
    /// Convenient for synthetic workloads where symbols have no external
    /// meaning.
    pub fn synthetic(n: usize) -> Self {
        let mut ab = Self::new();
        for i in 0..n {
            ab.intern(&i.to_string());
        }
        ab
    }

    /// Creates an alphabet from single-character symbols.
    pub fn from_chars(chars: impl IntoIterator<Item = char>) -> Self {
        let mut ab = Self::new();
        for c in chars {
            ab.intern(&c.to_string());
        }
        ab
    }

    /// Creates the standard 20-letter amino-acid alphabet (one-letter codes).
    pub fn amino_acids() -> Self {
        Self::from_chars("ACDEFGHIKLMNPQRSTVWY".chars())
    }

    /// Creates the 26-letter lowercase Latin alphabet.
    pub fn latin_lowercase() -> Self {
        Self::from_chars('a'..='z')
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` distinct symbols are interned.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id =
            Symbol(u16::try_from(self.names.len()).expect("alphabet exceeds u16::MAX symbols"));
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned symbol without inserting.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.ids.get(name).copied()
    }

    /// Looks up a single-character symbol without inserting.
    pub fn get_char(&self, c: char) -> Option<Symbol> {
        let mut buf = [0u8; 4];
        self.get(c.encode_utf8(&mut buf))
    }

    /// The external name of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this alphabet.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in id order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len()).map(|i| Symbol(i as u16))
    }

    /// Renders a slice of symbols using their external names.
    ///
    /// Single-character names are concatenated directly; longer names are
    /// joined with spaces.
    pub fn render(&self, symbols: &[Symbol]) -> String {
        let single = symbols
            .iter()
            .all(|&s| self.names[s.index()].chars().count() == 1);
        let mut out = String::new();
        for (i, &s) in symbols.iter().enumerate() {
            if !single && i > 0 {
                out.push(' ');
            }
            out.push_str(&self.names[s.index()]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_in_order() {
        let mut ab = Alphabet::new();
        assert_eq!(ab.intern("x"), Symbol(0));
        assert_eq!(ab.intern("y"), Symbol(1));
        assert_eq!(ab.intern("z"), Symbol(2));
        assert_eq!(ab.len(), 3);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut ab = Alphabet::new();
        let x = ab.intern("x");
        ab.intern("y");
        assert_eq!(ab.intern("x"), x);
        assert_eq!(ab.len(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut ab = Alphabet::new();
        ab.intern("x");
        assert!(ab.get("y").is_none());
        assert_eq!(ab.len(), 1);
    }

    #[test]
    fn synthetic_names_are_numeric() {
        let ab = Alphabet::synthetic(4);
        assert_eq!(ab.len(), 4);
        assert_eq!(ab.name(Symbol(2)), "2");
        assert_eq!(ab.get("3"), Some(Symbol(3)));
    }

    #[test]
    fn amino_acid_alphabet_has_20_symbols() {
        let ab = Alphabet::amino_acids();
        assert_eq!(ab.len(), 20);
        assert!(ab.get("A").is_some());
        assert!(ab.get("W").is_some());
        assert!(ab.get("B").is_none()); // B is not a standard one-letter code
    }

    #[test]
    fn latin_alphabet_has_26_symbols() {
        let ab = Alphabet::latin_lowercase();
        assert_eq!(ab.len(), 26);
        assert_eq!(ab.get_char('a'), Some(Symbol(0)));
        assert_eq!(ab.get_char('z'), Some(Symbol(25)));
    }

    #[test]
    fn render_concatenates_single_char_names() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        assert_eq!(ab.render(&[a, b, a]), "aba");
    }

    #[test]
    fn render_joins_multichar_names_with_spaces() {
        let mut ab = Alphabet::new();
        let open = ab.intern("open");
        let close = ab.intern("close");
        assert_eq!(ab.render(&[open, close]), "open close");
    }

    #[test]
    fn symbols_iterates_in_id_order() {
        let ab = Alphabet::synthetic(3);
        let ids: Vec<_> = ab.symbols().collect();
        assert_eq!(ids, vec![Symbol(0), Symbol(1), Symbol(2)]);
    }
}
