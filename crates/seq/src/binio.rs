//! Binary persistence for sequence databases.
//!
//! The text codecs in [`crate::codec`] need one character per symbol; the
//! binary format handles any alphabet (multi-character symbol names,
//! more than 62 symbols) and loads an order of magnitude faster — the
//! right choice for the `--full` paper-scale workloads (100 000 × 1000
//! symbols ≈ 200 MB).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "CSDB" | version u32
//! alphabet: count u32, then per symbol: name (len u16, utf-8 bytes)
//! sequences: count u32, then per sequence:
//!   label u32 (MAX = none) | len u32 | symbols (u16 each)
//! ```
//!
//! Version 2 keeps this byte layout unchanged; the bump only marks files
//! that may carry a `.csix` sidecar offset index for out-of-core access
//! (see [`crate::store`]). [`decode`] accepts both versions; [`encode`]
//! still writes version 1 (no sidecar), while the streaming
//! [`crate::store::CseqWriter`] writes version 2 plus the sidecar.

use std::io::{self, Read, Write};

use crate::alphabet::Alphabet;
use crate::database::SequenceDatabase;
use crate::sequence::Sequence;
use crate::Symbol;

pub(crate) const MAGIC: &[u8; 4] = b"CSDB";
const VERSION: u32 = 1;
/// The version written by the streaming indexed writer.
pub(crate) const VERSION_INDEXED: u32 = 2;

/// Errors produced while decoding a binary database.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid content.
    Corrupt(&'static str),
}

impl From<io::Error> for BinError {
    fn from(e: io::Error) -> Self {
        BinError::Io(e)
    }
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "i/o error: {e}"),
            BinError::BadMagic => write!(f, "not a CSDB file (bad magic)"),
            BinError::BadVersion(v) => write!(f, "unsupported CSDB version {v}"),
            BinError::Corrupt(what) => write!(f, "corrupt CSDB file: {what}"),
        }
    }
}

impl std::error::Error for BinError {}

fn w16(w: &mut impl Write, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn r16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}
fn r32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes `db` in the binary format.
pub fn encode(db: &SequenceDatabase, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w32(w, VERSION)?;
    let alphabet = db.alphabet();
    w32(w, alphabet.len() as u32)?;
    for sym in alphabet.symbols() {
        let name = alphabet.name(sym).as_bytes();
        w16(w, name.len() as u16)?;
        w.write_all(name)?;
    }
    w32(w, db.len() as u32)?;
    for (_, seq, label) in db.iter() {
        w32(w, label.unwrap_or(u32::MAX))?;
        w32(w, seq.len() as u32)?;
        for s in seq.iter() {
            w16(w, s.0)?;
        }
    }
    Ok(())
}

/// Reads the container header — magic, version, alphabet, and the
/// declared sequence count — leaving the reader positioned at the first
/// record. Shared between [`decode`] and the out-of-core
/// [`crate::store::FileStore`], which indexes records instead of
/// materializing them.
pub(crate) fn decode_header(r: &mut impl Read) -> Result<(Alphabet, usize), BinError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinError::BadMagic);
    }
    let version = r32(r)?;
    if !(VERSION..=VERSION_INDEXED).contains(&version) {
        return Err(BinError::BadVersion(version));
    }
    let n_sym = r32(r)? as usize;
    if n_sym > u16::MAX as usize {
        return Err(BinError::Corrupt("alphabet too large"));
    }
    let mut alphabet = Alphabet::new();
    for _ in 0..n_sym {
        let len = r16(r)? as usize;
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        let name = String::from_utf8(buf).map_err(|_| BinError::Corrupt("symbol name utf-8"))?;
        alphabet.intern(&name);
    }
    if alphabet.len() != n_sym {
        return Err(BinError::Corrupt("duplicate symbol names"));
    }
    let n_seq = r32(r)? as usize;
    Ok((alphabet, n_seq))
}

/// Reads a database in the binary format (either version).
pub fn decode(r: &mut impl Read) -> Result<SequenceDatabase, BinError> {
    let (alphabet, n_seq) = decode_header(r)?;
    let n_sym = alphabet.len();
    let mut db = SequenceDatabase::new(alphabet);
    for _ in 0..n_seq {
        let label = match r32(r)? {
            u32::MAX => None,
            l => Some(l),
        };
        let len = r32(r)? as usize;
        let mut symbols = Vec::with_capacity(len);
        for _ in 0..len {
            let s = r16(r)?;
            if s as usize >= n_sym {
                return Err(BinError::Corrupt("symbol id out of range"));
            }
            symbols.push(Symbol(s));
        }
        db.push_labeled(Sequence::new(symbols), label);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> SequenceDatabase {
        let mut alphabet = Alphabet::new();
        alphabet.intern("open");
        alphabet.intern("close");
        alphabet.intern("x");
        let mut db = SequenceDatabase::new(alphabet);
        let mk = |ids: &[u16]| Sequence::new(ids.iter().map(|&i| Symbol(i)).collect());
        db.push_labeled(mk(&[0, 1, 0, 2]), Some(7));
        db.push_labeled(mk(&[2, 2]), None);
        db.push_labeled(mk(&[]), Some(0));
        db
    }

    fn round_trip(db: &SequenceDatabase) -> SequenceDatabase {
        let mut buf = Vec::new();
        encode(db, &mut buf).unwrap();
        decode(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = fixture();
        let loaded = round_trip(&db);
        assert_eq!(loaded.len(), db.len());
        assert_eq!(loaded.alphabet().len(), db.alphabet().len());
        assert_eq!(loaded.alphabet().name(Symbol(0)), "open");
        for i in 0..db.len() {
            assert_eq!(loaded.sequence(i), db.sequence(i));
            assert_eq!(loaded.label(i), db.label(i));
        }
    }

    #[test]
    fn multicharacter_names_survive() {
        let db = fixture();
        let loaded = round_trip(&db);
        assert_eq!(loaded.alphabet().get("close"), Some(Symbol(1)));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            decode(&mut &b"WXYZ"[..]).unwrap_err(),
            BinError::BadMagic
        ));
    }

    #[test]
    fn version_2_files_decode_like_version_1() {
        let db = fixture();
        let mut buf = Vec::new();
        encode(&db, &mut buf).unwrap();
        buf[4..8].copy_from_slice(&VERSION_INDEXED.to_le_bytes());
        let loaded = decode(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), db.len());
        for i in 0..db.len() {
            assert_eq!(loaded.sequence(i), db.sequence(i));
        }
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            decode(&mut buf.as_slice()).unwrap_err(),
            BinError::BadVersion(9)
        ));
    }

    #[test]
    fn truncation_is_an_io_error() {
        let mut buf = Vec::new();
        encode(&fixture(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            decode(&mut buf.as_slice()).unwrap_err(),
            BinError::Io(_)
        ));
    }

    #[test]
    fn out_of_range_symbols_are_rejected() {
        let mut buf = Vec::new();
        encode(&fixture(), &mut buf).unwrap();
        // Last two bytes encode the final symbol (id 0 of the third,
        // empty sequence... adjust: corrupt the final symbol of seq 1).
        let n = buf.len();
        buf[n - 10..n - 8].copy_from_slice(&999u16.to_le_bytes());
        // Either Corrupt or a clean structural error — never a panic.
        let _ = decode(&mut buf.as_slice());
    }
}
