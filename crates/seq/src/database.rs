//! Sequence databases: collections of sequences over a shared alphabet,
//! optionally carrying ground-truth class labels for evaluation.

use serde::{Deserialize, Serialize};

use crate::alphabet::Alphabet;
use crate::background::BackgroundModel;
use crate::sequence::Sequence;

/// A sequence together with an optional ground-truth class label.
///
/// Labels are *never* consulted by the clustering algorithms; they exist so
/// the evaluation crate can compute precision/recall against a known
/// partition (the paper's protein families and languages).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledSequence {
    /// The sequence itself.
    pub sequence: Sequence,
    /// Ground-truth class id; `None` marks a planted outlier/noise sequence.
    pub label: Option<u32>,
}

/// A set of sequences sharing one [`Alphabet`].
///
/// This is the input to every clustering algorithm in the workspace. The
/// paper (§2): *"A sequence database is a set of sequences. Given a sequence
/// database, our objective is to categorize these sequences into clusters
/// according to their sequential similarities."*
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SequenceDatabase {
    alphabet: Alphabet,
    entries: Vec<LabeledSequence>,
}

impl SequenceDatabase {
    /// Creates an empty database over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Self {
        Self {
            alphabet,
            entries: Vec::new(),
        }
    }

    /// Builds a database from single-character-symbol strings, interning
    /// symbols as they appear.
    pub fn from_strs<'a>(texts: impl IntoIterator<Item = &'a str>) -> Self {
        let mut alphabet = Alphabet::new();
        let entries = texts
            .into_iter()
            .map(|t| LabeledSequence {
                sequence: Sequence::intern_str(&mut alphabet, t),
                label: None,
            })
            .collect();
        Self { alphabet, entries }
    }

    /// Adds an unlabeled sequence, returning its id (index).
    pub fn push(&mut self, sequence: Sequence) -> usize {
        self.push_labeled(sequence, None)
    }

    /// Adds a sequence with an optional ground-truth label, returning its id.
    pub fn push_labeled(&mut self, sequence: Sequence, label: Option<u32>) -> usize {
        debug_assert!(
            sequence
                .iter()
                .all(|s| s.index() < self.alphabet.len().max(1)),
            "sequence contains symbols outside the database alphabet"
        );
        self.entries.push(LabeledSequence { sequence, label });
        self.entries.len() - 1
    }

    /// The shared alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Mutable access to the alphabet (for interning while loading).
    pub fn alphabet_mut(&mut self) -> &mut Alphabet {
        &mut self.alphabet
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sequence with id `i`.
    pub fn sequence(&self, i: usize) -> &Sequence {
        &self.entries[i].sequence
    }

    /// The ground-truth label of sequence `i`, if any.
    pub fn label(&self, i: usize) -> Option<u32> {
        self.entries[i].label
    }

    /// Iterates over the sequences in id order.
    pub fn sequences(&self) -> impl ExactSizeIterator<Item = &Sequence> + '_ {
        self.entries.iter().map(|e| &e.sequence)
    }

    /// Iterates over `(id, sequence, label)` triples.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (usize, &Sequence, Option<u32>)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, &e.sequence, e.label))
    }

    /// All ground-truth labels in id order (`None` for outliers).
    pub fn labels(&self) -> Vec<Option<u32>> {
        self.entries.iter().map(|e| e.label).collect()
    }

    /// Whether any sequence carries a ground-truth label.
    pub fn has_labels(&self) -> bool {
        self.entries.iter().any(|e| e.label.is_some())
    }

    /// Number of distinct ground-truth classes (ignoring outliers).
    pub fn class_count(&self) -> usize {
        let mut seen: Vec<u32> = self.entries.iter().filter_map(|e| e.label).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Total number of symbols across all sequences.
    pub fn total_symbols(&self) -> usize {
        self.entries.iter().map(|e| e.sequence.len()).sum()
    }

    /// Average sequence length (0.0 for an empty database).
    pub fn avg_len(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.total_symbols() as f64 / self.entries.len() as f64
        }
    }

    /// Fits the memoryless background model over the whole database.
    pub fn background(&self) -> BackgroundModel {
        BackgroundModel::fit(self.alphabet.len(), self.sequences())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_strs_interns_and_stores() {
        let db = SequenceDatabase::from_strs(["ab", "ba", "aab"]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.alphabet().len(), 2);
        assert_eq!(db.sequence(2).len(), 3);
        assert_eq!(db.total_symbols(), 7);
    }

    #[test]
    fn labels_default_to_none() {
        let db = SequenceDatabase::from_strs(["ab"]);
        assert_eq!(db.label(0), None);
        assert!(!db.has_labels());
        assert_eq!(db.class_count(), 0);
    }

    #[test]
    fn push_labeled_tracks_classes() {
        let mut db = SequenceDatabase::new(Alphabet::from_chars("ab".chars()));
        let s = Sequence::parse_str(db.alphabet(), "ab").unwrap();
        db.push_labeled(s.clone(), Some(7));
        db.push_labeled(s.clone(), Some(7));
        db.push_labeled(s, None);
        assert_eq!(db.class_count(), 1);
        assert!(db.has_labels());
        assert_eq!(db.labels(), vec![Some(7), Some(7), None]);
    }

    #[test]
    fn avg_len_over_mixed_lengths() {
        let db = SequenceDatabase::from_strs(["a", "aaa"]);
        assert!((db.avg_len() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn avg_len_of_empty_database_is_zero() {
        let db = SequenceDatabase::new(Alphabet::new());
        assert_eq!(db.avg_len(), 0.0);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let db = SequenceDatabase::from_strs(["a", "b"]);
        let ids: Vec<usize> = db.iter().map(|(i, _, _)| i).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
