//! Sequence substrate for the CLUSEQ sequence-clustering system.
//!
//! This crate provides the foundational types every other crate in the
//! workspace builds on:
//!
//! * [`Alphabet`] — an interning table mapping external symbols (characters
//!   or strings) to dense [`Symbol`] ids;
//! * [`Sequence`] — an ordered list of symbols, stored densely;
//! * [`SequenceDatabase`] — a set of sequences sharing one alphabet,
//!   optionally carrying ground-truth labels;
//! * [`BackgroundModel`] — the memoryless symbol distribution `p(s)` used as
//!   the denominator of the CLUSEQ similarity measure;
//! * [`codec`] — simple text codecs (one-sequence-per-line, FASTA-like);
//! * [`store`] — the out-of-core [`SequenceStore`] abstraction: streaming
//!   CSEQ v2 writes, the `.csix` sidecar offset index, and the windowed
//!   file-backed [`FileStore`].
//!
//! The CLUSEQ paper (Yang & Wang, ICDE 2003) defines a sequence as an
//! ordered list of symbols over a finite alphabet ℑ and a *segment* as a
//! consecutive portion of a sequence; those definitions are mirrored here.

#![warn(missing_docs)]

pub mod alphabet;
pub mod background;
pub mod binio;
pub mod codec;
pub mod database;
pub mod sequence;
pub mod store;

pub use alphabet::{Alphabet, Symbol};
pub use background::BackgroundModel;
pub use database::{LabeledSequence, SequenceDatabase};
pub use sequence::Sequence;
pub use store::{CseqWriter, FileStore, SequenceStore, StoreKind, StoreReader};
