//! A suffix automaton (Blumer et al. / Crochemore's DAWG) with
//! linear-time longest-common-substring queries.
//!
//! The block-edit baseline's inner loop is a longest-common-substring
//! search; the naive DP costs O(n·m) per fragment pair, which is exactly
//! why the paper's EDBO column is the slowest (13754 s). The suffix
//! automaton brings one LCS query down to O(n + m): build the automaton
//! over `a` once, then walk `b` through it maintaining the length of the
//! longest suffix of the consumed prefix that occurs in `a`. The
//! `baseline_distances` bench compares the two.
//!
//! This is also the one classic linear suffix-indexing structure the
//! paper's §3 bibliography leans on (Ukkonen-style online construction of
//! suffix structures): `extend` adds one symbol in amortized O(1).

use cluseq_seq::Symbol;

/// One automaton state: a set of end-positions sharing the same right
/// extensions; recognizes a contiguous range of substring lengths
/// `(len(link), len]`.
#[derive(Debug, Clone)]
struct State {
    /// Longest substring length in this state's class.
    len: usize,
    /// Suffix link (`usize::MAX` for the initial state).
    link: usize,
    /// End index (0-based, inclusive) of the first occurrence of this
    /// state's substrings.
    first_end: usize,
    /// Outgoing transitions, sorted by symbol.
    trans: Vec<(Symbol, usize)>,
}

impl State {
    fn get(&self, s: Symbol) -> Option<usize> {
        match self.trans.binary_search_by_key(&s, |&(x, _)| x) {
            Ok(i) => Some(self.trans[i].1),
            Err(_) => None,
        }
    }

    fn set(&mut self, s: Symbol, to: usize) {
        match self.trans.binary_search_by_key(&s, |&(x, _)| x) {
            Ok(i) => self.trans[i].1 = to,
            Err(i) => self.trans.insert(i, (s, to)),
        }
    }
}

/// A suffix automaton over one sequence.
#[derive(Debug, Clone)]
pub struct SuffixAutomaton {
    states: Vec<State>,
    last: usize,
    length: usize,
}

impl Default for SuffixAutomaton {
    fn default() -> Self {
        Self::new()
    }
}

impl SuffixAutomaton {
    /// The automaton of the empty sequence.
    pub fn new() -> Self {
        Self {
            states: vec![State {
                len: 0,
                link: usize::MAX,
                first_end: usize::MAX,
                trans: Vec::new(),
            }],
            last: 0,
            length: 0,
        }
    }

    /// Builds the automaton of `seq` (O(|seq|) amortized).
    pub fn from_sequence(seq: &[Symbol]) -> Self {
        let mut sam = Self::new();
        for &s in seq {
            sam.extend(s);
        }
        sam
    }

    /// Number of automaton states (≤ 2·|seq| − 1 for |seq| ≥ 2).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Length of the indexed sequence.
    pub fn len(&self) -> usize {
        self.length
    }

    /// Whether the indexed sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.length == 0
    }

    /// Online extension by one symbol (the standard SAM construction).
    pub fn extend(&mut self, s: Symbol) {
        let pos = self.length;
        self.length += 1;
        let cur = self.states.len();
        self.states.push(State {
            len: self.states[self.last].len + 1,
            link: 0,
            first_end: pos,
            trans: Vec::new(),
        });
        let mut p = self.last;
        loop {
            if p == usize::MAX {
                self.states[cur].link = 0;
                break;
            }
            if let Some(q) = self.states[p].get(s) {
                if self.states[p].len + 1 == self.states[q].len {
                    self.states[cur].link = q;
                } else {
                    // Clone q: split its length range.
                    let clone = self.states.len();
                    let mut cloned = self.states[q].clone();
                    cloned.len = self.states[p].len + 1;
                    self.states.push(cloned);
                    // Redirect transitions into q from p's suffix chain.
                    let mut pp = p;
                    while pp != usize::MAX && self.states[pp].get(s) == Some(q) {
                        self.states[pp].set(s, clone);
                        pp = self.states[pp].link;
                    }
                    self.states[q].link = clone;
                    self.states[cur].link = clone;
                }
                break;
            }
            self.states[p].set(s, cur);
            p = self.states[p].link;
        }
        self.last = cur;
    }

    /// Whether `needle` occurs as a substring of the indexed sequence.
    pub fn contains(&self, needle: &[Symbol]) -> bool {
        let mut state = 0usize;
        for &s in needle {
            match self.states[state].get(s) {
                Some(next) => state = next,
                None => return false,
            }
        }
        true
    }

    /// Longest common substring between the indexed sequence and `other`:
    /// returns `(length, start_in_indexed, start_in_other)`, or `None`
    /// when nothing is shared. O(|other|) time.
    pub fn lcs(&self, other: &[Symbol]) -> Option<(usize, usize, usize)> {
        let mut state = 0usize;
        let mut matched = 0usize;
        let mut best: Option<(usize, usize, usize)> = None;
        for (i, &s) in other.iter().enumerate() {
            // Shrink the current match until it can be extended by s.
            loop {
                if let Some(next) = self.states[state].get(s) {
                    state = next;
                    matched += 1;
                    break;
                }
                if state == 0 {
                    matched = 0;
                    break;
                }
                state = self.states[state].link;
                matched = self.states[state].len;
            }
            if matched > 0 && best.map_or(true, |(bl, ..)| matched > bl) {
                // The match of length `matched` ends at other[i]; one
                // occurrence in the indexed sequence ends at first_end of
                // the *current* state… except the state may represent
                // longer strings than `matched`; first_end still marks a
                // valid end position of the matched suffix.
                let end_a = self.states[state].first_end;
                best = Some((matched, end_a + 1 - matched, i + 1 - matched));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_seq::{Alphabet, Sequence};

    fn syms(text: &str) -> Vec<Symbol> {
        let alphabet = Alphabet::from_chars('a'..='h');
        Sequence::parse_str(&alphabet, text)
            .unwrap()
            .iter()
            .collect()
    }

    /// Reference LCS via the O(n·m) DP.
    fn dp_lcs_len(a: &[Symbol], b: &[Symbol]) -> usize {
        let mut best = 0;
        let mut prev = vec![0usize; b.len() + 1];
        let mut cur = vec![0usize; b.len() + 1];
        for &sa in a {
            for (j, &sb) in b.iter().enumerate() {
                cur[j + 1] = if sa == sb { prev[j] + 1 } else { 0 };
                best = best.max(cur[j + 1]);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        best
    }

    #[test]
    fn contains_all_substrings_and_nothing_else() {
        let text = syms("abcabd");
        let sam = SuffixAutomaton::from_sequence(&text);
        for start in 0..text.len() {
            for end in start + 1..=text.len() {
                assert!(sam.contains(&text[start..end]), "{start}..{end}");
            }
        }
        assert!(sam.contains(&[]), "empty is trivially contained");
        assert!(sam.contains(&syms("ca")));
        assert!(!sam.contains(&syms("dd")));
        assert!(!sam.contains(&syms("bda")));
    }

    #[test]
    fn state_count_is_linear() {
        let text = syms("abcabcabcabcab");
        let sam = SuffixAutomaton::from_sequence(&text);
        assert!(sam.state_count() <= 2 * text.len());
    }

    #[test]
    fn lcs_finds_known_blocks() {
        let a = syms("ggabcdhh");
        let b = syms("fabcdf");
        let sam = SuffixAutomaton::from_sequence(&a);
        let (len, pa, pb) = sam.lcs(&b).unwrap();
        assert_eq!(len, 4);
        assert_eq!(&a[pa..pa + len], &b[pb..pb + len]);
        assert_eq!(&a[pa..pa + len], &syms("abcd")[..]);
    }

    #[test]
    fn lcs_of_disjoint_is_none() {
        let sam = SuffixAutomaton::from_sequence(&syms("aaa"));
        assert_eq!(sam.lcs(&syms("bbb")), None);
        assert_eq!(sam.lcs(&[]), None);
        assert_eq!(SuffixAutomaton::new().lcs(&syms("ab")), None);
    }

    #[test]
    fn lcs_positions_are_valid_occurrences() {
        let a = syms("abcabdabe");
        let b = syms("cabdabc");
        let sam = SuffixAutomaton::from_sequence(&a);
        let (len, pa, pb) = sam.lcs(&b).unwrap();
        assert_eq!(dp_lcs_len(&a, &b), len);
        assert_eq!(&a[pa..pa + len], &b[pb..pb + len]);
    }

    #[test]
    fn lcs_length_matches_dp_on_fixed_cases() {
        let cases = [
            ("abcdefgh", "hgfedcba"),
            ("aaaa", "aa"),
            ("abab", "baba"),
            ("abcabc", "cba"),
            ("a", "a"),
            ("fgh", "abc"),
        ];
        for (x, y) in cases {
            let a = syms(x);
            let b = syms(y);
            let sam = SuffixAutomaton::from_sequence(&a);
            let sam_len = sam.lcs(&b).map_or(0, |(l, ..)| l);
            assert_eq!(sam_len, dp_lcs_len(&a, &b), "({x}, {y})");
        }
    }

    #[test]
    fn online_extension_matches_batch_build() {
        let text = syms("abcabd");
        let batch = SuffixAutomaton::from_sequence(&text);
        let mut online = SuffixAutomaton::new();
        for &s in &text {
            online.extend(s);
        }
        assert_eq!(online.state_count(), batch.state_count());
        assert_eq!(online.len(), batch.len());
        assert!(online.contains(&syms("cab")));
    }
}
