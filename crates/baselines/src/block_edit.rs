//! Block edit distance (the paper's "EDBO" baseline).
//!
//! Edit distance with block operations lets a consecutive block be
//! inserted, deleted, moved, or reversed at constant cost, fixing the
//! `aaaabbb` / `bbbaaaa` anomaly — but computing it exactly is NP-hard
//! (Muthukrishnan & Sahinalp; the paper cites this in §1). The paper used
//! an unspecified approximation; we implement a **greedy block-cover
//! heuristic** in the spirit of the classic 2-approximation for edit
//! distance with moves: repeatedly take the longest common substring of
//! what remains of `a` and `b`, charge one block operation, and remove it
//! from both; leftover symbols cost one each.
//!
//! The heuristic preserves the two properties Table 2 depends on: block
//! rearrangements are cheap (EDBO accuracy ≈ CLUSEQ's), and the repeated
//! longest-common-substring search is *far* more expensive than plain edit
//! distance (EDBO response time ≫ everything else).

use std::collections::HashMap;

use cluseq_seq::Symbol;

use crate::suffix_automaton::SuffixAutomaton;

/// Greedy block-cover distance between `a` and `b`.
///
/// Cost model: each greedily matched common block costs 1 (one block move),
/// and each symbol left unmatched in either sequence costs 1 (an
/// insert/delete). Blocks shorter than `min_block` are not matched as
/// blocks. Identical sequences cost 0 (the single covering block is free
/// when it covers both entirely).
///
/// Like most greedy covers, the result is **not exactly symmetric**: when
/// several longest blocks tie, the fragment-scan order breaks the tie, and
/// the two directions can fragment differently. Clustering callers
/// symmetrize by caching on the unordered pair ([`BlockEditCache`]).
pub fn block_edit_distance(a: &[Symbol], b: &[Symbol], min_block: usize) -> usize {
    assert!(min_block >= 1);
    if a == b {
        return 0;
    }
    // Remaining fragments of each sequence.
    let mut fragments_a: Vec<Vec<Symbol>> = vec![a.to_vec()];
    let mut fragments_b: Vec<Vec<Symbol>> = vec![b.to_vec()];
    let mut blocks = 0usize;

    loop {
        // Longest common substring across all fragment pairs.
        let mut best: Option<(usize, usize, usize, usize, usize)> = None; // (len, fa, fb, pos_a, pos_b)
        for (ia, fa) in fragments_a.iter().enumerate() {
            for (ib, fb) in fragments_b.iter().enumerate() {
                if let Some((len, pa, pb)) = longest_common_substring(fa, fb) {
                    if len >= min_block && best.map_or(true, |(bl, ..)| len > bl) {
                        best = Some((len, ia, ib, pa, pb));
                    }
                }
            }
        }
        let Some((len, ia, ib, pa, pb)) = best else {
            break;
        };
        blocks += 1;
        split_out(&mut fragments_a, ia, pa, len);
        split_out(&mut fragments_b, ib, pb, len);
    }

    let leftover_a: usize = fragments_a.iter().map(Vec::len).sum();
    let leftover_b: usize = fragments_b.iter().map(Vec::len).sum();
    // The first block is the "backbone" and free: matching two identical
    // halves of a 2-block swap should cost 1 (one move), not 2.
    blocks.saturating_sub(1) + leftover_a + leftover_b
}

/// Removes `fragment[pos..pos+len]`, splitting the fragment in two.
fn split_out(fragments: &mut Vec<Vec<Symbol>>, idx: usize, pos: usize, len: usize) {
    let frag = fragments.swap_remove(idx);
    let left = frag[..pos].to_vec();
    let right = frag[pos + len..].to_vec();
    if !left.is_empty() {
        fragments.push(left);
    }
    if !right.is_empty() {
        fragments.push(right);
    }
}

/// Longest common substring of two fragments: the classic O(n·m) DP for
/// small inputs, a suffix automaton (O(n+m) per query) once the product
/// gets large. Tie-breaking can differ between the two paths — both return
/// *a* longest block, which is all the greedy cover needs.
fn longest_common_substring(a: &[Symbol], b: &[Symbol]) -> Option<(usize, usize, usize)> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    // Beyond this many DP cells the automaton wins despite its build cost.
    const DP_CELL_LIMIT: usize = 16 * 1024;
    if a.len() * b.len() > DP_CELL_LIMIT {
        return SuffixAutomaton::from_sequence(a).lcs(b);
    }
    let mut best = (0usize, 0usize, 0usize);
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &sa) in a.iter().enumerate() {
        for (j, &sb) in b.iter().enumerate() {
            cur[j + 1] = if sa == sb { prev[j] + 1 } else { 0 };
            if cur[j + 1] > best.0 {
                best = (cur[j + 1], i + 1 - cur[j + 1], j + 1 - cur[j + 1]);
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    if best.0 == 0 {
        None
    } else {
        Some(best)
    }
}

/// A memoized pairwise block-edit scorer, used by the clustering driver to
/// avoid recomputing symmetric pairs.
#[derive(Default)]
pub struct BlockEditCache {
    cache: HashMap<(usize, usize), usize>,
}

impl BlockEditCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached distance between sequences `i` and `j`, computing it with
    /// `f` on a miss.
    pub fn get_or_compute(&mut self, i: usize, j: usize, f: impl FnOnce() -> usize) -> usize {
        let key = (i.min(j), i.max(j));
        *self.cache.entry(key).or_insert_with(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_seq::{Alphabet, Sequence};

    fn syms(text: &str) -> Vec<Symbol> {
        let alphabet = Alphabet::from_chars('a'..='h');
        Sequence::parse_str(&alphabet, text)
            .unwrap()
            .iter()
            .collect()
    }

    #[test]
    fn identical_sequences_cost_zero() {
        assert_eq!(block_edit_distance(&syms("abcabc"), &syms("abcabc"), 2), 0);
        assert_eq!(block_edit_distance(&[], &[], 2), 0);
    }

    #[test]
    fn block_swap_is_cheap() {
        // The paper's motivating pair: one block move apart.
        let d_swap = block_edit_distance(&syms("aaaabbb"), &syms("bbbaaaa"), 2);
        let d_unrelated = block_edit_distance(&syms("aaaabbb"), &syms("abcdefg"), 2);
        assert!(
            d_swap < d_unrelated,
            "block swap ({d_swap}) must be cheaper than unrelated ({d_unrelated})"
        );
        assert_eq!(d_swap, 1, "exactly one block move");
    }

    #[test]
    fn disjoint_alphabets_cost_everything() {
        let d = block_edit_distance(&syms("aaa"), &syms("bbb"), 2);
        assert_eq!(d, 6, "no shared blocks: all six symbols are edits");
    }

    #[test]
    fn single_symbol_tail_costs_one() {
        let d = block_edit_distance(&syms("abcdef"), &syms("abcdefg"), 2);
        assert_eq!(d, 1);
    }

    #[test]
    fn three_way_shuffle() {
        // abc|def|gh -> gh|abc|def : two extra blocks beyond the backbone.
        let d = block_edit_distance(&syms("abcdefgh"), &syms("ghabcdef"), 2);
        assert_eq!(d, 1, "one move suffices: take gh to the front");
    }

    #[test]
    fn min_block_filters_short_matches() {
        // The longest common substring of abab/baba is "aba" (length 3);
        // with min_block 4 nothing can be matched and all 8 symbols are
        // leftover edits.
        let d = block_edit_distance(&syms("abab"), &syms("baba"), 4);
        assert_eq!(d, 8);
        // With min_block 1 the greedy cover matches blocks.
        let d1 = block_edit_distance(&syms("abab"), &syms("baba"), 1);
        assert!(d1 < 8);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = syms("abcdefg");
        let b = syms("gfedcba");
        assert_eq!(
            block_edit_distance(&a, &b, 2),
            block_edit_distance(&b, &a, 2)
        );
    }

    #[test]
    fn lcs_finds_the_longest_block() {
        let (len, pa, pb) = longest_common_substring(&syms("ggabcdhh"), &syms("fabcdf")).unwrap();
        assert_eq!(len, 4);
        assert_eq!(pa, 2);
        assert_eq!(pb, 1);
    }

    #[test]
    fn lcs_of_disjoint_is_none() {
        assert_eq!(longest_common_substring(&syms("aaa"), &syms("bbb")), None);
        assert_eq!(longest_common_substring(&[], &syms("a")), None);
    }

    #[test]
    fn cache_symmetrizes_keys() {
        let mut cache = BlockEditCache::new();
        let mut calls = 0;
        let d1 = cache.get_or_compute(3, 7, || {
            calls += 1;
            42
        });
        let d2 = cache.get_or_compute(7, 3, || {
            calls += 1;
            99
        });
        assert_eq!(d1, 42);
        assert_eq!(d2, 42, "symmetric key hits the cache");
        assert_eq!(calls, 1);
    }
}
