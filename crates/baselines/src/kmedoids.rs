//! k-medoids clustering over an arbitrary pairwise distance.
//!
//! The distance-based baselines (edit distance, block edit distance) need a
//! clustering driver that works from pairwise distances alone — medoids,
//! not centroids, since sequences cannot be averaged. This is a standard
//! PAM-style alternating scheme with k-means++-flavoured seeding.

#![allow(clippy::needless_range_loop)] // index-parallel arrays (nearest, assignment)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Clusters `n` items into `k` groups given a pairwise distance.
///
/// `dist(i, j)` must be symmetric and non-negative (it is called with
/// `i != j` only). Returns one cluster index per item (every item is
/// assigned — distance-based baselines have no outlier notion).
///
/// The loop alternates assignment and medoid recomputation until stable or
/// `max_iter` rounds. Deterministic given `seed`.
pub fn k_medoids(
    n: usize,
    k: usize,
    mut dist: impl FnMut(usize, usize) -> f64,
    max_iter: usize,
    seed: u64,
) -> Vec<Option<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let k = k.max(1).min(n);
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++-style seeding: first medoid random, then each next medoid
    // is the point farthest from its nearest chosen medoid.
    let mut medoids: Vec<usize> = vec![rng.gen_range(0..n)];
    let mut nearest = vec![f64::INFINITY; n];
    while medoids.len() < k {
        let newest = *medoids.last().expect("non-empty");
        for (i, near) in nearest.iter_mut().enumerate() {
            if i != newest {
                *near = near.min(dist(i, newest));
            } else {
                *near = 0.0;
            }
        }
        let far = (0..n)
            .filter(|i| !medoids.contains(i))
            .max_by(|&a, &b| nearest[a].total_cmp(&nearest[b]));
        match far {
            Some(f) => medoids.push(f),
            None => break,
        }
    }

    let mut assignment = vec![0usize; n];
    for _ in 0..max_iter {
        // Assignment step.
        let mut changed = false;
        for i in 0..n {
            let best = medoids
                .iter()
                .enumerate()
                .min_by(|(_, &ma), (_, &mb)| {
                    let da = if i == ma { 0.0 } else { dist(i, ma) };
                    let db = if i == mb { 0.0 } else { dist(i, mb) };
                    da.total_cmp(&db)
                })
                .map(|(slot, _)| slot)
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }

        // Medoid update: the member minimizing total intra-cluster
        // distance.
        let mut new_medoids = medoids.clone();
        for (slot, new_medoid) in new_medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == slot).collect();
            if members.is_empty() {
                continue;
            }
            let best = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let ca: f64 = members
                        .iter()
                        .filter(|&&m| m != a)
                        .map(|&m| dist(a, m))
                        .sum();
                    let cb: f64 = members
                        .iter()
                        .filter(|&&m| m != b)
                        .map(|&m| dist(b, m))
                        .sum();
                    ca.total_cmp(&cb)
                })
                .expect("non-empty members");
            *new_medoid = best;
        }

        let medoids_stable = new_medoids == medoids;
        medoids = new_medoids;
        if medoids_stable && !changed {
            break;
        }
    }

    assignment.into_iter().map(Some).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance on a line: |pos(i) - pos(j)|.
    fn line_dist(points: &'static [f64]) -> impl FnMut(usize, usize) -> f64 {
        move |i, j| (points[i] - points[j]).abs()
    }

    #[test]
    fn separates_two_obvious_groups() {
        static P: [f64; 6] = [0.0, 0.5, 1.0, 10.0, 10.5, 11.0];
        let a = k_medoids(6, 2, line_dist(&P), 20, 1);
        assert_eq!(a[0], a[1]);
        assert_eq!(a[1], a[2]);
        assert_eq!(a[3], a[4]);
        assert_eq!(a[4], a[5]);
        assert_ne!(a[0], a[3]);
    }

    #[test]
    fn k_one_puts_everything_together() {
        static P: [f64; 4] = [0.0, 1.0, 2.0, 100.0];
        let a = k_medoids(4, 1, line_dist(&P), 10, 2);
        assert!(a.iter().all(|&x| x == a[0]));
    }

    #[test]
    fn k_clamped_to_n() {
        static P: [f64; 3] = [0.0, 5.0, 10.0];
        let a = k_medoids(3, 10, line_dist(&P), 10, 3);
        // With k = n every point can be its own medoid.
        let mut slots: Vec<_> = a.iter().map(|x| x.unwrap()).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 3);
    }

    #[test]
    fn empty_input() {
        let a = k_medoids(0, 3, |_, _| 0.0, 10, 4);
        assert!(a.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        static P: [f64; 8] = [0.0, 1.0, 2.0, 3.0, 20.0, 21.0, 22.0, 23.0];
        let a = k_medoids(8, 2, line_dist(&P), 20, 7);
        let b = k_medoids(8, 2, line_dist(&P), 20, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn farthest_first_seeding_spreads_medoids() {
        // Three tight groups; k = 3 should give three distinct clusters.
        static P: [f64; 9] = [0.0, 0.1, 0.2, 50.0, 50.1, 50.2, 100.0, 100.1, 100.2];
        let a = k_medoids(9, 3, line_dist(&P), 20, 5);
        let mut slots: Vec<_> = a.iter().map(|x| x.unwrap()).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 3);
        assert_eq!(a[0], a[2]);
        assert_eq!(a[3], a[5]);
        assert_eq!(a[6], a[8]);
    }
}
