//! Discrete hidden Markov models (the paper's "HMM" baseline).
//!
//! The paper pits CLUSEQ against per-cluster HMMs (30 states on the
//! protein data) and finds comparable accuracy at ~20× the response time
//! (Table 2) — the PST's footnote 3 makes the same point: *"even though
//! the hidden Markov model can be used for this purpose, its computational
//! inefficiency prevents it from being applied to a large dataset."*
//!
//! This is a from-scratch implementation: scaled forward/backward,
//! Baum–Welch re-estimation over multiple sequences, and an EM-style
//! clustering driver (train one HMM per cluster, reassign each sequence to
//! the model with the best per-symbol log-likelihood, repeat).

// Textbook HMM recurrences index the α/β/a/b matrices by time and state;
// the indexed form mirrors the math and reads better than iterator chains.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cluseq_seq::{SequenceDatabase, Symbol};

/// A discrete HMM with dense parameter matrices.
#[derive(Debug, Clone)]
pub struct DiscreteHmm {
    states: usize,
    symbols: usize,
    /// Initial state distribution π.
    pi: Vec<f64>,
    /// Transition matrix `a[i][j] = P(state j | state i)`.
    a: Vec<Vec<f64>>,
    /// Emission matrix `b[i][s] = P(symbol s | state i)`.
    b: Vec<Vec<f64>>,
}

/// Normalizes a slice into a probability distribution (uniform when the
/// total is zero).
fn normalize(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for x in v.iter_mut() {
            *x /= total;
        }
    } else {
        let u = 1.0 / v.len() as f64;
        v.fill(u);
    }
}

impl DiscreteHmm {
    /// A randomly initialized model (rows are random points on the
    /// simplex, bounded away from zero so Baum–Welch cannot start stuck).
    pub fn random(states: usize, symbols: usize, rng: &mut impl Rng) -> Self {
        assert!(states >= 1 && symbols >= 1);
        let row = |len: usize, rng: &mut dyn rand::RngCore| -> Vec<f64> {
            let mut v: Vec<f64> = (0..len).map(|_| 0.1 + rng.gen::<f64>()).collect();
            normalize(&mut v);
            v
        };
        let mut pi = (0..states)
            .map(|_| 0.1 + rng.gen::<f64>())
            .collect::<Vec<_>>();
        normalize(&mut pi);
        Self {
            states,
            symbols,
            pi,
            a: (0..states).map(|_| row(states, rng)).collect(),
            b: (0..states).map(|_| row(symbols, rng)).collect(),
        }
    }

    /// Number of hidden states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// `π(state)` — the initial-state probability.
    pub fn initial(&self, state: usize) -> f64 {
        self.pi[state]
    }

    /// `a[from][to]` — the transition probability.
    pub fn transition(&self, from: usize, to: usize) -> f64 {
        self.a[from][to]
    }

    /// `b[state][symbol]` — the emission probability.
    pub fn emission(&self, state: usize, symbol: Symbol) -> f64 {
        self.b[state][symbol.index()]
    }

    /// Scaled forward pass: returns per-step scale factors and the scaled
    /// α matrix. `log P(seq)` is `Σ ln(scale_t)`.
    fn forward(&self, seq: &[Symbol]) -> (Vec<Vec<f64>>, Vec<f64>) {
        let t_len = seq.len();
        let mut alpha = vec![vec![0.0; self.states]; t_len];
        let mut scales = vec![0.0; t_len];
        for i in 0..self.states {
            alpha[0][i] = self.pi[i] * self.b[i][seq[0].index()];
        }
        scales[0] = alpha[0].iter().sum::<f64>().max(f64::MIN_POSITIVE);
        for x in alpha[0].iter_mut() {
            *x /= scales[0];
        }
        for t in 1..t_len {
            for j in 0..self.states {
                let mut acc = 0.0;
                for i in 0..self.states {
                    acc += alpha[t - 1][i] * self.a[i][j];
                }
                alpha[t][j] = acc * self.b[j][seq[t].index()];
            }
            scales[t] = alpha[t].iter().sum::<f64>().max(f64::MIN_POSITIVE);
            for x in alpha[t].iter_mut() {
                *x /= scales[t];
            }
        }
        (alpha, scales)
    }

    /// Scaled backward pass using the forward scales.
    fn backward(&self, seq: &[Symbol], scales: &[f64]) -> Vec<Vec<f64>> {
        let t_len = seq.len();
        let mut beta = vec![vec![0.0; self.states]; t_len];
        for i in 0..self.states {
            beta[t_len - 1][i] = 1.0 / scales[t_len - 1];
        }
        for t in (0..t_len - 1).rev() {
            for i in 0..self.states {
                let mut acc = 0.0;
                for j in 0..self.states {
                    acc += self.a[i][j] * self.b[j][seq[t + 1].index()] * beta[t + 1][j];
                }
                beta[t][i] = acc / scales[t];
            }
        }
        beta
    }

    /// `ln P(seq | model)`. Empty sequences score 0 (probability 1).
    pub fn log_likelihood(&self, seq: &[Symbol]) -> f64 {
        if seq.is_empty() {
            return 0.0;
        }
        let (_, scales) = self.forward(seq);
        scales.iter().map(|s| s.ln()).sum()
    }

    /// Per-symbol log-likelihood — comparable across sequence lengths.
    pub fn per_symbol_log_likelihood(&self, seq: &[Symbol]) -> f64 {
        if seq.is_empty() {
            return 0.0;
        }
        self.log_likelihood(seq) / seq.len() as f64
    }

    /// One Baum–Welch step over a set of training sequences. Returns the
    /// total log-likelihood *before* the update.
    pub fn baum_welch_step(&mut self, seqs: &[&[Symbol]]) -> f64 {
        let mut total_ll = 0.0;
        let mut pi_acc = vec![0.0; self.states];
        let mut a_num = vec![vec![0.0; self.states]; self.states];
        let mut a_den = vec![0.0; self.states];
        let mut b_num = vec![vec![0.0; self.symbols]; self.states];
        let mut b_den = vec![0.0; self.states];

        for &seq in seqs {
            if seq.is_empty() {
                continue;
            }
            let (alpha, scales) = self.forward(seq);
            let beta = self.backward(seq, &scales);
            total_ll += scales.iter().map(|s| s.ln()).sum::<f64>();
            let t_len = seq.len();

            // γ_t(i) ∝ α_t(i) β_t(i); with this scaling γ needs the
            // per-step scale folded back in.
            for t in 0..t_len {
                let mut gamma: Vec<f64> = (0..self.states)
                    .map(|i| alpha[t][i] * beta[t][i] * scales[t])
                    .collect();
                normalize(&mut gamma);
                for i in 0..self.states {
                    if t == 0 {
                        pi_acc[i] += gamma[i];
                    }
                    b_num[i][seq[t].index()] += gamma[i];
                    b_den[i] += gamma[i];
                    if t + 1 < t_len {
                        a_den[i] += gamma[i];
                    }
                }
            }
            // ξ_t(i, j) ∝ α_t(i) a_ij b_j(o_{t+1}) β_{t+1}(j).
            for t in 0..t_len - 1 {
                let mut xi = vec![vec![0.0; self.states]; self.states];
                let mut total = 0.0;
                for i in 0..self.states {
                    for j in 0..self.states {
                        let v = alpha[t][i]
                            * self.a[i][j]
                            * self.b[j][seq[t + 1].index()]
                            * beta[t + 1][j];
                        xi[i][j] = v;
                        total += v;
                    }
                }
                if total > 0.0 {
                    for i in 0..self.states {
                        for j in 0..self.states {
                            a_num[i][j] += xi[i][j] / total;
                        }
                    }
                }
            }
        }

        // Re-estimate with a small floor to keep everything ergodic.
        const FLOOR: f64 = 1e-6;
        normalize(&mut pi_acc);
        self.pi = pi_acc.iter().map(|&p| p.max(FLOOR)).collect();
        normalize(&mut self.pi);
        for i in 0..self.states {
            for j in 0..self.states {
                self.a[i][j] = if a_den[i] > 0.0 {
                    (a_num[i][j] / a_den[i]).max(FLOOR)
                } else {
                    1.0 / self.states as f64
                };
            }
            normalize(&mut self.a[i]);
            for s in 0..self.symbols {
                self.b[i][s] = if b_den[i] > 0.0 {
                    (b_num[i][s] / b_den[i]).max(FLOOR)
                } else {
                    1.0 / self.symbols as f64
                };
            }
            normalize(&mut self.b[i]);
        }
        total_ll
    }

    /// Trains with Baum–Welch until the likelihood gain falls under
    /// `tolerance` or `max_iters` steps.
    pub fn train(&mut self, seqs: &[&[Symbol]], max_iters: usize, tolerance: f64) -> f64 {
        let mut prev = f64::NEG_INFINITY;
        for _ in 0..max_iters {
            let ll = self.baum_welch_step(seqs);
            if ll - prev < tolerance && prev.is_finite() {
                return ll;
            }
            prev = ll;
        }
        prev
    }
}

/// EM-style clustering with one HMM per cluster.
#[derive(Debug, Clone, Copy)]
pub struct HmmClustering {
    /// Hidden states per model (paper: 30 on the protein data).
    pub states: usize,
    /// Outer EM rounds (assign ↔ retrain).
    pub em_rounds: usize,
    /// Baum–Welch iterations per retraining.
    pub bw_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HmmClustering {
    fn default() -> Self {
        Self {
            states: 10,
            em_rounds: 5,
            bw_iters: 8,
            seed: 0,
        }
    }
}

impl HmmClustering {
    /// Clusters the database into `k` groups; returns a hard assignment.
    pub fn cluster(&self, db: &SequenceDatabase, k: usize) -> Vec<Option<usize>> {
        let n = db.len();
        if n == 0 {
            return Vec::new();
        }
        let k = k.max(1).min(n);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let symbols = db.alphabet().len().max(1);

        // Farthest-first seeding on symbol compositions: a random partition
        // makes every initial model learn the same blend and EM collapses
        // into one cluster on small data.
        let compositions: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut c = vec![0.0; symbols];
                for s in db.sequence(i).iter() {
                    c[s.index()] += 1.0;
                }
                let total: f64 = c.iter().sum::<f64>().max(1.0);
                c.iter().map(|x| x / total).collect()
            })
            .collect();
        let l1 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        let mut seeds = vec![rng.gen_range(0..n)];
        let mut nearest = vec![f64::INFINITY; n];
        while seeds.len() < k {
            let newest = *seeds.last().expect("non-empty");
            for i in 0..n {
                nearest[i] = nearest[i].min(l1(&compositions[i], &compositions[newest]));
            }
            let far = (0..n)
                .filter(|i| !seeds.contains(i))
                .max_by(|&a, &b| nearest[a].total_cmp(&nearest[b]));
            match far {
                Some(f) => seeds.push(f),
                None => break,
            }
        }

        let mut models: Vec<DiscreteHmm> = (0..k)
            .map(|_| DiscreteHmm::random(self.states, symbols, &mut rng))
            .collect();
        // Prime each model on its seed sequence.
        for (model, &seed) in models.iter_mut().zip(&seeds) {
            model.train(&[db.sequence(seed).symbols()], self.bw_iters, 1e-3);
        }
        let mut assignment: Vec<usize> = (0..n)
            .map(|i| {
                let seq = db.sequence(i).symbols();
                (0..k)
                    .max_by(|&a, &b| {
                        models[a]
                            .per_symbol_log_likelihood(seq)
                            .total_cmp(&models[b].per_symbol_log_likelihood(seq))
                    })
                    .expect("k >= 1")
            })
            .collect();

        for _round in 0..self.em_rounds {
            // M-step: retrain each model on its members.
            for (slot, model) in models.iter_mut().enumerate() {
                let members: Vec<&[Symbol]> = (0..n)
                    .filter(|&i| assignment[i] == slot)
                    .map(|i| db.sequence(i).symbols())
                    .collect();
                if !members.is_empty() {
                    model.train(&members, self.bw_iters, 1e-3);
                }
            }
            // E-step: reassign to the best per-symbol likelihood.
            let mut changed = false;
            for i in 0..n {
                let seq = db.sequence(i).symbols();
                let best = (0..k)
                    .max_by(|&a, &b| {
                        models[a]
                            .per_symbol_log_likelihood(seq)
                            .total_cmp(&models[b].per_symbol_log_likelihood(seq))
                    })
                    .expect("k >= 1");
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        assignment.into_iter().map(Some).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_seq::{Alphabet, Sequence};

    fn syms(text: &str) -> Vec<Symbol> {
        let alphabet = Alphabet::from_chars('a'..='d');
        Sequence::parse_str(&alphabet, text)
            .unwrap()
            .iter()
            .collect()
    }

    #[test]
    fn rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(1);
        let hmm = DiscreteHmm::random(4, 3, &mut rng);
        let check = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&p| p > 0.0));
        };
        check(&hmm.pi);
        hmm.a.iter().for_each(|r| check(r));
        hmm.b.iter().for_each(|r| check(r));
    }

    #[test]
    fn likelihood_is_a_log_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hmm = DiscreteHmm::random(3, 4, &mut rng);
        let ll = hmm.log_likelihood(&syms("abcd"));
        assert!(ll < 0.0, "probabilities are < 1");
        assert!(ll.is_finite());
        assert_eq!(hmm.log_likelihood(&[]), 0.0);
    }

    #[test]
    fn single_state_hmm_is_a_unigram_model() {
        // With one state, P(seq) = Π b[0][s]; verify against the closed
        // form.
        let mut rng = StdRng::seed_from_u64(3);
        let hmm = DiscreteHmm::random(1, 2, &mut rng);
        let seq = syms("abba");
        let expected: f64 = seq.iter().map(|s| hmm.b[0][s.index()].ln()).sum();
        assert!((hmm.log_likelihood(&seq) - expected).abs() < 1e-9);
    }

    #[test]
    fn baum_welch_increases_likelihood() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut hmm = DiscreteHmm::random(3, 2, &mut rng);
        let data = syms("abababababababababab");
        let seqs: Vec<&[Symbol]> = vec![&data];
        let mut lls = Vec::new();
        for _ in 0..10 {
            lls.push(hmm.baum_welch_step(&seqs));
        }
        // Monotone non-decreasing (up to the parameter flooring).
        for w in lls.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6,
                "likelihood decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(lls.last().unwrap() > lls.first().unwrap());
    }

    #[test]
    fn trained_model_prefers_its_training_distribution() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut hmm = DiscreteHmm::random(2, 4, &mut rng);
        let train_data = syms("abababababababababababab");
        hmm.train(&[&train_data], 20, 1e-4);
        let like = hmm.per_symbol_log_likelihood(&syms("abababab"));
        let unlike = hmm.per_symbol_log_likelihood(&syms("cdcdcdcd"));
        assert!(
            like > unlike + 0.5,
            "trained: ab {like} should beat cd {unlike}"
        );
    }

    #[test]
    fn clustering_separates_two_behaviours() {
        let texts = [
            "abababababababab",
            "abababababababab",
            "babababababababa",
            "cdcdcdcdcdcdcdcd",
            "cdcdcdcdcdcdcdcd",
            "dcdcdcdcdcdcdcdc",
        ];
        let db = SequenceDatabase::from_strs(texts);
        let a = HmmClustering {
            states: 3,
            em_rounds: 6,
            bw_iters: 10,
            seed: 11,
        }
        .cluster(&db, 2);
        assert_eq!(a[0], a[1]);
        assert_eq!(a[1], a[2]);
        assert_eq!(a[3], a[4]);
        assert_eq!(a[4], a[5]);
        assert_ne!(a[0], a[3]);
    }

    #[test]
    fn clustering_is_deterministic() {
        let db = SequenceDatabase::from_strs(["abab", "cdcd", "abab", "cdcd"]);
        let cfg = HmmClustering {
            states: 2,
            em_rounds: 3,
            bw_iters: 3,
            seed: 7,
        };
        assert_eq!(cfg.cluster(&db, 2), cfg.cluster(&db, 2));
    }
}
