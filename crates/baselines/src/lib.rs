//! The comparison models of the CLUSEQ paper's Table 2, implemented from
//! scratch.
//!
//! The paper compares CLUSEQ against four alternatives on the protein
//! database:
//!
//! | Model | Module | Notes |
//! |---|---|---|
//! | Edit distance (ED) | [`edit`] | full DP and banded variants, k-medoids clustering |
//! | Edit distance with block operations (EDBO) | [`block_edit`] | exact computation is NP-hard; a greedy block-cover heuristic (the paper used an unspecified heuristic too) |
//! | Hidden Markov model (HMM) | [`hmm`] | discrete HMMs, scaled forward/backward, Baum–Welch, EM clustering |
//! | q-gram | [`qgram`] | sparse q-gram profiles, cosine similarity, spherical k-means |
//!
//! All four expose the same driver shape — `cluster(db, k, seed) ->
//! Vec<Option<usize>>` (a hard assignment per sequence) — so the Table 2
//! harness can time and score them uniformly.

pub mod block_edit;
pub mod edit;
pub mod hmm;
pub mod kmedoids;
pub mod qgram;
pub mod suffix_automaton;

pub use block_edit::block_edit_distance;
pub use edit::{banded_edit_distance, edit_distance};
pub use hmm::{DiscreteHmm, HmmClustering};
pub use kmedoids::k_medoids;
pub use qgram::{cosine_similarity, QgramProfile};
pub use suffix_automaton::SuffixAutomaton;
