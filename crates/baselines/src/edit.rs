//! Levenshtein edit distance (the paper's "ED" baseline).
//!
//! The paper's critique (§1): edit distance captures only the optimal
//! *global* alignment and misses local features — `aaaabbb` vs `bbbaaaa`
//! and `aaaabbb` vs `abcdefg` both score 6 — which is why it clusters
//! poorly (23% accuracy in Table 2). We implement it faithfully anyway:
//! the whole point of the baseline is to reproduce that failure mode.

use cluseq_seq::Symbol;

/// Unit-cost Levenshtein distance (insert/delete/substitute), computed
/// with the classic two-row DP in O(|a|·|b|) time and O(min) space.
pub fn edit_distance(a: &[Symbol], b: &[Symbol]) -> usize {
    // Keep the shorter sequence as the row for O(min(|a|, |b|)) space.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, &ls) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &ss) in short.iter().enumerate() {
            let sub = prev_diag + usize::from(ls != ss);
            prev_diag = row[j + 1];
            row[j + 1] = sub.min(row[j] + 1).min(prev_diag + 1);
        }
    }
    row[short.len()]
}

/// Banded edit distance: exact when the true distance is ≤ `band`,
/// otherwise returns a lower-bound-saturating `band + 1`. Used where the
/// full DP is too slow and only near matches matter.
pub fn banded_edit_distance(a: &[Symbol], b: &[Symbol], band: usize) -> usize {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > band {
        return band + 1;
    }
    if n == 0 || m == 0 {
        return n.max(m);
    }
    const INF: usize = usize::MAX / 2;
    let mut prev = vec![INF; m + 1];
    let mut cur = vec![INF; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(band.min(m) + 1) {
        *p = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(m);
        // Fill one cell either side of the band too: this row reads
        // cur[lo - 1] (left neighbour of the first live cell) and the next
        // row reads prev[hi + 1]; both would otherwise be stale values
        // from two rows ago and could *under*-estimate the distance.
        cur[lo.saturating_sub(1)..=(hi + 1).min(m)].fill(INF);
        if lo == 0 {
            cur[0] = i;
        }
        for j in lo.max(1)..=hi {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            let del = prev[j] + 1;
            let ins = cur[j - 1] + 1;
            cur[j] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    if prev[m] > band {
        band + 1
    } else {
        prev[m]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_seq::{Alphabet, Sequence};

    fn syms(text: &str) -> Vec<Symbol> {
        let alphabet = Alphabet::from_chars('a'..='h');
        Sequence::parse_str(&alphabet, text)
            .unwrap()
            .iter()
            .collect()
    }

    #[test]
    fn identical_sequences_have_distance_zero() {
        assert_eq!(edit_distance(&syms("abcabc"), &syms("abcabc")), 0);
        assert_eq!(edit_distance(&[], &[]), 0);
    }

    #[test]
    fn known_distances() {
        assert_eq!(edit_distance(&syms("abc"), &syms("abd")), 1); // substitute
        assert_eq!(edit_distance(&syms("abc"), &syms("ab")), 1); // delete
        assert_eq!(edit_distance(&syms("abc"), &syms("abcd")), 1); // insert
        assert_eq!(edit_distance(&syms("gabba"), &syms("gbba")), 1);
        assert_eq!(edit_distance(&syms("abcde"), &syms("edcba")), 4);
    }

    #[test]
    fn empty_vs_nonempty_is_length() {
        assert_eq!(edit_distance(&[], &syms("abcd")), 4);
        assert_eq!(edit_distance(&syms("ab"), &[]), 2);
    }

    #[test]
    fn the_papers_motivating_example() {
        // The paper's footnote: d(aaaabbb, bbbaaaa) = 6 = d(aaaabbb,
        // abcdefg) although the first pair is intuitively more similar.
        let x = syms("aaaabbb");
        let y = syms("bbbaaaa");
        let z = syms("abcdefg");
        assert_eq!(edit_distance(&x, &y), 6);
        assert_eq!(edit_distance(&x, &z), 6);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = syms("abacadaba");
        let b = syms("bacadab");
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
    }

    #[test]
    fn triangle_inequality_holds_on_samples() {
        let cases = ["abc", "abd", "bcd", "aaaa", "dcba", ""];
        for x in cases {
            for y in cases {
                for z in cases {
                    let (sx, sy, sz) = (syms(x), syms(y), syms(z));
                    assert!(
                        edit_distance(&sx, &sz)
                            <= edit_distance(&sx, &sy) + edit_distance(&sy, &sz),
                        "triangle violated on ({x}, {y}, {z})"
                    );
                }
            }
        }
    }

    #[test]
    fn banded_matches_full_when_within_band() {
        let pairs = [("abcdef", "abdcef"), ("aaaa", "aaa"), ("abc", "abc")];
        for (x, y) in pairs {
            let (sx, sy) = (syms(x), syms(y));
            let full = edit_distance(&sx, &sy);
            assert_eq!(banded_edit_distance(&sx, &sy, 3), full, "({x}, {y})");
        }
    }

    #[test]
    fn banded_saturates_beyond_band() {
        let x = syms("aaaaaaaa");
        let y = syms("bbbbbbbb");
        assert_eq!(banded_edit_distance(&x, &y, 3), 4);
    }

    #[test]
    fn banded_rejects_on_length_difference() {
        let x = syms("aaaaaaaaaa");
        let y = syms("aa");
        assert_eq!(banded_edit_distance(&x, &y, 3), 4);
    }
}
