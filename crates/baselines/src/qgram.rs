//! The q-gram baseline: bag-of-segments profiles with cosine similarity.
//!
//! Each sequence is viewed as the multiset of its length-`q` windows; the
//! similarity between two sequences (or a sequence and a centroid) is the
//! cosine of their count vectors — the "normalized dot-product" form the
//! paper attributes to keyword-based document clustering. Clustering is
//! spherical k-means over the profiles.
//!
//! The paper's critique (§1) is that the *correlations among the q-grams
//! are lost*: the method is fast (Table 2: 132 s, the fastest) but less
//! accurate (75%) than CLUSEQ. The implementation keeps that profile:
//! profile extraction is linear, similarity is sparse-dot-product cheap.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cluseq_seq::{SequenceDatabase, Symbol};

/// A sparse q-gram count profile, pre-normalized to unit length.
#[derive(Debug, Clone)]
pub struct QgramProfile {
    q: usize,
    /// q-gram key → weight. Keys are FNV-style hashes of the window (the
    /// astronomically rare collision merges two counts and is harmless for
    /// clustering).
    weights: HashMap<u64, f64>,
}

fn gram_key(window: &[Symbol]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &s in window {
        h ^= s.0 as u64 + 1;
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

impl QgramProfile {
    /// Builds the profile of `seq` with window length `q`. Sequences
    /// shorter than `q` yield an empty profile.
    pub fn from_sequence(seq: &[Symbol], q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        let mut weights: HashMap<u64, f64> = HashMap::new();
        if seq.len() >= q {
            for w in seq.windows(q) {
                *weights.entry(gram_key(w)).or_insert(0.0) += 1.0;
            }
        }
        let mut profile = Self { q, weights };
        profile.normalize();
        profile
    }

    /// The window length.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of distinct q-grams in the profile.
    pub fn distinct_grams(&self) -> usize {
        self.weights.len()
    }

    fn norm(&self) -> f64 {
        self.weights.values().map(|w| w * w).sum::<f64>().sqrt()
    }

    fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for w in self.weights.values_mut() {
                *w /= n;
            }
        }
    }

    /// Accumulates another profile into this one (for centroids).
    fn add(&mut self, other: &QgramProfile) {
        for (&k, &w) in &other.weights {
            *self.weights.entry(k).or_insert(0.0) += w;
        }
    }

    fn empty(q: usize) -> Self {
        Self {
            q,
            weights: HashMap::new(),
        }
    }
}

/// Cosine similarity of two unit-normalized profiles, in `[0, 1]`.
pub fn cosine_similarity(a: &QgramProfile, b: &QgramProfile) -> f64 {
    // Iterate the smaller map.
    let (small, large) = if a.weights.len() <= b.weights.len() {
        (a, b)
    } else {
        (b, a)
    };
    small
        .weights
        .iter()
        .filter_map(|(k, &wa)| large.weights.get(k).map(|&wb| wa * wb))
        .sum()
}

/// Spherical k-means over q-gram profiles. Returns a hard assignment per
/// sequence (all assigned).
pub fn qgram_cluster(
    db: &SequenceDatabase,
    q: usize,
    k: usize,
    max_iter: usize,
    seed: u64,
) -> Vec<Option<usize>> {
    let n = db.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.max(1).min(n);
    let profiles: Vec<QgramProfile> = db
        .sequences()
        .map(|s| QgramProfile::from_sequence(s.symbols(), q))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    // Seeding: farthest-first on cosine (lowest max-similarity next).
    let mut centroids: Vec<QgramProfile> = vec![profiles[rng.gen_range(0..n)].clone()];
    let mut best_sim = vec![f64::NEG_INFINITY; n];
    while centroids.len() < k {
        let newest = centroids.last().expect("non-empty");
        for (i, b) in best_sim.iter_mut().enumerate() {
            *b = b.max(cosine_similarity(&profiles[i], newest));
        }
        let far = (0..n)
            .min_by(|&a, &b| best_sim[a].total_cmp(&best_sim[b]))
            .expect("n >= 1");
        centroids.push(profiles[far].clone());
    }

    let mut assignment = vec![0usize; n];
    for _ in 0..max_iter {
        let mut changed = false;
        for i in 0..n {
            let best = (0..centroids.len())
                .max_by(|&a, &b| {
                    cosine_similarity(&profiles[i], &centroids[a])
                        .total_cmp(&cosine_similarity(&profiles[i], &centroids[b]))
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        for (slot, centroid) in centroids.iter_mut().enumerate() {
            let mut fresh = QgramProfile::empty(q);
            for i in 0..n {
                if assignment[i] == slot {
                    fresh.add(&profiles[i]);
                }
            }
            if !fresh.weights.is_empty() {
                fresh.normalize();
                *centroid = fresh;
            }
        }
    }
    assignment.into_iter().map(Some).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_seq::{Alphabet, Sequence};

    fn syms(text: &str) -> Vec<Symbol> {
        let alphabet = Alphabet::from_chars('a'..='h');
        Sequence::parse_str(&alphabet, text)
            .unwrap()
            .iter()
            .collect()
    }

    #[test]
    fn profile_counts_windows() {
        let p = QgramProfile::from_sequence(&syms("ababa"), 2);
        // Windows: ab, ba, ab, ba → 2 distinct grams.
        assert_eq!(p.distinct_grams(), 2);
        assert!((p.norm() - 1.0).abs() < 1e-9, "profiles are unit length");
    }

    #[test]
    fn short_sequences_have_empty_profiles() {
        let p = QgramProfile::from_sequence(&syms("a"), 3);
        assert_eq!(p.distinct_grams(), 0);
    }

    #[test]
    fn cosine_of_identical_profiles_is_one() {
        let p = QgramProfile::from_sequence(&syms("abcabc"), 3);
        assert!((cosine_similarity(&p, &p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_of_disjoint_profiles_is_zero() {
        let a = QgramProfile::from_sequence(&syms("aaaa"), 2);
        let b = QgramProfile::from_sequence(&syms("bbbb"), 2);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
    }

    #[test]
    fn cosine_is_symmetric_and_bounded() {
        let a = QgramProfile::from_sequence(&syms("abcdabcd"), 2);
        let b = QgramProfile::from_sequence(&syms("abccba"), 2);
        let ab = cosine_similarity(&a, &b);
        let ba = cosine_similarity(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0 + 1e-9).contains(&ab));
    }

    #[test]
    fn qgrams_ignore_order_beyond_q() {
        // The paper's point: block-swapped sequences look nearly identical
        // to a q-gram model.
        let a = QgramProfile::from_sequence(&syms("aaaabbb"), 2);
        let b = QgramProfile::from_sequence(&syms("bbbaaaa"), 2);
        let sim = cosine_similarity(&a, &b);
        assert!(sim > 0.9, "block swap is invisible to q-grams: {sim}");
    }

    #[test]
    fn clustering_separates_distinct_compositions() {
        let texts = [
            "abababababab",
            "babababababa",
            "abababababab",
            "cdcdcdcdcdcd",
            "dcdcdcdcdcdc",
            "cdcdcdcdcdcd",
        ];
        let db = SequenceDatabase::from_strs(texts);
        let a = qgram_cluster(&db, 2, 2, 20, 3);
        assert_eq!(a[0], a[1]);
        assert_eq!(a[1], a[2]);
        assert_eq!(a[3], a[4]);
        assert_eq!(a[4], a[5]);
        assert_ne!(a[0], a[3]);
    }

    #[test]
    fn clustering_is_deterministic() {
        let db = SequenceDatabase::from_strs(["abab", "cdcd", "abab", "cdcd"]);
        let a = qgram_cluster(&db, 2, 2, 10, 9);
        let b = qgram_cluster(&db, 2, 2, 10, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_database_clusters_to_nothing() {
        let db = SequenceDatabase::from_strs(std::iter::empty::<&str>());
        assert!(qgram_cluster(&db, 3, 2, 10, 1).is_empty());
    }
}
