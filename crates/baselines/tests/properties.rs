//! Property-based tests for the baseline models, each checked against an
//! independent reference computation.

use proptest::prelude::*;

use cluseq_baselines::qgram::{cosine_similarity, QgramProfile};
use cluseq_baselines::{banded_edit_distance, block_edit_distance, edit_distance, DiscreteHmm};
use cluseq_seq::Symbol;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn seq_strategy(n: u16, max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec((0..n).prop_map(Symbol), 0..max_len)
}

/// Naive exponential-memoed reference for Levenshtein.
fn reference_edit(a: &[Symbol], b: &[Symbol]) -> usize {
    let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let sub = dp[i - 1][j - 1] + usize::from(a[i - 1] != b[j - 1]);
            dp[i][j] = sub.min(dp[i - 1][j] + 1).min(dp[i][j - 1] + 1);
        }
    }
    dp[a.len()][b.len()]
}

proptest! {
    /// The two-row implementation equals the full-matrix reference.
    #[test]
    fn edit_distance_matches_reference(a in seq_strategy(4, 30), b in seq_strategy(4, 30)) {
        prop_assert_eq!(edit_distance(&a, &b), reference_edit(&a, &b));
    }

    /// Metric axioms: identity, symmetry, triangle inequality.
    #[test]
    fn edit_distance_is_a_metric(
        a in seq_strategy(3, 20),
        b in seq_strategy(3, 20),
        c in seq_strategy(3, 20),
    ) {
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert!(
            edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c)
        );
        // Length difference is a lower bound; max length an upper bound.
        prop_assert!(edit_distance(&a, &b) >= a.len().abs_diff(b.len()));
        prop_assert!(edit_distance(&a, &b) <= a.len().max(b.len()));
    }

    /// The banded variant is exact whenever the true distance fits the
    /// band, and saturates at band+1 otherwise.
    #[test]
    fn banded_edit_distance_is_exact_within_band(
        a in seq_strategy(3, 25),
        b in seq_strategy(3, 25),
        band in 0usize..12,
    ) {
        let full = edit_distance(&a, &b);
        let banded = banded_edit_distance(&a, &b, band);
        if full <= band {
            prop_assert_eq!(banded, full);
        } else {
            prop_assert_eq!(banded, band + 1);
        }
    }

    /// Block edit distance: zero iff equal (min_block permitting), and
    /// never larger than deleting and re-inserting everything.
    #[test]
    fn block_edit_distance_bounds(a in seq_strategy(3, 20), b in seq_strategy(3, 20)) {
        let d = block_edit_distance(&a, &b, 2);
        prop_assert!(d <= a.len() + b.len());
        prop_assert_eq!(block_edit_distance(&a, &a, 2), 0);
        // Greedy tie-breaking makes the two directions differ, but both
        // are valid covers of the same pair: both respect the same bounds.
        let rev = block_edit_distance(&b, &a, 2);
        prop_assert!(rev <= a.len() + b.len());
        prop_assert_eq!(d == 0, rev == 0, "zero iff equal, both directions");
    }

    /// A block rotation costs at most a couple of block moves — far less
    /// than the symbols it displaces (when the halves are long enough to
    /// be matched as blocks).
    #[test]
    fn block_rotation_is_cheap(a in seq_strategy(3, 40), cut_frac in 0.2f64..0.8) {
        prop_assume!(a.len() >= 10);
        let cut = ((a.len() as f64 * cut_frac) as usize).clamp(3, a.len() - 3);
        let rotated: Vec<Symbol> = a[cut..].iter().chain(&a[..cut]).copied().collect();
        let d = block_edit_distance(&a, &rotated, 3);
        prop_assert!(
            d <= a.len() / 2,
            "rotation at {cut} cost {d} on length {}",
            a.len()
        );
    }

    /// Cosine similarity is bounded, symmetric, and 1 on self (when the
    /// profile is non-empty).
    #[test]
    fn qgram_cosine_properties(a in seq_strategy(4, 40), b in seq_strategy(4, 40), q in 1usize..4) {
        let pa = QgramProfile::from_sequence(&a, q);
        let pb = QgramProfile::from_sequence(&b, q);
        let ab = cosine_similarity(&pa, &pb);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ab));
        prop_assert!((ab - cosine_similarity(&pb, &pa)).abs() < 1e-12);
        if a.len() >= q {
            prop_assert!((cosine_similarity(&pa, &pa) - 1.0).abs() < 1e-9);
        }
    }

    /// The suffix automaton's LCS length equals the DP reference, and the
    /// reported positions are genuine occurrences, on arbitrary inputs.
    #[test]
    fn suffix_automaton_lcs_matches_dp(a in seq_strategy(4, 60), b in seq_strategy(4, 60)) {
        use cluseq_baselines::SuffixAutomaton;
        fn dp_lcs_len(a: &[Symbol], b: &[Symbol]) -> usize {
            let mut best = 0;
            let mut prev = vec![0usize; b.len() + 1];
            let mut cur = vec![0usize; b.len() + 1];
            for &sa in a {
                for (j, &sb) in b.iter().enumerate() {
                    cur[j + 1] = if sa == sb { prev[j] + 1 } else { 0 };
                    best = best.max(cur[j + 1]);
                }
                std::mem::swap(&mut prev, &mut cur);
            }
            best
        }
        let sam = SuffixAutomaton::from_sequence(&a);
        let expected = dp_lcs_len(&a, &b);
        match sam.lcs(&b) {
            Some((len, pa, pb)) => {
                prop_assert_eq!(len, expected);
                prop_assert_eq!(&a[pa..pa + len], &b[pb..pb + len]);
            }
            None => prop_assert_eq!(expected, 0),
        }
    }

    /// Every substring of the indexed text is recognized; random probes
    /// are recognized iff they occur.
    #[test]
    fn suffix_automaton_contains_is_exact(
        text in seq_strategy(3, 50),
        probe in seq_strategy(3, 6),
    ) {
        use cluseq_baselines::SuffixAutomaton;
        let sam = SuffixAutomaton::from_sequence(&text);
        let occurs = !probe.is_empty()
            && text.windows(probe.len().max(1)).any(|w| w == &probe[..]);
        if probe.is_empty() {
            prop_assert!(sam.contains(&probe));
        } else {
            prop_assert_eq!(sam.contains(&probe), occurs);
        }
        // All actual substrings are found.
        if text.len() >= 3 {
            prop_assert!(sam.contains(&text[text.len() / 3..text.len() * 2 / 3]));
        }
        prop_assert!(sam.state_count() <= 2 * text.len().max(1));
    }

    /// The scaled forward algorithm equals brute-force enumeration of all
    /// hidden state paths on tiny models.
    #[test]
    fn hmm_forward_matches_path_enumeration(
        seq in seq_strategy(3, 6),
        states in 1usize..4,
        model_seed in 0u64..50,
    ) {
        prop_assume!(!seq.is_empty());
        let mut rng = StdRng::seed_from_u64(model_seed);
        let hmm = DiscreteHmm::random(states, 3, &mut rng);

        // Brute force: sum over all state paths.
        fn enumerate(hmm: &DiscreteHmm, seq: &[Symbol], t: usize, state: usize, p: f64) -> f64 {
            let p = p * hmm.emission(state, seq[t]);
            if t + 1 == seq.len() {
                return p;
            }
            (0..hmm.states())
                .map(|next| enumerate(hmm, seq, t + 1, next, p * hmm.transition(state, next)))
                .sum()
        }
        let brute: f64 = (0..states)
            .map(|s0| enumerate(&hmm, &seq, 0, s0, hmm.initial(s0)))
            .sum();
        let fast = hmm.log_likelihood(&seq);
        prop_assert!(
            (fast - brute.ln()).abs() < 1e-9,
            "forward {fast} vs enumeration {}",
            brute.ln()
        );
    }
}
