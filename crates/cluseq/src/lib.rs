//! # CLUSEQ — efficient and effective sequence clustering
//!
//! A complete Rust implementation of *CLUSEQ: Efficient and Effective
//! Sequence Clustering* (Jiong Yang & Wei Wang, ICDE 2003), together with
//! every substrate the paper's evaluation depends on: the probabilistic
//! suffix tree, the comparison baselines (edit distance, block-edit
//! distance, hidden Markov models, q-grams), synthetic workload
//! generators, and evaluation machinery.
//!
//! This facade crate re-exports the public API of the whole workspace;
//! depend on it and `use cluseq::prelude::*` to get started:
//!
//! ```
//! use cluseq::prelude::*;
//!
//! // Generate a synthetic database with 3 planted clusters…
//! let db = SyntheticSpec {
//!     sequences: 90,
//!     clusters: 3,
//!     avg_len: 120,
//!     alphabet: 12,
//!     outlier_fraction: 0.0,
//!     seed: 1,
//! }
//! .generate();
//!
//! // …cluster it…
//! let outcome = Cluseq::new(
//!     CluseqParams::default()
//!         .with_initial_clusters(3)
//!         .with_significance(5),
//! )
//! .run(&db);
//!
//! // …and evaluate against the planted labels.
//! let confusion = Confusion::new(
//!     &db.labels(),
//!     &outcome.membership_lists(),
//!     MatchStrategy::Hungarian,
//! );
//! assert!(confusion.accuracy() > 0.5);
//! ```
//!
//! ## Crate map
//!
//! | Module | Source crate | Contents |
//! |---|---|---|
//! | [`seq`] | `cluseq-seq` | alphabets, sequences, databases, codecs |
//! | [`pst`] | `cluseq-pst` | the probabilistic suffix tree |
//! | [`core`] | `cluseq-core` | the CLUSEQ algorithm |
//! | [`datagen`] | `cluseq-datagen` | synthetic workload generators |
//! | [`eval`] | `cluseq-eval` | matching, precision/recall, histograms |
//! | [`baselines`] | `cluseq-baselines` | ED, block-ED, HMM, q-gram |

pub use cluseq_baselines as baselines;
pub use cluseq_core as core;
pub use cluseq_datagen as datagen;
pub use cluseq_eval as eval;
pub use cluseq_pst as pst;
pub use cluseq_seq as seq;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use cluseq_core::online::OnlineCluseq;
    pub use cluseq_core::persist::SavedModel;
    pub use cluseq_core::serve::client::ServeClient;
    pub use cluseq_core::serve::model::ServeModel;
    pub use cluseq_core::serve::{ServeConfig, Server, ServerHandle};
    pub use cluseq_core::telemetry::{
        CheckpointEvent, IterationRecord, NoopObserver, ResumeInfo, RunObserver, RunReport,
    };
    pub use cluseq_core::{
        BoundedSimilarity, Checkpoint, CheckpointPolicy, Cluseq, CluseqOutcome, CluseqParams,
        ConsolidationMode, ExaminationOrder, FailPlan, FailingReader, FailingWriter,
        IterationStats, LogSim, ScanKernel, ScanMode, ScoreEngine, SegmentSimilarity, TraceConfig,
        TraceSession,
    };
    pub use cluseq_datagen::{
        inject_outliers, ClusterModel, Language, LanguageSpec, Profile, ProteinFamilySpec,
        SyntheticSpec, WeblogSpec,
    };
    pub use cluseq_eval::{Confusion, MatchStrategy, Stopwatch};
    pub use cluseq_pst::{
        CompiledPst, ConditionalModel, ContextScanner, PruneStrategy, Pst, PstParams,
    };
    pub use cluseq_seq::{Alphabet, BackgroundModel, Sequence, SequenceDatabase, Symbol};
}
