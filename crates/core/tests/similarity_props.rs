//! Property tests for the X/Y/Z similarity dynamic program (§2, §4.3).
//!
//! The single-scan recurrence claims to equal the maximum, over all O(l²)
//! contiguous segments of the probe, of the segment's log probability
//! ratio with full-prefix conditioning. These tests pit
//! [`max_similarity_pst`] against a literal enumeration of every segment
//! on randomly trained PSTs and random probes — including the empty probe
//! and probes that the background explains better than any model (every
//! per-position ratio below 1).
//!
//! Both sides accumulate the per-position log ratios left-to-right, so the
//! comparison is exact (`to_bits`), not approximate: this is the same
//! bit-reproducibility contract the parallel scoring engine relies on.

use cluseq_core::{max_similarity_pst, SegmentSimilarity};
use cluseq_pst::{ConditionalModel, Pst, PstParams};
use cluseq_seq::{BackgroundModel, Symbol};
use proptest::prelude::*;

fn syms(raw: &[u16]) -> Vec<Symbol> {
    raw.iter().copied().map(Symbol).collect()
}

/// ln X_i for position `i` of `seq`, with the full prefix as context —
/// the exact quantity the DP folds over.
fn log_ratio(pst: &Pst, bg: &BackgroundModel, seq: &[Symbol], i: usize) -> f64 {
    pst.predict(&seq[..i], seq[i]).ln() - bg.prob(seq[i]).ln()
}

/// Brute force: walk every contiguous segment `[start, end)` and fold its
/// log ratios in the same left-to-right order the DP uses, keeping the
/// best (score, start, end). An empty probe yields `(-∞, 0, 0)`, matching
/// the DP's empty-segment convention.
fn brute_force(pst: &Pst, bg: &BackgroundModel, seq: &[Symbol]) -> SegmentSimilarity {
    let mut best = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    for start in 0..seq.len() {
        let mut acc = 0.0;
        for i in start..seq.len() {
            acc += log_ratio(pst, bg, seq, i);
            if acc > best.log_sim {
                best = SegmentSimilarity {
                    log_sim: acc,
                    start,
                    end: i + 1,
                };
            }
        }
    }
    best
}

/// Normalizes raw positive weights into a background distribution.
fn background_from_weights(weights: &[f64]) -> BackgroundModel {
    let total: f64 = weights.iter().sum();
    BackgroundModel::from_probs(weights.iter().map(|w| w / total).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The DP's score is bit-identical to the brute-force maximum over all
    /// contiguous segments, for arbitrary training data, probes (length 0
    /// included), backgrounds, and PST shapes.
    #[test]
    fn dp_equals_segment_enumeration(
        train in prop::collection::vec(0u16..4, 1..60),
        probe in prop::collection::vec(0u16..4, 0..40),
        weights in prop::collection::vec(0.05f64..1.0, 4usize),
        significance in 1u64..6,
        max_depth in 1usize..6,
    ) {
        let mut pst = Pst::new(
            4,
            PstParams::default()
                .with_significance(significance)
                .with_max_depth(max_depth),
        );
        pst.add_segment(&syms(&train));
        let bg = background_from_weights(&weights);
        let probe = syms(&probe);

        let dp = max_similarity_pst(&pst, &bg, &probe);
        let bf = brute_force(&pst, &bg, &probe);
        prop_assert_eq!(
            dp.log_sim.to_bits(),
            bf.log_sim.to_bits(),
            "dp {} vs brute force {}",
            dp.log_sim,
            bf.log_sim
        );

        // The segment the DP reports really achieves the reported score
        // (recomputed independently with the generic full-prefix model).
        if !probe.is_empty() {
            let mut acc = 0.0;
            for i in dp.start..dp.end {
                acc += log_ratio(&pst, &bg, &probe, i);
            }
            prop_assert_eq!(acc.to_bits(), dp.log_sim.to_bits());
            prop_assert!(dp.start < dp.end && dp.end <= probe.len());
        } else {
            prop_assert_eq!(dp.log_sim, f64::NEG_INFINITY);
            prop_assert_eq!((dp.start, dp.end), (0, 0));
        }
    }

    /// All-background edge: when the background explains every position
    /// better than the model (every ln X_i < 0), the optimum is a single
    /// position — a sum of negatives never beats its largest term — and
    /// the DP must still agree with the enumeration instead of clamping
    /// to the empty segment.
    #[test]
    fn all_background_probe_yields_single_position_optimum(
        probe in prop::collection::vec(1u16..3, 1..30),
        bias in 2.0f64..20.0,
    ) {
        // Train only symbol 0; probe draws from {1, 2}, which the model
        // has never seen, while the background favours them by `bias`.
        let mut pst = Pst::new(
            3,
            PstParams::default().with_significance(1).with_max_depth(3),
        );
        pst.add_segment(&syms(&[0, 0, 0, 0, 0, 0, 0, 0]));
        let bg = background_from_weights(&[1.0, bias, bias]);
        let probe = syms(&probe);

        // Confirm the premise: every per-position ratio is below 1.
        for i in 0..probe.len() {
            prop_assert!(log_ratio(&pst, &bg, &probe, i) < 0.0);
        }

        let dp = max_similarity_pst(&pst, &bg, &probe);
        let bf = brute_force(&pst, &bg, &probe);
        prop_assert_eq!(dp.log_sim.to_bits(), bf.log_sim.to_bits());
        prop_assert!(dp.log_sim < 0.0, "SIM < 1: background wins everywhere");
        prop_assert_eq!(dp.segment_len(), 1);
    }

    /// The empty probe is a fixed point regardless of the model: no
    /// non-empty segment exists, so the score is -∞ and the segment is
    /// `[0, 0)`.
    #[test]
    fn empty_probe_scores_negative_infinity(
        train in prop::collection::vec(0u16..5, 1..40),
        significance in 1u64..5,
    ) {
        let mut pst = Pst::new(
            5,
            PstParams::default().with_significance(significance),
        );
        pst.add_segment(&syms(&train));
        let bg = BackgroundModel::uniform(5);
        let dp = max_similarity_pst(&pst, &bg, &[]);
        prop_assert_eq!(dp.log_sim, f64::NEG_INFINITY);
        prop_assert_eq!((dp.start, dp.end), (0, 0));
        prop_assert_eq!(dp.segment_len(), 0);
    }
}
