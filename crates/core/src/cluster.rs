//! A CLUSEQ cluster: a probabilistic suffix tree plus its member set.

use cluseq_pst::{Pst, PstParams};
use cluseq_seq::{Sequence, Symbol};

/// A cluster under construction: the PST modeling its CPD, the ids of the
/// sequences currently belonging to it, and the seed it was grown from.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Stable identifier (creation order, never reused within a run).
    pub id: usize,
    /// The conditional probability model of the cluster.
    pub pst: Pst,
    /// Ids of member sequences, ascending. Rebuilt every iteration by the
    /// re-clustering step; clusters may overlap.
    pub members: Vec<usize>,
    /// The sequence id the cluster was seeded from.
    pub seed: usize,
}

impl Cluster {
    /// Creates a new cluster seeded with a single sequence (paper §4.1:
    /// *"each new cluster at its initial stage contains only one sequence
    /// and is represented by the probabilistic suffix tree constructed from
    /// the sequence"*).
    pub fn from_seed(
        id: usize,
        seed: usize,
        seq: &Sequence,
        alphabet_size: usize,
        params: PstParams,
    ) -> Self {
        Self {
            id,
            pst: Pst::from_sequence(alphabet_size, params, seq),
            members: vec![seed],
            seed,
        }
    }

    /// Number of member sequences.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Whether `seq_id` is currently a member (members stay sorted).
    pub fn contains(&self, seq_id: usize) -> bool {
        self.members.binary_search(&seq_id).is_ok()
    }

    /// Feeds the similarity-maximizing segment of a joining sequence into
    /// the cluster's model (§4.4: *"instead of using the entire sequence,
    /// only the segment that produces the highest similarity score is
    /// used"*).
    pub fn absorb_segment(&mut self, segment: &[Symbol]) {
        self.pst.add_segment(segment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_seq::Alphabet;

    fn params() -> PstParams {
        PstParams::default()
            .with_significance(1)
            .without_smoothing()
    }

    #[test]
    fn from_seed_builds_a_model_of_the_seed() {
        let alphabet = Alphabet::from_chars("ab".chars());
        let seq = Sequence::parse_str(&alphabet, "abab").unwrap();
        let c = Cluster::from_seed(3, 17, &seq, 2, params());
        assert_eq!(c.id, 3);
        assert_eq!(c.seed, 17);
        assert_eq!(c.members, vec![17]);
        assert_eq!(c.size(), 1);
        assert!(c.contains(17));
        assert!(!c.contains(0));
        assert_eq!(c.pst.total_count(), 4);
    }

    #[test]
    fn absorb_segment_grows_the_model() {
        let alphabet = Alphabet::from_chars("ab".chars());
        let seq = Sequence::parse_str(&alphabet, "ab").unwrap();
        let mut c = Cluster::from_seed(0, 0, &seq, 2, params());
        let before = c.pst.total_count();
        let a = alphabet.get("a").unwrap();
        let b = alphabet.get("b").unwrap();
        c.absorb_segment(&[a, b, a]);
        assert_eq!(c.pst.total_count(), before + 3);
    }
}
