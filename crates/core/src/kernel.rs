//! Kernel dispatch: one handle for "a cluster model, prepared for
//! whichever scan kernel the run selected".
//!
//! The scan call-sites — recluster's serial arms, seeding's farthest-first
//! folds, the final assignment sweep, serve's classifier, and the score
//! engine's snapshot passes — all need the same four-way choice: walk the
//! PST directly (interpreted), scan a [`CompiledPst`], scan it through the
//! batched driver, or scan a [`QuantizedPst`]. [`ClusterAutomaton`] folds
//! the three automaton-backed kernels into one value so every call-site
//! matches once at *build* time and then scans through a uniform API,
//! instead of re-encoding the kernel match in every loop.
//!
//! Batched vs. per-pair is a *driver* choice, not a table choice: the
//! batched kernel scans the same `CompiledPst` tables, and its per-lane
//! arithmetic is identical to the per-pair scan. Serial call-sites (one
//! sequence at a time, models evolving mid-scan) therefore use
//! [`ClusterAutomaton::scan_bounded`] under every exact kernel and get
//! bit-identical results by construction; only the bulk snapshot paths
//! route through [`ClusterAutomaton::scan_batch`].

use cluseq_pst::{CompiledPst, Pst, QuantizedPst};
use cluseq_seq::{BackgroundModel, Symbol};

use crate::config::ScanKernel;
use crate::similarity::{
    max_similarity_compiled, max_similarity_compiled_batch, max_similarity_compiled_bounded,
    max_similarity_quantized, max_similarity_quantized_batch, max_similarity_quantized_bounded,
    BoundedSimilarity, SegmentSimilarity,
};

/// A cluster's frozen model, compiled for one of the automaton-backed
/// scan kernels (see the [module docs](self)).
#[derive(Debug, Clone)]
pub enum ClusterAutomaton {
    /// Exact f64 tables — the [`ScanKernel::Compiled`] and
    /// [`ScanKernel::Batched`] kernels (same tables, different drivers).
    Exact(CompiledPst),
    /// `i16` fixed-point tables — the [`ScanKernel::Quantized`] kernel.
    Quantized(QuantizedPst),
}

impl ClusterAutomaton {
    /// Compiles `pst` for `kernel`. Returns `None` for
    /// [`ScanKernel::Interpreted`], which scans the tree directly.
    pub fn build(pst: &Pst, background: &BackgroundModel, kernel: ScanKernel) -> Option<Self> {
        match kernel {
            ScanKernel::Interpreted => None,
            ScanKernel::Compiled | ScanKernel::Batched => {
                Some(Self::Exact(CompiledPst::compile(pst, background)))
            }
            ScanKernel::Quantized => Some(Self::Quantized(
                CompiledPst::compile(pst, background).quantize(),
            )),
        }
    }

    /// Scores one sequence, unbounded. Exact tables give the interpreted
    /// kernel's bits; quantized tables the byte-stable quantized score.
    pub fn scan(&self, seq: &[Symbol]) -> SegmentSimilarity {
        match self {
            Self::Exact(compiled) => max_similarity_compiled(compiled, seq),
            Self::Quantized(quantized) => max_similarity_quantized(quantized, seq),
        }
    }

    /// Scores one sequence with threshold early-exit (see
    /// [`max_similarity_compiled_bounded`] /
    /// [`max_similarity_quantized_bounded`]).
    pub fn scan_bounded(&self, seq: &[Symbol], threshold: f64) -> BoundedSimilarity {
        match self {
            Self::Exact(compiled) => max_similarity_compiled_bounded(compiled, seq, threshold),
            Self::Quantized(quantized) => {
                max_similarity_quantized_bounded(quantized, seq, threshold)
            }
        }
    }

    /// [`scan_bounded`](Self::scan_bounded) driven by the caller's choice
    /// of `prune_below`: `None` scans to completion and always yields
    /// [`BoundedSimilarity::Exact`].
    pub fn scan_pruned(&self, seq: &[Symbol], prune_below: Option<f64>) -> BoundedSimilarity {
        match prune_below {
            Some(log_t) => self.scan_bounded(seq, log_t),
            None => BoundedSimilarity::Exact(self.scan(seq)),
        }
    }

    /// Scores a batch of sequences through the interleaved multi-lane
    /// driver. `out[lane]` is bit-identical to
    /// [`scan_pruned`](Self::scan_pruned)`(seqs[lane], threshold)` — the
    /// batching changes memory behavior, never per-lane arithmetic.
    pub fn scan_batch(&self, seqs: &[&[Symbol]], threshold: Option<f64>) -> Vec<BoundedSimilarity> {
        match self {
            Self::Exact(compiled) => max_similarity_compiled_batch(compiled, seqs, threshold),
            Self::Quantized(quantized) => {
                max_similarity_quantized_batch(quantized, seqs, threshold)
            }
        }
    }

    /// Heap footprint of the underlying tables.
    pub fn table_bytes(&self) -> usize {
        match self {
            Self::Exact(compiled) => compiled.table_bytes(),
            Self::Quantized(quantized) => quantized.table_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_pst::PstParams;
    use cluseq_seq::Sequence;

    fn fixture() -> (Pst, BackgroundModel, Vec<Symbol>) {
        let alphabet = cluseq_seq::Alphabet::from_chars("abc".chars());
        let train = Sequence::parse_str(&alphabet, "abcabcaabbccabcbacbca").unwrap();
        let pst = Pst::from_sequence(
            3,
            PstParams::default().with_significance(2).with_max_depth(4),
            &train,
        );
        let probe = Sequence::parse_str(&alphabet, "abcabcaabbcc")
            .unwrap()
            .iter()
            .collect();
        (pst, BackgroundModel::uniform(3), probe)
    }

    #[test]
    fn interpreted_kernel_builds_no_automaton() {
        let (pst, bg, _) = fixture();
        assert!(ClusterAutomaton::build(&pst, &bg, ScanKernel::Interpreted).is_none());
        for kernel in [
            ScanKernel::Compiled,
            ScanKernel::Batched,
            ScanKernel::Quantized,
        ] {
            let a = ClusterAutomaton::build(&pst, &bg, kernel).unwrap();
            assert!(a.table_bytes() > 0);
        }
    }

    #[test]
    fn compiled_and_batched_share_exact_tables() {
        let (pst, bg, probe) = fixture();
        let compiled = ClusterAutomaton::build(&pst, &bg, ScanKernel::Compiled).unwrap();
        let batched = ClusterAutomaton::build(&pst, &bg, ScanKernel::Batched).unwrap();
        assert_eq!(
            compiled.scan(&probe).log_sim.to_bits(),
            batched.scan(&probe).log_sim.to_bits()
        );
        assert!(matches!(batched, ClusterAutomaton::Exact(_)));
    }

    #[test]
    fn scan_batch_matches_scan_pruned_per_lane() {
        let (pst, bg, probe) = fixture();
        let short: Vec<Symbol> = probe[..3].to_vec();
        let lanes: Vec<&[Symbol]> = vec![&probe, &short, &[]];
        for kernel in [ScanKernel::Batched, ScanKernel::Quantized] {
            let a = ClusterAutomaton::build(&pst, &bg, kernel).unwrap();
            for threshold in [None, Some(0.5), Some(1e9)] {
                let batch = a.scan_batch(&lanes, threshold);
                for (lane, seq) in lanes.iter().enumerate() {
                    assert_eq!(
                        batch[lane],
                        a.scan_pruned(seq, threshold),
                        "kernel {kernel} lane {lane} threshold {threshold:?}"
                    );
                }
            }
        }
    }
}
