//! CLUSEQ parameters.

use serde::{Deserialize, Serialize};

use cluseq_pst::{PruneStrategy, PstParams};

use crate::order::ExaminationOrder;

/// What happens to a cluster that fails the consolidation test (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsolidationMode {
    /// The paper's rule: the covered cluster is dismissed outright.
    Dismiss,
    /// Extension: the covered cluster's model is merged into the retained
    /// cluster it overlaps most, so its statistical evidence survives.
    /// Exposed for the ablation benches.
    MergeIntoCovering,
}

/// How the re-clustering scan applies model updates (§4.2).
///
/// Joins the `rebuild_psts` / [`ExaminationOrder`] family of scan
/// ablations; the default is the paper's rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScanMode {
    /// The paper's rule: a new join's maximizing segment is inserted into
    /// the cluster model *immediately*, so later sequences in the same
    /// scan are scored against the updated model. Order-dependent by
    /// design (§6.3), and therefore inherently serial.
    #[default]
    Incremental,
    /// Scan variant: every (sequence, cluster) similarity is computed
    /// against the models as they stood at the *start* of the scan — a
    /// pure map, evaluated in parallel by [`crate::score`] — and the
    /// maximizing segments of new joins are absorbed in a sequential
    /// second phase. Results are bit-identical for any thread count.
    Snapshot,
}

impl std::fmt::Display for ScanMode {
    /// Renders the same lowercase token [`FromStr`](std::str::FromStr)
    /// accepts (`incremental` / `snapshot`), so the value round-trips
    /// through config files and run reports.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScanMode::Incremental => "incremental",
            ScanMode::Snapshot => "snapshot",
        })
    }
}

impl std::str::FromStr for ScanMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "incremental" => Ok(ScanMode::Incremental),
            "snapshot" => Ok(ScanMode::Snapshot),
            other => Err(format!(
                "unknown scan mode {other:?} (expected incremental|snapshot)"
            )),
        }
    }
}

/// Which implementation evaluates the per-symbol similarity DP.
///
/// The first three kernels compute the exact same X/Y/Z dynamic program
/// and are **bit-identical** in every outcome (the compiled tables hold
/// the very f64 values the interpreted path computes per symbol, consumed
/// in the same per-sequence order — batching interleaves sequences but
/// never reorders one sequence's arithmetic); they differ only in speed
/// and in the `pairs_pruned` telemetry counter, since the automaton
/// kernels can prove mid-scan that a pair cannot reach the threshold and
/// exit early. The quantized kernel trades exactness for a 4× smaller hot
/// table: its scores deviate from the exact kernels by at most a
/// documented per-automaton bound
/// ([`QuantizedPst::error_bound`](cluseq_pst::QuantizedPst::error_bound))
/// while remaining **byte-stable** — a pure deterministic function of
/// (model, sequence), so cached columns and checkpoint/resume determinism
/// hold exactly as for the exact kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScanKernel {
    /// Walk the PST per symbol via the [context
    /// scanner](cluseq_pst::ContextScanner): child lookups, successor-count
    /// summation, and two `ln()` calls per position.
    Interpreted,
    /// Flatten each frozen PST into a dense goto + log-ratio automaton
    /// ([`cluseq_pst::CompiledPst`]) once per scan phase, making the hot
    /// loop two array loads per symbol with threshold early-exit.
    #[default]
    Compiled,
    /// The compiled automaton driven by the batched scan
    /// ([`cluseq_pst::BatchScanner`]): snapshot score phases interleave
    /// [`BATCH_LANES`](crate::similarity::BATCH_LANES) sequences per
    /// automaton so table loads overlap instead of serializing on the
    /// goto chain. Bit-identical to [`Compiled`](Self::Compiled) in every
    /// outcome; serial paths (incremental-mode scans, single-sequence
    /// classification) fall back to the per-pair compiled scan, which is
    /// the same arithmetic.
    Batched,
    /// The batched driver over an `i16` fixed-point ratio table
    /// ([`cluseq_pst::QuantizedPst`]): integer-only DP, 6 bytes per table
    /// entry instead of 12, slack-free early exit. Similarities deviate
    /// from the exact kernels within the documented quantization bound.
    Quantized,
}

impl ScanKernel {
    /// Every kernel, in the order the CLI documents them.
    pub const ALL: [ScanKernel; 4] = [
        ScanKernel::Interpreted,
        ScanKernel::Compiled,
        ScanKernel::Batched,
        ScanKernel::Quantized,
    ];

    /// Whether this kernel scans via a precompiled automaton (everything
    /// but [`Interpreted`](Self::Interpreted)) — and therefore supports
    /// threshold early-exit (`prune_below`).
    pub fn uses_automaton(self) -> bool {
        !matches!(self, ScanKernel::Interpreted)
    }

    /// Whether this kernel's similarities are bit-identical to the
    /// interpreted reference (everything but
    /// [`Quantized`](Self::Quantized)).
    pub fn is_exact(self) -> bool {
        !matches!(self, ScanKernel::Quantized)
    }
}

impl std::fmt::Display for ScanKernel {
    /// Renders the same lowercase token [`FromStr`](std::str::FromStr)
    /// accepts (`interpreted` / `compiled` / `batched` / `quantized`), so
    /// the value round-trips through config files and run reports.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScanKernel::Interpreted => "interpreted",
            ScanKernel::Compiled => "compiled",
            ScanKernel::Batched => "batched",
            ScanKernel::Quantized => "quantized",
        })
    }
}

impl std::str::FromStr for ScanKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interpreted" => Ok(ScanKernel::Interpreted),
            "compiled" => Ok(ScanKernel::Compiled),
            "batched" => Ok(ScanKernel::Batched),
            "quantized" => Ok(ScanKernel::Quantized),
            other => Err(format!(
                "unknown scan kernel {other:?} (expected interpreted|compiled|batched|quantized)"
            )),
        }
    }
}

/// When and where the iteration loop writes crash-recovery checkpoints
/// (see [`crate::checkpoint`]).
///
/// A checkpoint captures the complete loop state after an iteration —
/// cluster models with member lists, the RNG stream position, the
/// threshold trajectory, and accumulated telemetry — so a killed run can
/// be resumed with [`crate::Cluseq::resume`] and finish **bit-identically**
/// to an uninterrupted one. Files are written atomically (temp file +
/// fsync + rename), one per checkpointed iteration, named
/// `cluseq-NNNNNN.ckpt` under `dir`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Directory receiving checkpoint files (created on first write).
    pub dir: std::path::PathBuf,
    /// Write a checkpoint after every `every` completed iterations
    /// (`1` = every iteration). A final checkpoint is also written when
    /// the loop reaches its fixpoint, regardless of cadence.
    ///
    /// Must be at least 1; [`CheckpointPolicy::new`] enforces this.
    pub every: usize,
}

impl CheckpointPolicy {
    /// A policy writing to `dir` every `every` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `every` is 0.
    pub fn new(dir: impl Into<std::path::PathBuf>, every: usize) -> Self {
        assert!(every >= 1, "checkpoint cadence must be >= 1");
        Self {
            dir: dir.into(),
            every,
        }
    }

    /// The file path of the checkpoint written after `completed`
    /// iterations have finished.
    pub fn path_for(&self, completed: usize) -> std::path::PathBuf {
        self.dir.join(format!("cluseq-{completed:06}.ckpt"))
    }
}

/// Parameters of the CLUSEQ algorithm (`k`, `c`, `t` in the paper, plus the
/// knobs of §4–§5 the paper fixes to stated defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CluseqParams {
    /// `k`: number of clusters generated at the first iteration. The paper
    /// stresses this only sets a starting point — the growth factor and
    /// consolidation adapt the count automatically. Default 1.
    pub initial_clusters: usize,
    /// `c`: the significance threshold for PST nodes *and* the minimum
    /// exclusive membership a cluster must keep to survive consolidation.
    /// The paper's rule of thumb is 30.
    pub significance: u64,
    /// `t`: the initial similarity threshold (natural units, ≥ 1). The
    /// paper's protein experiment deliberately starts from 1.0005 and lets
    /// adjustment find the real value.
    pub initial_threshold: f64,
    /// Whether to adjust `t` toward the histogram valley each iteration
    /// (§4.6). Default true.
    pub adjust_threshold: bool,
    /// Sample size multiplier: `m = sample_factor × k_n` sample sequences
    /// are drawn when generating `k_n` new clusters. The paper uses 5.
    pub sample_factor: usize,
    /// Maximum context length `L` for every cluster's PST.
    pub max_depth: usize,
    /// Per-cluster PST byte budget (paper: 5 MB), or `None` for unbounded.
    pub max_pst_bytes: Option<usize>,
    /// PST pruning strategy when the budget is exceeded.
    pub prune_strategy: PruneStrategy,
    /// Smoothing floor `p_min` (§5.2); `None` disables adjustment.
    pub smoothing: Option<f64>,
    /// Order in which sequences are examined during re-clustering (§6.3).
    pub order: ExaminationOrder,
    /// Histogram resolution for threshold adjustment.
    pub histogram_buckets: usize,
    /// Hard iteration cap (the paper's loop terminates on a fixpoint; the
    /// cap guards degenerate configurations).
    pub max_iterations: usize,
    /// What to do with clusters that fail consolidation: the paper's
    /// dismissal, or the merge extension.
    pub consolidation: ConsolidationMode,
    /// Minimum number of *exclusive* members a cluster must keep to
    /// survive consolidation. `None` (default) follows the paper and uses
    /// the significance threshold `c`; setting it explicitly decouples the
    /// two, which matters at reduced data scales where the statistically
    /// right `c` is small.
    pub min_exclusive: Option<usize>,
    /// Rebuild each cluster's PST from its current members' maximizing
    /// segments at the end of every iteration, instead of only inserting
    /// segments when a sequence first joins. Not in the paper (which only
    /// ever inserts); exposed for the ablation benches. Default false.
    pub rebuild_psts: bool,
    /// How the re-clustering scan applies model updates: the paper's
    /// immediate insertion, or the parallel snapshot-score variant.
    pub scan_mode: ScanMode,
    /// Which similarity-DP implementation every scoring pass uses. The
    /// two kernels are bit-identical in outcome (see [`ScanKernel`]);
    /// compiled is the default and the fast path.
    pub scan_kernel: ScanKernel,
    /// Worker threads for the read-only scoring passes: seed selection,
    /// the final assignment sweep, online scoring, and — under
    /// [`ScanMode::Snapshot`] — the scan's score phase. 1 = serial.
    /// Results are bit-identical for any value (see [`crate::score`]);
    /// under [`ScanMode::Incremental`] the scan itself stays serial
    /// because its PST updates are order-dependent by design (§6.3).
    pub threads: usize,
    /// Reuse cached (sequence, cluster) similarities for clusters whose
    /// model did not change, recompile automata only for dirty clusters,
    /// and delta-encode checkpoints against the previous one (see
    /// [`crate::incremental`]). Clustering output is byte-identical with
    /// the flag on or off; only work skipped (and the `pairs_reused`,
    /// `clusters_dirty`, `pst_recompiles` telemetry) changes. Default
    /// false.
    pub incremental: bool,
    /// Under [`ScanMode::Snapshot`], split each re-clustering scan into
    /// fixed shards of this many examination positions, bounding the
    /// resident verdict matrix to `shard × clusters` instead of
    /// `n × clusters` (the out-of-core engine's scan layer; see
    /// [`crate::recluster`]). Shard boundaries are invisible — results
    /// are bit-identical for any shard size. `None` (default) scans in
    /// one shard. Rejected by [`CluseqParams::validate`] under
    /// [`ScanMode::Incremental`] (already O(1) resident) and with the
    /// incremental engine (its cache is O(n·k) resident, so sharding
    /// would bound nothing).
    pub scan_shard: Option<usize>,
    /// Byte budget, in MiB, for the paged cluster-model cache (see
    /// [`crate::models::ModelCache`]): compiled scan automata are kept
    /// across iterations up to this budget and rebuilt deterministically
    /// on demand, instead of all being recompiled (or all held) every
    /// scan. `None` (default) keeps the pre-existing behaviour — every
    /// scan compiles its own automata and drops them. Output is
    /// bit-identical with any budget.
    pub model_cache_mb: Option<usize>,
    /// Crash-recovery checkpointing (see [`CheckpointPolicy`] and
    /// [`crate::checkpoint`]); `None` (default) writes nothing.
    pub checkpoint: Option<CheckpointPolicy>,
    /// RNG seed (sampling, random examination order).
    pub seed: u64,
}

impl Default for CluseqParams {
    fn default() -> Self {
        Self {
            initial_clusters: 1,
            significance: 30,
            initial_threshold: 1.0005,
            adjust_threshold: true,
            sample_factor: 5,
            max_depth: 12,
            max_pst_bytes: Some(5 * 1024 * 1024),
            prune_strategy: PruneStrategy::Composite,
            smoothing: Some(1e-4),
            order: ExaminationOrder::Fixed,
            histogram_buckets: 100,
            max_iterations: 50,
            consolidation: ConsolidationMode::Dismiss,
            min_exclusive: None,
            rebuild_psts: false,
            scan_mode: ScanMode::Incremental,
            scan_kernel: ScanKernel::Compiled,
            threads: 1,
            incremental: false,
            scan_shard: None,
            model_cache_mb: None,
            checkpoint: None,
            seed: 0xC105E9, // arbitrary fixed default for reproducibility
        }
    }
}

impl CluseqParams {
    /// Sets `k`, the initial cluster count.
    pub fn with_initial_clusters(mut self, k: usize) -> Self {
        self.initial_clusters = k;
        self
    }

    /// Sets `c`, the significance threshold.
    pub fn with_significance(mut self, c: u64) -> Self {
        self.significance = c;
        self
    }

    /// Sets the initial similarity threshold `t` (natural units).
    ///
    /// # Panics
    ///
    /// Panics if `t < 1` — the paper requires `t ≥ 1` for a meaningful
    /// separation between clustered sequences and outliers.
    pub fn with_initial_threshold(mut self, t: f64) -> Self {
        assert!(t >= 1.0, "similarity threshold must be >= 1 (got {t})");
        self.initial_threshold = t;
        self
    }

    /// Enables or disables automatic threshold adjustment.
    pub fn with_threshold_adjustment(mut self, on: bool) -> Self {
        self.adjust_threshold = on;
        self
    }

    /// Sets the sample multiplier (`m = factor × k_n`).
    pub fn with_sample_factor(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "sample factor must be >= 1");
        self.sample_factor = factor;
        self
    }

    /// Sets the PST context-length bound `L`.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Sets the per-cluster PST byte budget.
    pub fn with_max_pst_bytes(mut self, bytes: usize) -> Self {
        self.max_pst_bytes = Some(bytes);
        self
    }

    /// Removes the per-cluster byte budget.
    pub fn without_pst_limit(mut self) -> Self {
        self.max_pst_bytes = None;
        self
    }

    /// Sets the examination order.
    pub fn with_order(mut self, order: ExaminationOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iterations(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "need at least one iteration");
        self.max_iterations = cap;
        self
    }

    /// Overrides the consolidation exclusive-membership minimum.
    pub fn with_min_exclusive(mut self, min: usize) -> Self {
        self.min_exclusive = Some(min);
        self
    }

    /// The consolidation minimum actually in force.
    pub fn effective_min_exclusive(&self) -> usize {
        self.min_exclusive.unwrap_or(self.significance as usize)
    }

    /// Sets the consolidation mode (dismiss per the paper, or merge).
    pub fn with_consolidation(mut self, mode: ConsolidationMode) -> Self {
        self.consolidation = mode;
        self
    }

    /// Sets the worker-thread count for read-only scoring passes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Enables the (non-paper) per-iteration PST rebuild ablation.
    pub fn with_pst_rebuild(mut self, on: bool) -> Self {
        self.rebuild_psts = on;
        self
    }

    /// Sets the re-clustering scan mode.
    pub fn with_scan_mode(mut self, mode: ScanMode) -> Self {
        self.scan_mode = mode;
        self
    }

    /// Sets the similarity-DP kernel (interpreted walk or compiled
    /// automaton).
    pub fn with_scan_kernel(mut self, kernel: ScanKernel) -> Self {
        self.scan_kernel = kernel;
        self
    }

    /// Enables or disables the incremental iteration engine (cached
    /// similarities for clean clusters, dirty-only recompiles, delta
    /// checkpoints). See [`crate::incremental`].
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Shards the snapshot scan into fixed ranges of `shard` examination
    /// positions (see [`CluseqParams::scan_shard`]).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is 0.
    pub fn with_scan_shard(mut self, shard: usize) -> Self {
        assert!(shard >= 1, "scan shard must be >= 1");
        self.scan_shard = Some(shard);
        self
    }

    /// Removes the scan-shard bound (whole-corpus score phase).
    pub fn without_scan_shard(mut self) -> Self {
        self.scan_shard = None;
        self
    }

    /// Caps the paged model cache at `mb` MiB (see
    /// [`CluseqParams::model_cache_mb`]). `0` is allowed: every automaton
    /// is rebuilt on demand and nothing is retained.
    pub fn with_model_cache_mb(mut self, mb: usize) -> Self {
        self.model_cache_mb = Some(mb);
        self
    }

    /// Disables the paged model cache (automata compiled per scan).
    pub fn without_model_cache(mut self) -> Self {
        self.model_cache_mb = None;
        self
    }

    /// Enables crash-recovery checkpoints: one written to `dir` after
    /// every `every` completed iterations (see [`CheckpointPolicy`]).
    pub fn with_checkpoints(mut self, dir: impl Into<std::path::PathBuf>, every: usize) -> Self {
        self.checkpoint = Some(CheckpointPolicy::new(dir, every));
        self
    }

    /// Disables checkpointing.
    pub fn without_checkpoints(mut self) -> Self {
        self.checkpoint = None;
        self
    }

    /// The PST parameter block derived from these settings.
    pub fn pst_params(&self) -> PstParams {
        let mut p = PstParams::default()
            .with_max_depth(self.max_depth)
            .with_significance(self.significance)
            .with_prune_strategy(self.prune_strategy);
        p = match self.smoothing {
            Some(p_min) => p.with_smoothing(p_min),
            None => p.without_smoothing(),
        };
        p.memory_limit = self.max_pst_bytes;
        p
    }

    /// Validates parameter consistency for an alphabet of `n` symbols.
    pub fn validate(&self, alphabet_size: usize) {
        assert!(
            self.initial_threshold >= 1.0,
            "similarity threshold must be >= 1"
        );
        assert!(self.sample_factor >= 1);
        assert!(
            self.histogram_buckets >= 3,
            "valley detection needs >= 3 buckets"
        );
        assert!(self.max_iterations >= 1);
        if let Some(cp) = &self.checkpoint {
            assert!(cp.every >= 1, "checkpoint cadence must be >= 1");
        }
        if let Some(shard) = self.scan_shard {
            assert!(shard >= 1, "scan shard must be >= 1");
            assert!(
                self.scan_mode == ScanMode::Snapshot,
                "scan sharding requires the snapshot scan mode \
                 (the incremental scan is already O(1) resident)"
            );
            assert!(
                !self.incremental,
                "scan sharding is incompatible with the incremental engine \
                 (its similarity cache is O(n·k) resident, so sharding would \
                 bound nothing)"
            );
        }
        self.pst_params().validate(alphabet_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = CluseqParams::default();
        assert_eq!(p.initial_clusters, 1); // "the default value of k is 1"
        assert_eq!(p.significance, 30); // "c is usually set to >= 30"
        assert_eq!(p.sample_factor, 5); // "we set m = 5 k_n"
        assert_eq!(p.max_pst_bytes, Some(5 * 1024 * 1024)); // "5MB"
        assert_eq!(p.order, ExaminationOrder::Fixed); // "fixed order was used"
        assert!(p.adjust_threshold);
    }

    #[test]
    fn builders_compose_and_validate() {
        let p = CluseqParams::default()
            .with_initial_clusters(10)
            .with_significance(3)
            .with_initial_threshold(2.0)
            .with_sample_factor(3)
            .with_max_depth(6)
            .with_seed(42);
        p.validate(20);
        assert_eq!(p.initial_clusters, 10);
        assert_eq!(p.pst_params().significance, 3);
        assert_eq!(p.pst_params().max_depth, 6);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn threshold_below_one_is_rejected() {
        CluseqParams::default().with_initial_threshold(0.5);
    }

    #[test]
    fn scan_mode_parses_and_defaults_to_the_paper() {
        assert_eq!(CluseqParams::default().scan_mode, ScanMode::Incremental);
        assert_eq!("incremental".parse(), Ok(ScanMode::Incremental));
        assert_eq!("snapshot".parse(), Ok(ScanMode::Snapshot));
        assert!("Snapshot".parse::<ScanMode>().is_err());
        assert_eq!(
            CluseqParams::default()
                .with_scan_mode(ScanMode::Snapshot)
                .scan_mode,
            ScanMode::Snapshot
        );
    }

    #[test]
    fn scan_mode_display_round_trips_through_from_str() {
        for mode in [ScanMode::Incremental, ScanMode::Snapshot] {
            assert_eq!(mode.to_string().parse(), Ok(mode));
        }
    }

    #[test]
    fn scan_kernel_parses_and_defaults_to_compiled() {
        assert_eq!(CluseqParams::default().scan_kernel, ScanKernel::Compiled);
        assert_eq!("interpreted".parse(), Ok(ScanKernel::Interpreted));
        assert_eq!("compiled".parse(), Ok(ScanKernel::Compiled));
        assert!("Compiled".parse::<ScanKernel>().is_err());
        assert_eq!(
            CluseqParams::default()
                .with_scan_kernel(ScanKernel::Interpreted)
                .scan_kernel,
            ScanKernel::Interpreted
        );
    }

    #[test]
    fn scan_kernel_display_round_trips_through_from_str() {
        for kernel in ScanKernel::ALL {
            assert_eq!(kernel.to_string().parse(), Ok(kernel));
        }
    }

    #[test]
    fn scan_kernel_rejects_unknown_names_listing_the_valid_set() {
        let err = "warp".parse::<ScanKernel>().unwrap_err();
        for token in ["warp", "interpreted", "compiled", "batched", "quantized"] {
            assert!(err.contains(token), "error {err:?} must mention {token}");
        }
    }

    #[test]
    fn scan_kernel_classification_helpers() {
        use ScanKernel::*;
        assert!(!Interpreted.uses_automaton());
        assert!(Compiled.uses_automaton() && Batched.uses_automaton());
        assert!(Quantized.uses_automaton());
        assert!(Interpreted.is_exact() && Compiled.is_exact() && Batched.is_exact());
        assert!(!Quantized.is_exact());
    }

    #[test]
    fn checkpoint_policy_builds_and_names_files() {
        let p = CluseqParams::default().with_checkpoints("/tmp/ckpt", 3);
        let policy = p.checkpoint.as_ref().unwrap();
        assert_eq!(policy.every, 3);
        assert_eq!(
            policy.path_for(12),
            std::path::Path::new("/tmp/ckpt/cluseq-000012.ckpt")
        );
        assert!(p.without_checkpoints().checkpoint.is_none());
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn zero_checkpoint_cadence_is_rejected() {
        CheckpointPolicy::new("x", 0);
    }

    #[test]
    fn scan_shard_requires_the_snapshot_mode() {
        let p = CluseqParams::default()
            .with_scan_mode(ScanMode::Snapshot)
            .with_scan_shard(1024)
            .with_model_cache_mb(64);
        p.validate(20);
        assert_eq!(p.scan_shard, Some(1024));
        assert_eq!(p.model_cache_mb, Some(64));
        assert!(p.clone().without_scan_shard().scan_shard.is_none());
        assert!(p.without_model_cache().model_cache_mb.is_none());
    }

    #[test]
    #[should_panic(expected = "snapshot")]
    fn scan_shard_under_incremental_mode_is_rejected() {
        CluseqParams::default().with_scan_shard(64).validate(20);
    }

    #[test]
    #[should_panic(expected = "incremental engine")]
    fn scan_shard_with_the_incremental_engine_is_rejected() {
        CluseqParams::default()
            .with_scan_mode(ScanMode::Snapshot)
            .with_incremental(true)
            .with_scan_shard(64)
            .validate(20);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_scan_shard_is_rejected() {
        CluseqParams::default().with_scan_shard(0);
    }

    #[test]
    fn pst_params_inherit_memory_limit() {
        let p = CluseqParams::default().with_max_pst_bytes(1234);
        assert_eq!(p.pst_params().memory_limit, Some(1234));
        let p = p.without_pst_limit();
        assert_eq!(p.pst_params().memory_limit, None);
    }
}
