//! Run-report telemetry for the CLUSEQ iteration loop.
//!
//! The paper reasons explicitly about per-iteration dynamics — the
//! threshold valley moving (§4.6), clusters being born and dismissed under
//! the growth factor `f` (§4.1, §4.5), PST size under the memory budget
//! (§5.1) — but a bare [`crate::CluseqOutcome`] only shows the end state.
//! This module records the trajectory: a [`RunObserver`] receives one
//! [`IterationRecord`] per completed iteration, and the provided
//! [`RunReport`] implementation accumulates them into a serializable,
//! human-renderable report.
//!
//! # Determinism contract
//!
//! Every *counter* field of a record (cluster lifecycle counts, scan pair
//! counts, the similarity histogram, the valley, thresholds, per-cluster
//! PST footprints) is a pure function of the run's inputs and therefore
//! **bit-identical across thread counts** for both scan modes — the same
//! contract [`crate::score`] gives the clustering itself. Only the
//! wall-clock fields in [`PhaseNanos`] vary between runs;
//! [`RunReport::counters_json`] serializes a report with those fields
//! omitted so tests (and golden comparisons) can assert byte equality.
//!
//! # Cost when disabled
//!
//! The driver asks [`RunObserver::enabled`] before assembling a record;
//! the default [`NoopObserver`] answers `false`, so a plain
//! [`crate::Cluseq::run`] skips the per-cluster footprint walk and the
//! histogram snapshot entirely — the hot path is unchanged.

use cluseq_eval::Histogram;

use crate::config::ScanMode;
use crate::outcome::IterationStats;

/// Facts about a run known before the first iteration, delivered once via
/// [`RunObserver::on_run_start`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunContext {
    /// Number of sequences in the database.
    pub sequences: usize,
    /// Alphabet size of the database.
    pub alphabet_size: usize,
    /// Configured worker-thread count (a performance knob only; see
    /// [`crate::score`]).
    pub threads: usize,
    /// The configured re-clustering scan mode.
    pub scan_mode: ScanMode,
    /// The RNG seed.
    pub seed: u64,
    /// The initial similarity threshold, log-space.
    pub initial_log_t: f64,
}

/// Facts about a finished run, delivered once via
/// [`RunObserver::on_run_end`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Iterations executed (equals the number of records delivered).
    pub iterations: usize,
    /// Surviving clusters.
    pub clusters: usize,
    /// Sequences belonging to no cluster after the final sweep.
    pub outliers: usize,
    /// The final similarity threshold, log-space.
    pub final_log_t: f64,
    /// Wall time of the final assignment sweep, nanoseconds.
    pub finalize_nanos: u64,
    /// Wall time of the whole run, nanoseconds.
    pub total_nanos: u64,
    /// (sequence, cluster) pairs of the final assignment sweep whose
    /// evaluation was abandoned early because the compiled kernel proved
    /// they could not reach the threshold (always 0 under
    /// [`crate::config::ScanKernel::Interpreted`]). A pruned pair is
    /// guaranteed to be a non-join, so outcomes are unaffected; this
    /// counter exists so skipped work is visible rather than silently
    /// folded into `pairs_scored`-style totals.
    pub pairs_pruned: u64,
}

/// What seed selection (§4.1) did in one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedingMetrics {
    /// `k_n`: new clusters requested by the growth rule.
    pub requested: usize,
    /// Unclustered sequences available as candidates.
    pub pool: usize,
    /// Candidates actually sampled (`m = sample_factor × k_n`, clamped).
    pub sampled: usize,
    /// Seeds chosen — clusters born this iteration.
    pub chosen: usize,
}

/// What the re-clustering scan (§4.2) did in one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanMetrics {
    /// (sequence, cluster) pairs scored — the scan's similarity
    /// evaluations. Every pair is scored exactly once per iteration.
    pub pairs_scored: u64,
    /// Pairs whose similarity reached the threshold (membership entries
    /// after the scan, summed over clusters).
    pub joins: u64,
    /// Joins by sequences that were *not* members of that cluster at the
    /// start of the scan — each feeds its maximizing segment to the model
    /// (§4.4).
    pub new_joins: u64,
    /// Membership flips relative to the start of the scan
    /// (joins + departures).
    pub membership_changes: usize,
    /// Pairs the compiled kernel abandoned mid-scan after proving they
    /// could not reach the threshold; such pairs still count in
    /// `pairs_scored`. Scan pruning is only enabled once the threshold is
    /// frozen *and* no iteration records are being kept (pruning skips the
    /// similarity histogram those records carry), so this is always 0 in a
    /// recorded iteration — which is also why version-1 checkpoints, which
    /// predate the field, decode losslessly with 0.
    pub pairs_pruned: u64,
    /// Pairs answered from the incremental similarity cache instead of
    /// being re-scored; such pairs do **not** count in `pairs_scored` (or
    /// `pairs_pruned`). Always 0 unless [`crate::CluseqParams::incremental`]
    /// is on — which is why v1/v2 checkpoints, which predate the field,
    /// decode losslessly with 0.
    pub pairs_reused: u64,
    /// Clusters whose column had to be scored fresh this scan (model
    /// changed, newly seeded, or never cached). 0 unless incremental.
    pub clusters_dirty: u64,
    /// `CompiledPst` automata compiled for dirty clusters this scan.
    /// 0 unless incremental.
    pub pst_recompiles: u64,
}

/// Wall-clock attribution of one iteration's phases, in nanoseconds.
///
/// These are the only fields of an [`IterationRecord`] that are **not**
/// deterministic: they differ run to run and thread count to thread count,
/// and are therefore excluded from [`RunReport::counters_json`] and all
/// golden comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseNanos {
    /// Seed sampling, candidate model building, and farthest-first
    /// selection (§4.1).
    pub seeding: u64,
    /// The scan's similarity evaluations (§4.2). Under
    /// [`ScanMode::Incremental`] this includes the interleaved model
    /// updates (they cannot be separated without per-pair clocking);
    /// `absorb` is then 0.
    pub scan_score: u64,
    /// The sequential absorb phase of [`ScanMode::Snapshot`] — membership
    /// bookkeeping and model updates in examination order.
    pub scan_absorb: u64,
    /// Consolidation (§4.5).
    pub consolidate: u64,
    /// Histogram construction and valley finding (§4.6).
    pub threshold: u64,
    /// The whole iteration, measured independently (≥ the sum of the
    /// phases; the remainder is inter-phase bookkeeping).
    pub total: u64,
}

/// One surviving cluster's shape at the end of an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// Stable cluster id (creation order within the run).
    pub id: usize,
    /// Member count after the scan and consolidation.
    pub members: usize,
    /// Members belonging to no other surviving cluster — the quantity
    /// consolidation (§4.5) tests against `min_exclusive`.
    pub exclusive_members: usize,
    /// Live PST nodes (root included).
    pub pst_nodes: usize,
    /// Estimated PST footprint in bytes (the §5.1 budget's currency).
    pub pst_bytes: usize,
    /// PST root count — total symbols absorbed into the model.
    pub pst_total_count: u64,
}

/// The similarity histogram handed to the valley finder (§4.6), captured
/// verbatim: equal-width buckets over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Lower edge of the bucketed domain (the smallest finite similarity).
    pub lo: f64,
    /// Upper edge of the bucketed domain (the largest finite similarity).
    pub hi: f64,
    /// Per-bucket observation counts.
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Captures a [`Histogram`]'s buckets.
    pub fn capture(hist: &Histogram) -> Self {
        let (lo, hi) = hist.range();
        Self {
            lo,
            hi,
            counts: hist.counts().to_vec(),
        }
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// One checkpoint write attempt by the iteration loop (see
/// [`crate::checkpoint`]), delivered via [`RunObserver::on_checkpoint`].
///
/// Checkpoint events are *provenance*, not counters: whether and when they
/// occur depends on the [`crate::CheckpointPolicy`] and on where a resumed
/// run picked up, so they are excluded from
/// [`RunReport::counters_json`] (like wall-clock timings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointEvent {
    /// Completed iterations captured by this checkpoint (the file resumes
    /// *after* iteration `completed - 1`).
    pub completed: usize,
    /// Where the checkpoint was written.
    pub path: String,
    /// Serialized size in bytes (0 when the write failed).
    pub bytes: u64,
    /// Wall time of the write, nanoseconds.
    pub write_nanos: u64,
    /// The I/O error message when the write failed. Checkpointing is
    /// best-effort durability: a failed write is reported here and the run
    /// continues unharmed.
    pub error: Option<String>,
}

/// Where a resumed run picked up, delivered once via
/// [`RunObserver::on_resume`] (before the replayed iteration records).
/// Provenance only — excluded from [`RunReport::counters_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeInfo {
    /// Iterations already completed by the checkpointed run.
    pub completed: usize,
    /// Checkpoint format version the state was restored from.
    pub version: u32,
}

/// Everything the telemetry layer knows about one completed iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// 0-based iteration number.
    pub iteration: usize,
    /// Clusters alive when the iteration began (before seeding).
    pub clusters_at_start: usize,
    /// Seed-selection metrics; `seeding.chosen` clusters were born.
    pub seeding: SeedingMetrics,
    /// Re-clustering scan metrics.
    pub scan: ScanMetrics,
    /// Clusters dismissed by consolidation.
    pub removed_clusters: usize,
    /// Dismissed clusters whose models were merged into their coverer
    /// (only under [`crate::ConsolidationMode::MergeIntoCovering`]).
    pub merged_clusters: usize,
    /// Clusters alive after consolidation.
    pub clusters_at_end: usize,
    /// The similarity histogram handed to the valley finder. `None` when
    /// the similarities were degenerate (empty or constant) — the
    /// adjustment step receives nothing in that case.
    pub histogram: Option<HistogramSnapshot>,
    /// The valley `t̂` chosen by the regression-slope analysis (log-space);
    /// `None` when adjustment was frozen/disabled or no valley exists.
    pub valley: Option<f64>,
    /// The threshold the scan used, log-space.
    pub log_t_before: f64,
    /// The threshold after the adjustment step, log-space (equal to
    /// `log_t_before` when nothing moved).
    pub log_t_after: f64,
    /// Whether adjustment moved the threshold.
    pub threshold_moved: bool,
    /// Per-cluster shape after consolidation, in slot order.
    pub clusters: Vec<ClusterSnapshot>,
    /// Wall-clock phase attribution (non-deterministic; see [`PhaseNanos`]).
    pub timings: PhaseNanos,
}

impl IterationRecord {
    /// The lightweight per-iteration view ([`IterationStats`]) this record
    /// extends — what [`crate::Cluseq::run_with_progress`] delivers and
    /// [`crate::CluseqOutcome::history`] stores.
    pub fn stats(&self) -> IterationStats {
        IterationStats {
            iteration: self.iteration,
            new_clusters: self.seeding.chosen,
            removed_clusters: self.removed_clusters,
            clusters_at_end: self.clusters_at_end,
            membership_changes: self.scan.membership_changes,
            log_t: self.log_t_after,
            threshold_moved: self.threshold_moved,
        }
    }
}

/// Event sink for the iteration loop.
///
/// The driver calls [`on_run_start`](RunObserver::on_run_start) once,
/// [`on_iteration`](RunObserver::on_iteration) after every completed
/// iteration, and [`on_run_end`](RunObserver::on_run_end) once after the
/// final assignment sweep. All methods have empty defaults, so an observer
/// implements only what it needs.
pub trait RunObserver {
    /// Whether the driver should assemble full [`IterationRecord`]s. The
    /// record assembly (per-cluster footprints, histogram snapshot) is
    /// skipped entirely when this returns `false`, keeping the disabled
    /// hot path free of telemetry cost. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Called once before the first iteration.
    fn on_run_start(&mut self, _ctx: &RunContext) {}

    /// Called after each completed iteration. Not called when
    /// [`enabled`](RunObserver::enabled) is `false`.
    ///
    /// A resumed run ([`crate::Cluseq::resume_observed`]) replays the
    /// records captured in the checkpoint first, so the observer sees the
    /// full iteration sequence exactly as an uninterrupted run delivers it.
    fn on_iteration(&mut self, _record: &IterationRecord) {}

    /// Called after each checkpoint write attempt (only when a
    /// [`crate::CheckpointPolicy`] is configured).
    fn on_checkpoint(&mut self, _event: &CheckpointEvent) {}

    /// Called once, before any replayed records, when a run is resumed
    /// from a checkpoint.
    fn on_resume(&mut self, _info: &ResumeInfo) {}

    /// Called once after the final assignment sweep.
    fn on_run_end(&mut self, _summary: &RunSummary) {}
}

/// The do-nothing observer behind [`crate::Cluseq::run`]: reports
/// `enabled() == false`, so the driver skips record assembly.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl RunObserver for NoopObserver {
    fn enabled(&self) -> bool {
        false
    }
}

/// A [`RunObserver`] that accumulates the whole run into a structured
/// report: run context, one [`IterationRecord`] per iteration, and the
/// final summary. Serialize with [`to_json`](RunReport::to_json) or render
/// with [`render_table`](RunReport::render_table).
///
/// ```
/// use cluseq_core::telemetry::RunReport;
/// use cluseq_core::{Cluseq, CluseqParams};
/// use cluseq_seq::SequenceDatabase;
///
/// let db = SequenceDatabase::from_strs(
///     std::iter::repeat("abababab").take(12)
///         .chain(std::iter::repeat("cdcdcdcd").take(12)),
/// );
/// let mut report = RunReport::new();
/// let outcome = Cluseq::new(
///     CluseqParams::default().with_significance(2).with_initial_clusters(2),
/// )
/// .run_observed(&db, &mut report);
/// assert_eq!(report.iterations.len(), outcome.iterations);
/// assert!(report.to_json().starts_with('{'));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// The run's context, filled at `on_run_start`.
    pub context: Option<RunContext>,
    /// One record per completed iteration, in order. For a resumed run the
    /// leading records are replayed from the checkpoint, so the list is
    /// complete either way.
    pub iterations: Vec<IterationRecord>,
    /// Checkpoint write attempts, in order (provenance; empty without a
    /// [`crate::CheckpointPolicy`]).
    pub checkpoints: Vec<CheckpointEvent>,
    /// Resume provenance: `Some` when this run was restored from a
    /// checkpoint rather than started fresh.
    pub resumed: Option<ResumeInfo>,
    /// The run's summary, filled at `on_run_end`.
    pub summary: Option<RunSummary>,
}

impl RunReport {
    /// An empty report, ready to be passed to
    /// [`crate::Cluseq::run_observed`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Serializes the full report — timings included — as a JSON object.
    ///
    /// The emitter is hand-rolled over `std` (the workspace's vendored
    /// serde shim has no format machinery); floats are written with
    /// shortest-roundtrip formatting, and non-finite floats (which no
    /// recorded field produces in a valid run) become `null`.
    pub fn to_json(&self) -> String {
        self.write_json(true)
    }

    /// Serializes the report with every wall-clock and provenance field
    /// omitted (timings, thread count, checkpoint events, resume info).
    ///
    /// Two runs that differ only in thread count — or in whether they were
    /// resumed from a checkpoint — produce byte-identical `counters_json`
    /// output for the same scan mode: the telemetry extension of the
    /// [`crate::score`] determinism contract, enforced by
    /// `tests/run_report.rs` and `tests/checkpoint_resume.rs`.
    pub fn counters_json(&self) -> String {
        self.write_json(false)
    }

    fn write_json(&self, with_timings: bool) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        match &self.context {
            Some(c) => {
                w.key("context");
                w.begin_obj();
                w.field_usize("sequences", c.sequences);
                w.field_usize("alphabet_size", c.alphabet_size);
                if with_timings {
                    // The thread count is configuration, not a counter: it
                    // must not make counters_json diverge.
                    w.field_usize("threads", c.threads);
                }
                w.field_str("scan_mode", &c.scan_mode.to_string());
                w.field_u64("seed", c.seed);
                w.field_f64("initial_log_t", c.initial_log_t);
                w.end_obj();
            }
            None => w.field_null("context"),
        }
        w.key("iterations");
        w.begin_arr();
        for r in &self.iterations {
            Self::write_record(&mut w, r, with_timings);
        }
        w.end_arr();
        if with_timings {
            // Checkpoint and resume provenance depend on policy and crash
            // points, not on the clustering — kept out of counters_json so
            // a resumed run's counters match the uninterrupted run's.
            w.key("checkpoints");
            w.begin_arr();
            for e in &self.checkpoints {
                w.begin_obj();
                w.field_usize("completed", e.completed);
                w.field_str("path", &e.path);
                w.field_u64("bytes", e.bytes);
                w.field_u64("write_nanos", e.write_nanos);
                match &e.error {
                    Some(msg) => w.field_str("error", msg),
                    None => w.field_null("error"),
                }
                w.end_obj();
            }
            w.end_arr();
            match &self.resumed {
                Some(r) => {
                    w.key("resumed");
                    w.begin_obj();
                    w.field_usize("completed", r.completed);
                    w.field_u64("version", u64::from(r.version));
                    w.end_obj();
                }
                None => w.field_null("resumed"),
            }
        }
        match &self.summary {
            Some(s) => {
                w.key("summary");
                w.begin_obj();
                w.field_usize("iterations", s.iterations);
                w.field_usize("clusters", s.clusters);
                w.field_usize("outliers", s.outliers);
                w.field_f64("final_log_t", s.final_log_t);
                w.field_u64("pairs_pruned", s.pairs_pruned);
                if with_timings {
                    w.field_u64("finalize_nanos", s.finalize_nanos);
                    w.field_u64("total_nanos", s.total_nanos);
                }
                w.end_obj();
            }
            None => w.field_null("summary"),
        }
        w.end_obj();
        w.finish()
    }

    fn write_record(w: &mut JsonWriter, r: &IterationRecord, with_timings: bool) {
        w.begin_obj();
        w.field_usize("iteration", r.iteration);
        w.field_usize("clusters_at_start", r.clusters_at_start);
        w.key("seeding");
        w.begin_obj();
        w.field_usize("requested", r.seeding.requested);
        w.field_usize("pool", r.seeding.pool);
        w.field_usize("sampled", r.seeding.sampled);
        w.field_usize("chosen", r.seeding.chosen);
        w.end_obj();
        w.key("scan");
        w.begin_obj();
        w.field_u64("pairs_scored", r.scan.pairs_scored);
        w.field_u64("joins", r.scan.joins);
        w.field_u64("new_joins", r.scan.new_joins);
        w.field_usize("membership_changes", r.scan.membership_changes);
        w.field_u64("pairs_pruned", r.scan.pairs_pruned);
        w.field_u64("pairs_reused", r.scan.pairs_reused);
        w.field_u64("clusters_dirty", r.scan.clusters_dirty);
        w.field_u64("pst_recompiles", r.scan.pst_recompiles);
        w.end_obj();
        w.field_usize("removed_clusters", r.removed_clusters);
        w.field_usize("merged_clusters", r.merged_clusters);
        w.field_usize("clusters_at_end", r.clusters_at_end);
        match &r.histogram {
            Some(h) => {
                w.key("histogram");
                w.begin_obj();
                w.field_f64("lo", h.lo);
                w.field_f64("hi", h.hi);
                w.key("counts");
                w.begin_arr();
                for &c in &h.counts {
                    w.arr_u64(c);
                }
                w.end_arr();
                w.end_obj();
            }
            None => w.field_null("histogram"),
        }
        match r.valley {
            Some(v) => w.field_f64("valley", v),
            None => w.field_null("valley"),
        }
        w.field_f64("log_t_before", r.log_t_before);
        w.field_f64("log_t_after", r.log_t_after);
        w.field_bool("threshold_moved", r.threshold_moved);
        w.key("clusters");
        w.begin_arr();
        for c in &r.clusters {
            w.begin_obj();
            w.field_usize("id", c.id);
            w.field_usize("members", c.members);
            w.field_usize("exclusive_members", c.exclusive_members);
            w.field_usize("pst_nodes", c.pst_nodes);
            w.field_usize("pst_bytes", c.pst_bytes);
            w.field_u64("pst_total_count", c.pst_total_count);
            w.end_obj();
        }
        w.end_arr();
        if with_timings {
            w.key("phase_nanos");
            w.begin_obj();
            w.field_u64("seeding", r.timings.seeding);
            w.field_u64("scan_score", r.timings.scan_score);
            w.field_u64("scan_absorb", r.timings.scan_absorb);
            w.field_u64("consolidate", r.timings.consolidate);
            w.field_u64("threshold", r.timings.threshold);
            w.field_u64("total", r.timings.total);
            w.end_obj();
        }
        w.end_obj();
    }

    /// Renders the per-iteration summary table the CLI prints: one row per
    /// iteration with lifecycle counts, scan activity, the threshold
    /// trajectory, aggregate PST size, and phase wall-times.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if let Some(c) = &self.context {
            let _ = writeln!(
                out,
                "run: {} sequences, alphabet {}, scan {}, {} thread(s), seed {}, ln t0 = {:.4}",
                c.sequences, c.alphabet_size, c.scan_mode, c.threads, c.seed, c.initial_log_t
            );
        }
        let _ = writeln!(
            out,
            "{:>4} {:>5} {:>5} {:>5} {:>6} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "iter",
            "born",
            "dism",
            "alive",
            "flips",
            "pairs",
            "valley",
            "ln t",
            "pst_nodes",
            "seed_ms",
            "scan_ms",
            "other_ms"
        );
        for r in &self.iterations {
            let pst_nodes: usize = r.clusters.iter().map(|c| c.pst_nodes).sum();
            let valley = match r.valley {
                Some(v) => format!("{v:.3}"),
                None => "-".into(),
            };
            let ms = |n: u64| n as f64 / 1e6;
            let other =
                ms(r.timings.scan_absorb) + ms(r.timings.consolidate) + ms(r.timings.threshold);
            let _ = writeln!(
                out,
                "{:>4} {:>5} {:>5} {:>5} {:>6} {:>8} {:>8} {:>8.3} {:>9} {:>9.2} {:>9.2} {:>9.2}",
                r.iteration,
                r.seeding.chosen,
                r.removed_clusters,
                r.clusters_at_end,
                r.scan.membership_changes,
                r.scan.pairs_scored,
                valley,
                r.log_t_after,
                pst_nodes,
                ms(r.timings.seeding),
                ms(r.timings.scan_score),
                other,
            );
        }
        if let Some(s) = &self.summary {
            let _ = writeln!(
                out,
                "final: {} clusters, {} outliers, ln t = {:.4}, {} pairs pruned, {:.2} ms total",
                s.clusters,
                s.outliers,
                s.final_log_t,
                s.pairs_pruned,
                s.total_nanos as f64 / 1e6
            );
        }
        out
    }
}

impl RunObserver for RunReport {
    fn on_run_start(&mut self, ctx: &RunContext) {
        self.context = Some(ctx.clone());
    }

    fn on_iteration(&mut self, record: &IterationRecord) {
        self.iterations.push(record.clone());
    }

    fn on_checkpoint(&mut self, event: &CheckpointEvent) {
        self.checkpoints.push(event.clone());
    }

    fn on_resume(&mut self, info: &ResumeInfo) {
        self.resumed = Some(info.clone());
    }

    fn on_run_end(&mut self, summary: &RunSummary) {
        self.summary = Some(summary.clone());
    }
}

/// Minimal JSON emitter: tracks whether a comma is due at each nesting
/// level; values are written through typed helpers so escaping and float
/// formatting live in one place. Shared with [`crate::trace`], whose
/// JSONL events use the same formatting rules.
pub(crate) struct JsonWriter {
    buf: String,
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    pub(crate) fn new() -> Self {
        Self {
            buf: String::new(),
            needs_comma: vec![false],
        }
    }

    pub(crate) fn prep(&mut self) {
        if let Some(due) = self.needs_comma.last_mut() {
            if *due {
                self.buf.push(',');
            }
            *due = true;
        }
    }

    pub(crate) fn begin_obj(&mut self) {
        self.prep();
        self.buf.push('{');
        self.needs_comma.push(false);
    }

    pub(crate) fn end_obj(&mut self) {
        self.needs_comma.pop();
        self.buf.push('}');
    }

    pub(crate) fn begin_arr(&mut self) {
        self.prep();
        self.buf.push('[');
        self.needs_comma.push(false);
    }

    pub(crate) fn end_arr(&mut self) {
        self.needs_comma.pop();
        self.buf.push(']');
    }

    /// Writes `"key":` and suppresses the comma bookkeeping for the value
    /// that follows (the value belongs to this key, not the sequence).
    pub(crate) fn key(&mut self, key: &str) {
        self.prep();
        self.buf.push('"');
        self.buf.push_str(key); // keys are in-tree identifiers, no escaping
        self.buf.push_str("\":");
        if let Some(due) = self.needs_comma.last_mut() {
            *due = false;
        }
    }

    pub(crate) fn raw_value(&mut self, v: &str) {
        self.prep();
        self.buf.push_str(v);
    }

    pub(crate) fn field_usize(&mut self, key: &str, v: usize) {
        self.key(key);
        self.raw_value(&v.to_string());
    }

    pub(crate) fn field_u64(&mut self, key: &str, v: u64) {
        self.key(key);
        self.raw_value(&v.to_string());
    }

    pub(crate) fn field_bool(&mut self, key: &str, v: bool) {
        self.key(key);
        self.raw_value(if v { "true" } else { "false" });
    }

    pub(crate) fn field_f64(&mut self, key: &str, v: f64) {
        self.key(key);
        self.push_f64(v);
    }

    pub(crate) fn field_null(&mut self, key: &str) {
        self.key(key);
        self.raw_value("null");
    }

    pub(crate) fn field_str(&mut self, key: &str, v: &str) {
        self.key(key);
        self.prep();
        self.buf.push('"');
        for ch in v.chars() {
            match ch {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    pub(crate) fn arr_u64(&mut self, v: u64) {
        self.raw_value(&v.to_string());
    }

    pub(crate) fn push_f64(&mut self, v: f64) {
        if v.is_finite() {
            // `{:?}` is Rust's shortest round-trip float formatting; it
            // always contains a '.' or an 'e', so the output is a valid
            // JSON number that parses back to the same bits.
            self.raw_value(&format!("{v:?}"));
        } else {
            self.raw_value("null");
        }
    }

    pub(crate) fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(iteration: usize) -> IterationRecord {
        IterationRecord {
            iteration,
            clusters_at_start: 2,
            seeding: SeedingMetrics {
                requested: 2,
                pool: 10,
                sampled: 8,
                chosen: 2,
            },
            scan: ScanMetrics {
                pairs_scored: 40,
                joins: 12,
                new_joins: 3,
                membership_changes: 5,
                pairs_pruned: 0,
                pairs_reused: 0,
                clusters_dirty: 0,
                pst_recompiles: 0,
            },
            removed_clusters: 1,
            merged_clusters: 0,
            clusters_at_end: 3,
            histogram: Some(HistogramSnapshot {
                lo: -1.5,
                hi: 4.25,
                counts: vec![3, 0, 9],
            }),
            valley: Some(0.75),
            log_t_before: 0.0005,
            log_t_after: 0.375,
            threshold_moved: true,
            clusters: vec![ClusterSnapshot {
                id: 0,
                members: 7,
                exclusive_members: 7,
                pst_nodes: 41,
                pst_bytes: 2048,
                pst_total_count: 640,
            }],
            timings: PhaseNanos {
                seeding: 11,
                scan_score: 22,
                scan_absorb: 33,
                consolidate: 44,
                threshold: 55,
                total: 200,
            },
        }
    }

    fn sample_report() -> RunReport {
        RunReport {
            context: Some(RunContext {
                sequences: 20,
                alphabet_size: 4,
                threads: 2,
                scan_mode: ScanMode::Snapshot,
                seed: 7,
                initial_log_t: 0.0005,
            }),
            iterations: vec![sample_record(0), sample_record(1)],
            checkpoints: Vec::new(),
            resumed: None,
            summary: Some(RunSummary {
                iterations: 2,
                clusters: 3,
                outliers: 1,
                final_log_t: 0.375,
                finalize_nanos: 99,
                total_nanos: 500,
                pairs_pruned: 4,
            }),
        }
    }

    #[test]
    fn json_has_expected_fields() {
        let json = sample_report().to_json();
        for key in [
            "\"context\"",
            "\"iterations\"",
            "\"summary\"",
            "\"pairs_scored\":40",
            "\"pairs_pruned\":4",
            "\"valley\":0.75",
            "\"histogram\"",
            "\"counts\":[3,0,9]",
            "\"phase_nanos\"",
            "\"scan_mode\":\"snapshot\"",
            "\"exclusive_members\":7",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn counters_json_omits_all_wall_clock_fields() {
        let json = sample_report().counters_json();
        for absent in ["nanos", "threads"] {
            assert!(!json.contains(absent), "{absent} leaked into {json}");
        }
        // The counters are still there.
        assert!(json.contains("\"pairs_scored\":40"));
        assert!(json.contains("\"final_log_t\":0.375"));
    }

    #[test]
    fn json_nesting_is_balanced() {
        let json = sample_report().to_json();
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{json}");
        assert!(!json.contains(",,"));
        assert!(!json.contains(",}"));
        assert!(!json.contains(",]"));
        assert!(!json.contains("{,"));
        assert!(!json.contains("[,"));
    }

    #[test]
    fn empty_report_serializes_with_nulls() {
        let json = RunReport::new().to_json();
        assert_eq!(
            json,
            "{\"context\":null,\"iterations\":[],\"checkpoints\":[],\"resumed\":null,\
             \"summary\":null}"
        );
        assert_eq!(
            RunReport::new().counters_json(),
            "{\"context\":null,\"iterations\":[],\"summary\":null}"
        );
    }

    #[test]
    fn checkpoint_and_resume_provenance_stay_out_of_counters() {
        let mut report = sample_report();
        report.checkpoints.push(CheckpointEvent {
            completed: 1,
            path: "ckpt/cluseq-000001.ckpt".into(),
            bytes: 4096,
            write_nanos: 777,
            error: None,
        });
        report.checkpoints.push(CheckpointEvent {
            completed: 2,
            path: "ckpt/cluseq-000002.ckpt".into(),
            bytes: 0,
            write_nanos: 5,
            error: Some("disk full".into()),
        });
        report.resumed = Some(ResumeInfo {
            completed: 1,
            version: 1,
        });
        let full = report.to_json();
        assert!(full.contains("\"checkpoints\""), "{full}");
        assert!(full.contains("\"error\":\"disk full\""), "{full}");
        assert!(full.contains("\"resumed\":{\"completed\":1"), "{full}");
        let counters = report.counters_json();
        for absent in ["checkpoints", "resumed", "ckpt/"] {
            assert!(!counters.contains(absent), "{absent} leaked: {counters}");
        }
        // Provenance must never perturb the counters themselves.
        let mut plain = sample_report();
        plain.checkpoints.clear();
        plain.resumed = None;
        assert_eq!(plain.counters_json(), report.counters_json());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut report = sample_report();
        report.iterations[0].valley = Some(f64::NAN);
        assert!(report.to_json().contains("\"valley\":null"));
    }

    #[test]
    fn record_stats_projects_the_legacy_view() {
        let r = sample_record(3);
        let s = r.stats();
        assert_eq!(s.iteration, 3);
        assert_eq!(s.new_clusters, 2);
        assert_eq!(s.removed_clusters, 1);
        assert_eq!(s.clusters_at_end, 3);
        assert_eq!(s.membership_changes, 5);
        assert_eq!(s.log_t, 0.375);
        assert!(s.threshold_moved);
    }

    #[test]
    fn table_renders_one_row_per_iteration() {
        let table = sample_report().render_table();
        let lines: Vec<&str> = table.lines().collect();
        // run line + header + 2 iterations + final line.
        assert_eq!(lines.len(), 5, "{table}");
        assert!(lines[0].starts_with("run:"));
        assert!(lines[4].starts_with("final:"));
    }

    #[test]
    fn noop_observer_is_disabled() {
        assert!(!NoopObserver.enabled());
        assert!(RunReport::new().enabled());
    }
}
