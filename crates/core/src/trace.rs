//! Live tracing & metrics for the iteration loop.
//!
//! [`crate::telemetry`] reports what a run did *after* it ends; this module
//! is the live counterpart: hierarchical phase spans timed with monotonic
//! clocks, a lock-free sharded metrics registry (counters, gauges,
//! fixed-bucket latency histograms), an append-only crash-safe JSONL event
//! stream ([`sink`]), and a Prometheus text-format exporter ([`exporter`])
//! served by a `std::net::TcpListener` thread — no dependencies beyond
//! `std`.
//!
//! # Zero cost when disabled
//!
//! Tracing is session-scoped, never global: every instrumented call site
//! takes an `Option<&TraceSession>` and the untraced path is a `None`
//! check — no atomics, no clock reads, no allocation. There is no process
//! singleton, so concurrent runs (as in `cargo test`) cannot observe each
//! other's sessions.
//!
//! # Determinism contract
//!
//! Tracing must never perturb the clustering. Counters are recorded at the
//! sites that already compute them (the re-clustering scan state and
//! the scoring workers) and merged into the registry either per worker
//! shard (u64 sums are order-independent) or at the phase barrier at the
//! end of each scan, so registry totals are **bit-identical across thread
//! counts** and equal to the [`crate::telemetry::RunReport`] counters —
//! `tests/trace_stream.rs` enforces both equalities, plus byte-identity of
//! the clustering output with tracing on vs off.
//!
//! # Span hierarchy
//!
//! ```text
//! iteration
//! ├── seeding
//! │   └── seeding_score
//! ├── scan_score
//! ├── scan_absorb
//! ├── consolidate
//! ├── threshold
//! └── checkpoint_save
//! resume            (once, replaying a checkpoint's records)
//! finalize          (once, the final assignment sweep)
//! ```
//!
//! Span self time is total time minus the time of directly nested spans,
//! tracked with a per-thread stack; all spans open on the driver thread,
//! so the stack never crosses threads.

pub mod exporter;
pub mod json;
pub mod sink;
pub mod stamp;
pub mod summary;

use std::cell::RefCell;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::config::ScanKernel;
use crate::telemetry::{JsonWriter, PhaseNanos, ResumeInfo, RunContext, RunSummary};

/// Shards in the per-thread counter registry. Scoring workers map their
/// contiguous index chunk to a shard, so concurrent workers never touch
/// the same cache line; reads sum all shards.
pub const SHARDS: usize = 32;

/// Buckets per latency histogram. Bucket 0 holds observations under 1 µs;
/// bucket `b` holds `[2^(b-1), 2^b)` µs; the last bucket is the overflow
/// (`+Inf`) bucket, so the covered range tops out around 4.2 s.
pub const HIST_BUCKETS: usize = 24;

/// A [`Duration`] as nanoseconds, saturating at `u64::MAX` instead of
/// wrapping — the one conversion every wall-time field in this crate uses
/// so a pathological clock can never produce a nonsense negative-looking
/// value.
pub fn saturating_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Nanoseconds elapsed since `start`, saturating (see
/// [`saturating_nanos`]). [`Instant`] is monotonic, so the delta itself is
/// never negative; this helper only guards the `u128 → u64` narrowing.
pub fn nanos_since(start: Instant) -> u64 {
    saturating_nanos(start.elapsed())
}

/// The registry shard a scoring worker writes for row index `pos`, given
/// the worker chunk size ([`crate::score::plan_chunk`]). Workers own
/// disjoint contiguous index ranges, so distinct workers map to distinct
/// shards (folded down when there are more than [`SHARDS`] workers).
pub fn shard_for(pos: usize, chunk: usize) -> usize {
    pos.checked_div(chunk).map_or(0, |w| w.min(SHARDS - 1))
}

/// One phase of the iteration loop, the unit of span aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// One whole loop iteration (parent of the per-phase spans).
    Iteration,
    /// Seed sampling, candidate models, farthest-first selection (§4.1).
    Seeding,
    /// The scoring passes inside seeding (nested under [`Phase::Seeding`]).
    SeedingScore,
    /// The scan's similarity evaluations (§4.2).
    ScanScore,
    /// The snapshot scan's sequential absorb pass.
    ScanAbsorb,
    /// Consolidation (§4.5).
    Consolidate,
    /// Histogram build and valley analysis (§4.6).
    Threshold,
    /// One checkpoint write attempt.
    CheckpointSave,
    /// Replaying a checkpoint's stored records on resume.
    Resume,
    /// The final assignment sweep.
    Finalize,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 10] = [
        Phase::Iteration,
        Phase::Seeding,
        Phase::SeedingScore,
        Phase::ScanScore,
        Phase::ScanAbsorb,
        Phase::Consolidate,
        Phase::Threshold,
        Phase::CheckpointSave,
        Phase::Resume,
        Phase::Finalize,
    ];

    /// The phase's stable snake_case name (JSONL and exporter label).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Iteration => "iteration",
            Phase::Seeding => "seeding",
            Phase::SeedingScore => "seeding_score",
            Phase::ScanScore => "scan_score",
            Phase::ScanAbsorb => "scan_absorb",
            Phase::Consolidate => "consolidate",
            Phase::Threshold => "threshold",
            Phase::CheckpointSave => "checkpoint_save",
            Phase::Resume => "resume",
            Phase::Finalize => "finalize",
        }
    }

    fn index(self) -> usize {
        Phase::ALL.iter().position(|p| *p == self).expect("in ALL")
    }
}

/// A monotonically increasing counter in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// (sequence, cluster) pairs whose similarity was evaluated.
    PairsScored,
    /// Pairs the compiled kernel abandoned early (threshold early-exit).
    PairsPruned,
    /// Pairs whose similarity reached the threshold.
    Joins,
    /// Joins by sequences not already members of that cluster.
    NewJoins,
    /// Membership flips across all scans.
    MembershipChanges,
    /// Seed candidates sampled by §4.1.
    SeedCandidatesSampled,
    /// Seeds chosen — clusters born.
    SeedsChosen,
    /// Clusters dismissed by consolidation.
    ClustersDismissed,
    /// Dismissed clusters merged into their coverer.
    ClustersMerged,
    /// Threshold-adjustment steps that moved the threshold.
    ThresholdMoves,
    /// Checkpoint write attempts.
    CheckpointWrites,
    /// Checkpoint write attempts that failed.
    CheckpointFailures,
    /// Bytes of checkpoint data successfully written.
    CheckpointBytes,
    /// Requests answered by the serve daemon (scored, not errored).
    ServeRequests,
    /// Error frames/responses the serve daemon produced.
    ServeErrors,
    /// Scoring batches the serve dispatcher executed.
    ServeBatches,
    /// Successful hot-swaps to a new model generation.
    ServeSwaps,
    /// Pairs answered from the incremental similarity cache instead of
    /// being re-scored (0 unless `--incremental`).
    PairsReused,
    /// Clusters scored fresh in a scan because their model changed — or
    /// was never cached (0 unless `--incremental`).
    ClustersDirty,
    /// `CompiledPst` automata compiled for dirty clusters under the
    /// incremental engine (0 unless `--incremental`).
    PstRecompiles,
    /// ASSIGN requests the serve daemon completed (either transport).
    ServeAssign,
    /// SCORE requests the serve daemon completed.
    ServeScore,
    /// ANOMALY requests the serve daemon completed.
    ServeAnomaly,
    /// INFO requests the serve daemon completed.
    ServeInfo,
    /// SWAP requests the serve daemon completed (attempts, not successes —
    /// [`Counter::ServeSwaps`] counts installed generations).
    ServeSwapRequests,
    /// SHUTDOWN requests the serve daemon completed.
    ServeShutdown,
    /// Requests whose end-to-end latency crossed the slow-request
    /// threshold (logged to `--slow-log` when one is configured).
    ServeSlow,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 27] = [
        Counter::PairsScored,
        Counter::PairsPruned,
        Counter::Joins,
        Counter::NewJoins,
        Counter::MembershipChanges,
        Counter::SeedCandidatesSampled,
        Counter::SeedsChosen,
        Counter::ClustersDismissed,
        Counter::ClustersMerged,
        Counter::ThresholdMoves,
        Counter::CheckpointWrites,
        Counter::CheckpointFailures,
        Counter::CheckpointBytes,
        Counter::ServeRequests,
        Counter::ServeErrors,
        Counter::ServeBatches,
        Counter::ServeSwaps,
        Counter::PairsReused,
        Counter::ClustersDirty,
        Counter::PstRecompiles,
        Counter::ServeAssign,
        Counter::ServeScore,
        Counter::ServeAnomaly,
        Counter::ServeInfo,
        Counter::ServeSwapRequests,
        Counter::ServeShutdown,
        Counter::ServeSlow,
    ];

    /// The counter's stable snake_case name (JSONL and exporter base name).
    pub fn as_str(self) -> &'static str {
        match self {
            Counter::PairsScored => "pairs_scored",
            Counter::PairsPruned => "pairs_pruned",
            Counter::Joins => "joins",
            Counter::NewJoins => "new_joins",
            Counter::MembershipChanges => "membership_changes",
            Counter::SeedCandidatesSampled => "seed_candidates_sampled",
            Counter::SeedsChosen => "seeds_chosen",
            Counter::ClustersDismissed => "clusters_dismissed",
            Counter::ClustersMerged => "clusters_merged",
            Counter::ThresholdMoves => "threshold_moves",
            Counter::CheckpointWrites => "checkpoint_writes",
            Counter::CheckpointFailures => "checkpoint_failures",
            Counter::CheckpointBytes => "checkpoint_bytes",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeErrors => "serve_errors",
            Counter::ServeBatches => "serve_batches",
            Counter::ServeSwaps => "serve_swaps",
            Counter::PairsReused => "pairs_reused",
            Counter::ClustersDirty => "clusters_dirty",
            Counter::PstRecompiles => "pst_recompiles",
            Counter::ServeAssign => "serve_assign_requests",
            Counter::ServeScore => "serve_score_requests",
            Counter::ServeAnomaly => "serve_anomaly_requests",
            Counter::ServeInfo => "serve_info_requests",
            Counter::ServeSwapRequests => "serve_swap_requests",
            Counter::ServeShutdown => "serve_shutdown_requests",
            Counter::ServeSlow => "serve_slow_requests",
        }
    }

    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| *c == self)
            .expect("in ALL")
    }
}

/// A last-value gauge in the registry, set at iteration boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Completed iterations.
    Iteration,
    /// Clusters alive after the latest consolidation.
    ClustersLive,
    /// The similarity threshold, log-space (stored as `f64` bits).
    ThresholdLogT,
    /// The serve daemon's live model generation (0 when not serving).
    ServeGeneration,
    /// Jobs sitting in the serve dispatcher's queue right now.
    ServeQueueDepth,
    /// Requests accepted by the serve daemon and not yet answered
    /// (queued plus mid-batch; maintained with [`TraceShared::gauge_add`]).
    ServeInFlight,
}

impl Gauge {
    /// Every gauge, in display order.
    pub const ALL: [Gauge; 6] = [
        Gauge::Iteration,
        Gauge::ClustersLive,
        Gauge::ThresholdLogT,
        Gauge::ServeGeneration,
        Gauge::ServeQueueDepth,
        Gauge::ServeInFlight,
    ];

    fn index(self) -> usize {
        Gauge::ALL.iter().position(|g| *g == self).expect("in ALL")
    }
}

/// A fixed-bucket latency histogram in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Per-row scoring latency, recorded by each worker in its own shard.
    ScoreRow,
    /// Whole-iteration wall time.
    IterationWall,
    /// Checkpoint write wall time.
    CheckpointWrite,
    /// Serve-daemon request latency, enqueue to scored response.
    ServeRequest,
    /// End-to-end ASSIGN latency, first byte to write-back complete.
    ServeAssign,
    /// End-to-end SCORE latency.
    ServeScore,
    /// End-to-end ANOMALY latency.
    ServeAnomaly,
    /// End-to-end latency of the admin opcodes (INFO, SWAP, SHUTDOWN).
    ServeAdmin,
    /// Stage: reading the rest of the frame (or HTTP request) off the
    /// socket after its first byte.
    ServeAccept,
    /// Stage: decoding and validating the request payload.
    ServeDecode,
    /// Stage: enqueue until the dispatcher drained the job into a batch.
    ServeQueueWait,
    /// Stage: batch drain until batch scoring began (model pinning).
    ServeBatchForm,
    /// Stage: the batched scoring pass itself.
    ServeScan,
    /// Stage: encoding the response frame or JSON body.
    ServeEncode,
    /// Stage: writing the encoded response back to the socket.
    ServeWriteBack,
    /// Jobs per dispatched batch. Unit is **jobs**, not time: a batch of
    /// `n` jobs is recorded as `n` µs, so bucket `b` covers
    /// `[2^(b-1), 2^b)` jobs and the exporter divides edges and sums by
    /// 1000 to render job counts.
    ServeBatchJobs,
}

impl HistKind {
    /// Every histogram, in display order.
    pub const ALL: [HistKind; 16] = [
        HistKind::ScoreRow,
        HistKind::IterationWall,
        HistKind::CheckpointWrite,
        HistKind::ServeRequest,
        HistKind::ServeAssign,
        HistKind::ServeScore,
        HistKind::ServeAnomaly,
        HistKind::ServeAdmin,
        HistKind::ServeAccept,
        HistKind::ServeDecode,
        HistKind::ServeQueueWait,
        HistKind::ServeBatchForm,
        HistKind::ServeScan,
        HistKind::ServeEncode,
        HistKind::ServeWriteBack,
        HistKind::ServeBatchJobs,
    ];

    /// The histogram's stable snake_case name.
    pub fn as_str(self) -> &'static str {
        match self {
            HistKind::ScoreRow => "score_row",
            HistKind::IterationWall => "iteration_wall",
            HistKind::CheckpointWrite => "checkpoint_write",
            HistKind::ServeRequest => "serve_request",
            HistKind::ServeAssign => "serve_assign",
            HistKind::ServeScore => "serve_score",
            HistKind::ServeAnomaly => "serve_anomaly",
            HistKind::ServeAdmin => "serve_admin",
            HistKind::ServeAccept => "serve_stage_accept",
            HistKind::ServeDecode => "serve_stage_decode",
            HistKind::ServeQueueWait => "serve_stage_queue_wait",
            HistKind::ServeBatchForm => "serve_stage_batch_form",
            HistKind::ServeScan => "serve_stage_scan",
            HistKind::ServeEncode => "serve_stage_encode",
            HistKind::ServeWriteBack => "serve_stage_write_back",
            HistKind::ServeBatchJobs => "serve_batch_jobs",
        }
    }

    pub(crate) fn index(self) -> usize {
        HistKind::ALL
            .iter()
            .position(|h| *h == self)
            .expect("in ALL")
    }
}

/// The histogram bucket for an observation of `nanos` (see
/// [`HIST_BUCKETS`] for the edge layout).
pub fn bucket_index(nanos: u64) -> usize {
    let micros = nanos / 1_000;
    if micros == 0 {
        0
    } else {
        ((64 - micros.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// The exclusive upper edge of histogram bucket `b`, in nanoseconds
/// (`None` for the overflow bucket).
pub fn bucket_upper_nanos(b: usize) -> Option<u64> {
    (b < HIST_BUCKETS - 1).then(|| 1_000u64 << b)
}

/// The inclusive lower edge of histogram bucket `b`, in nanoseconds.
pub fn bucket_lower_nanos(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1_000u64 << (b - 1)
    }
}

/// The `q`-quantile (`0.0 < q <= 1.0`) of a histogram snapshot, estimated
/// by linear interpolation inside the bucket holding the exact rank.
/// Returns `None` for an empty histogram.
///
/// The computation is a pure function of the bucket counts — no sampling,
/// no clocks — so any two readers of the same snapshot get the same value
/// regardless of thread count or platform. The rank is exact
/// (`ceil(q * count)`, 1-based); only the position *within* the bucket is
/// interpolated, so the **documented error bound** is one bucket width:
/// the true observation lies in the same `[2^(b-1), 2^b)` µs bucket as
/// the estimate, i.e. the estimate is within 2× of the true value (and
/// within 1 µs below bucket 1). Observations in the overflow bucket
/// report its lower edge, a conservative underestimate.
pub fn quantile_nanos(counts: &[u64; HIST_BUCKETS], q: f64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (b, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let before = cumulative;
        cumulative += count;
        if cumulative >= rank {
            let lower = bucket_lower_nanos(b);
            return Some(match bucket_upper_nanos(b) {
                Some(upper) => {
                    // rank - before in 1..=count; place the k-th of
                    // `count` observations evenly inside the bucket.
                    let into = (rank - before) as f64 / count as f64;
                    lower + ((upper - lower) as f64 * into) as u64
                }
                None => lower,
            });
        }
    }
    None
}

/// One shard of the registry: a cache-line-padded-enough block of relaxed
/// atomics one worker writes. Relaxed ordering suffices — the values are
/// pure sums read after thread joins (or approximately by the exporter).
struct Shard {
    counters: [AtomicU64; Counter::ALL.len()],
    hist_counts: [[AtomicU64; HIST_BUCKETS]; HistKind::ALL.len()],
    hist_sums: [AtomicU64; HistKind::ALL.len()],
}

impl Shard {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_counts: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            hist_sums: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Aggregated timing of one phase across all of its spans.
struct PhaseAgg {
    total_nanos: AtomicU64,
    self_nanos: AtomicU64,
    count: AtomicU64,
    max_nanos: AtomicU64,
}

impl PhaseAgg {
    fn new() -> Self {
        Self {
            total_nanos: AtomicU64::new(0),
            self_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

/// A read-side snapshot of one phase's span aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Summed wall time of every span of this phase, nanoseconds.
    pub total_nanos: u64,
    /// Total minus time spent in directly nested spans.
    pub self_nanos: u64,
    /// Number of spans recorded.
    pub count: u64,
    /// The longest single span, nanoseconds.
    pub max_nanos: u64,
}

/// The lock-free shared state behind a [`TraceSession`]: sharded counters
/// and histograms, span aggregates, and gauges. `Sync` by construction
/// (atomics only), so the exporter thread reads it live through an `Arc`.
pub struct TraceShared {
    shards: Vec<Shard>,
    phases: Vec<PhaseAgg>,
    gauges: Vec<AtomicU64>,
}

impl std::fmt::Debug for TraceShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceShared").finish_non_exhaustive()
    }
}

impl TraceShared {
    fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            phases: Phase::ALL.iter().map(|_| PhaseAgg::new()).collect(),
            gauges: Gauge::ALL.iter().map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Adds `v` to `counter` in shard `shard` (folded into range).
    pub fn add_at(&self, shard: usize, counter: Counter, v: u64) {
        self.shards[shard.min(SHARDS - 1)].counters[counter.index()]
            .fetch_add(v, Ordering::Relaxed);
    }

    /// Adds `v` to `counter` in shard 0 (single-writer call sites).
    pub fn add(&self, counter: Counter, v: u64) {
        self.add_at(0, counter, v);
    }

    /// The counter's total across all shards.
    pub fn counter(&self, counter: Counter) -> u64 {
        let i = counter.index();
        self.shards
            .iter()
            .map(|s| s.counters[i].load(Ordering::Relaxed))
            .sum()
    }

    /// Records one latency observation into `hist` in shard `shard`.
    pub fn observe(&self, hist: HistKind, shard: usize, nanos: u64) {
        let s = &self.shards[shard.min(SHARDS - 1)];
        let h = hist.index();
        s.hist_counts[h][bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        s.hist_sums[h].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Merges a locally buffered histogram delta in one pass: per-bucket
    /// counts plus their summed observation values. Equivalent to the
    /// individual [`Self::observe`] calls that filled the buffer, at a
    /// fraction of the atomic traffic — only non-empty buckets touch the
    /// registry.
    pub fn hist_merge(
        &self,
        hist: HistKind,
        shard: usize,
        counts: &[u32; HIST_BUCKETS],
        sum: u64,
    ) {
        let s = &self.shards[shard.min(SHARDS - 1)];
        let h = hist.index();
        for (b, &c) in counts.iter().enumerate() {
            if c != 0 {
                s.hist_counts[h][b].fetch_add(u64::from(c), Ordering::Relaxed);
            }
        }
        if sum != 0 {
            s.hist_sums[h].fetch_add(sum, Ordering::Relaxed);
        }
    }

    /// The histogram's per-bucket counts summed across shards.
    pub fn hist_counts(&self, hist: HistKind) -> [u64; HIST_BUCKETS] {
        let h = hist.index();
        let mut out = [0u64; HIST_BUCKETS];
        for s in &self.shards {
            for (b, cell) in s.hist_counts[h].iter().enumerate() {
                out[b] += cell.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// The histogram's summed observation value across shards, nanoseconds.
    pub fn hist_sum(&self, hist: HistKind) -> u64 {
        let h = hist.index();
        self.shards
            .iter()
            .map(|s| s.hist_sums[h].load(Ordering::Relaxed))
            .sum()
    }

    /// Sets a `u64` gauge.
    pub fn gauge_set(&self, gauge: Gauge, v: u64) {
        self.gauges[gauge.index()].store(v, Ordering::Relaxed);
    }

    /// Sets an `f64` gauge (stored as bits).
    pub fn gauge_set_f64(&self, gauge: Gauge, v: f64) {
        self.gauges[gauge.index()].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds a signed delta to a `u64` gauge (two's-complement wrapping,
    /// so balanced `+1`/`-1` pairs from different threads always return
    /// the gauge to its starting value). The up/down counterpart of
    /// [`TraceShared::gauge_set`] for live occupancy gauges.
    pub fn gauge_add(&self, gauge: Gauge, delta: i64) {
        self.gauges[gauge.index()].fetch_add(delta as u64, Ordering::Relaxed);
    }

    /// Reads a `u64` gauge.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge.index()].load(Ordering::Relaxed)
    }

    /// Reads an `f64` gauge (from bits).
    pub fn gauge_f64(&self, gauge: Gauge) -> f64 {
        f64::from_bits(self.gauge(gauge))
    }

    /// A snapshot of one phase's span aggregate.
    pub fn phase_stats(&self, phase: Phase) -> PhaseStats {
        let a = &self.phases[phase.index()];
        PhaseStats {
            total_nanos: a.total_nanos.load(Ordering::Relaxed),
            self_nanos: a.self_nanos.load(Ordering::Relaxed),
            count: a.count.load(Ordering::Relaxed),
            max_nanos: a.max_nanos.load(Ordering::Relaxed),
        }
    }

    fn record_span(&self, phase: Phase, total: u64, self_nanos: u64) {
        let a = &self.phases[phase.index()];
        a.total_nanos.fetch_add(total, Ordering::Relaxed);
        a.self_nanos.fetch_add(self_nanos, Ordering::Relaxed);
        a.count.fetch_add(1, Ordering::Relaxed);
        a.max_nanos.fetch_max(total, Ordering::Relaxed);
    }
}

thread_local! {
    /// Child-time accumulator stack for span self-time: each open span
    /// pushes a frame; closing adds its elapsed time to the parent frame.
    static CHILD_NANOS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An open span; closing (dropping) it records elapsed/self time into the
/// session's per-phase aggregates. Created via [`TraceSession::span`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    shared: &'a TraceShared,
    phase: Phase,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let total = nanos_since(self.start);
        let children = CHILD_NANOS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let children = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent = parent.saturating_add(total);
            }
            children
        });
        self.shared
            .record_span(self.phase, total, total.saturating_sub(children));
    }
}

/// Configuration for [`TraceSession::start`]. Deliberately *not* part of
/// [`crate::CluseqParams`]: tracing is operational, not algorithmic, so it
/// never enters a checkpoint and a resume never restores it.
#[derive(Debug, Clone, Default)]
pub struct TraceConfig {
    /// Append the JSONL event stream to this file (created if absent; an
    /// existing file gets its torn tail repaired and the stream continues
    /// its sequence numbers — the `--resume` stitching contract).
    pub jsonl: Option<PathBuf>,
    /// Serve Prometheus text-format metrics on this address (e.g.
    /// `127.0.0.1:0` for an ephemeral port; see
    /// [`TraceSession::metrics_addr`] for the bound address).
    pub metrics_addr: Option<String>,
}

/// One run's tracing context: the shared registry plus the optional JSONL
/// sink and exporter. Passed as `Option<&TraceSession>` through the
/// driver; `None` everywhere is the zero-cost disabled path.
#[derive(Debug)]
pub struct TraceSession {
    shared: Arc<TraceShared>,
    sink: Option<Mutex<sink::JsonlSink>>,
    exporter: Option<exporter::ExporterHandle>,
}

/// The per-iteration facts the JSONL `iteration` event carries. All
/// counter fields are deterministic; only `phases` is wall-clock.
#[derive(Debug, Clone, Copy)]
pub struct IterationEvent {
    /// 0-based iteration number.
    pub iteration: usize,
    /// Clusters alive when the iteration began.
    pub clusters_at_start: usize,
    /// Clusters born this iteration.
    pub new_clusters: usize,
    /// Clusters dismissed by consolidation.
    pub removed_clusters: usize,
    /// Clusters alive after consolidation.
    pub clusters_live: usize,
    /// Membership flips in the scan.
    pub membership_changes: usize,
    /// Pairs scored in the scan.
    pub pairs_scored: u64,
    /// Pairs pruned by the compiled kernel's early exit.
    pub pairs_pruned: u64,
    /// Pairs answered from the incremental cache (0 unless incremental).
    pub pairs_reused: u64,
    /// Pairs that reached the threshold.
    pub joins: u64,
    /// Joins by non-members.
    pub new_joins: u64,
    /// The threshold after adjustment, log-space.
    pub log_t: f64,
    /// Whether adjustment moved the threshold.
    pub threshold_moved: bool,
    /// Wall-clock phase attribution.
    pub phases: PhaseNanos,
}

impl TraceSession {
    /// A registry-only session: spans and metrics, no JSONL file, no
    /// exporter. What the overhead bench and most tests use.
    pub fn in_memory() -> Self {
        Self {
            shared: Arc::new(TraceShared::new()),
            sink: None,
            exporter: None,
        }
    }

    /// Starts a session per `config`: opens (or continues) the JSONL sink
    /// and binds the exporter listener. Fails only on I/O errors from
    /// either; an empty config is equivalent to [`TraceSession::in_memory`].
    pub fn start(config: &TraceConfig) -> io::Result<Self> {
        let shared = Arc::new(TraceShared::new());
        let sink = match &config.jsonl {
            Some(path) => Some(Mutex::new(sink::JsonlSink::open_append(path)?)),
            None => None,
        };
        let exporter = match &config.metrics_addr {
            Some(addr) => Some(exporter::start(Arc::clone(&shared), addr)?),
            None => None,
        };
        Ok(Self {
            shared,
            sink,
            exporter,
        })
    }

    /// The shared registry (what the exporter serves).
    pub fn shared(&self) -> &TraceShared {
        &self.shared
    }

    /// An owning handle to the shared registry, for subsystems that
    /// outlive this session's borrow (the serve daemon's threads).
    pub fn shared_arc(&self) -> Arc<TraceShared> {
        Arc::clone(&self.shared)
    }

    /// The exporter's bound address, when one is running — with
    /// `--metrics-addr 127.0.0.1:0` this is where the ephemeral port
    /// landed.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.exporter.as_ref().map(|e| e.addr())
    }

    /// Opens a span for `phase`; drop the guard to close it.
    pub fn span(&self, phase: Phase) -> SpanGuard<'_> {
        CHILD_NANOS.with(|stack| stack.borrow_mut().push(0));
        SpanGuard {
            shared: &self.shared,
            phase,
            start: Instant::now(),
        }
    }

    /// See [`TraceShared::add`].
    pub fn add(&self, counter: Counter, v: u64) {
        self.shared.add(counter, v);
    }

    /// See [`TraceShared::add_at`].
    pub fn add_at(&self, shard: usize, counter: Counter, v: u64) {
        self.shared.add_at(shard, counter, v);
    }

    /// See [`TraceShared::counter`].
    pub fn counter(&self, counter: Counter) -> u64 {
        self.shared.counter(counter)
    }

    /// See [`TraceShared::observe`].
    pub fn observe(&self, hist: HistKind, shard: usize, nanos: u64) {
        self.shared.observe(hist, shard, nanos);
    }

    /// See [`TraceShared::gauge_set`].
    pub fn gauge_set(&self, gauge: Gauge, v: u64) {
        self.shared.gauge_set(gauge, v);
    }

    /// See [`TraceShared::gauge_set_f64`].
    pub fn gauge_set_f64(&self, gauge: Gauge, v: f64) {
        self.shared.gauge_set_f64(gauge, v);
    }

    /// See [`TraceShared::phase_stats`].
    pub fn phase_stats(&self, phase: Phase) -> PhaseStats {
        self.shared.phase_stats(phase)
    }

    /// Fsyncs the JSONL sink (no-op without one). Event writes are
    /// best-effort — an I/O error never aborts the run — so `sync` is
    /// where durability is actually established: the driver calls it on
    /// every iteration boundary *before* the checkpoint write, which is
    /// what guarantees the trace always covers at least as many iterations
    /// as any checkpoint on disk.
    pub fn sync(&self) {
        if let Some(sink) = &self.sink {
            if let Ok(mut sink) = sink.lock() {
                let _ = sink.sync();
            }
        }
    }

    fn emit(&self, build: impl FnOnce(&mut JsonWriter)) {
        let Some(sink) = &self.sink else { return };
        let mut w = JsonWriter::new();
        w.begin_obj();
        build(&mut w);
        w.end_obj();
        let body = w.finish();
        if let Ok(mut sink) = sink.lock() {
            let _ = sink.write_event(&body);
        }
    }

    /// Emits the `run_start` event.
    pub fn event_run_start(&self, ctx: &RunContext, kernel: ScanKernel) {
        self.emit(|w| {
            w.field_str("event", "run_start");
            w.field_usize("sequences", ctx.sequences);
            w.field_usize("alphabet_size", ctx.alphabet_size);
            w.field_usize("threads", ctx.threads);
            w.field_str("scan_mode", &ctx.scan_mode.to_string());
            w.field_str("scan_kernel", &kernel.to_string());
            w.field_u64("seed", ctx.seed);
            w.field_f64("initial_log_t", ctx.initial_log_t);
        });
    }

    /// Emits the `resume` event (directly after `run_start` in a resumed
    /// run — the marker the replay reader stitches on).
    pub fn event_resume(&self, info: &ResumeInfo) {
        self.emit(|w| {
            w.field_str("event", "resume");
            w.field_usize("completed", info.completed);
            w.field_u64("version", u64::from(info.version));
        });
    }

    /// Emits the `iteration` event. The driver follows it with
    /// [`TraceSession::sync`] before any checkpoint write.
    pub fn event_iteration(&self, ev: &IterationEvent) {
        self.emit(|w| {
            w.field_str("event", "iteration");
            w.field_usize("iteration", ev.iteration);
            w.field_usize("clusters_at_start", ev.clusters_at_start);
            w.field_usize("new_clusters", ev.new_clusters);
            w.field_usize("removed_clusters", ev.removed_clusters);
            w.field_usize("clusters_live", ev.clusters_live);
            w.field_usize("membership_changes", ev.membership_changes);
            w.field_u64("pairs_scored", ev.pairs_scored);
            w.field_u64("pairs_pruned", ev.pairs_pruned);
            w.field_u64("pairs_reused", ev.pairs_reused);
            w.field_u64("joins", ev.joins);
            w.field_u64("new_joins", ev.new_joins);
            w.field_f64("log_t", ev.log_t);
            w.field_bool("threshold_moved", ev.threshold_moved);
            w.key("phase_nanos");
            w.begin_obj();
            w.field_u64("seeding", ev.phases.seeding);
            w.field_u64("scan_score", ev.phases.scan_score);
            w.field_u64("scan_absorb", ev.phases.scan_absorb);
            w.field_u64("consolidate", ev.phases.consolidate);
            w.field_u64("threshold", ev.phases.threshold);
            w.field_u64("total", ev.phases.total);
            w.end_obj();
        });
    }

    /// Emits the `checkpoint` event (after the write attempt).
    pub fn event_checkpoint(&self, completed: usize, bytes: u64, write_nanos: u64, ok: bool) {
        self.emit(|w| {
            w.field_str("event", "checkpoint");
            w.field_usize("completed", completed);
            w.field_u64("bytes", bytes);
            w.field_u64("write_nanos", write_nanos);
            w.field_bool("ok", ok);
        });
    }

    /// Emits the `run_end` event: the run summary plus a full snapshot of
    /// the registry (counters and per-phase span aggregates).
    pub fn event_run_end(&self, summary: &RunSummary) {
        // Snapshot outside the closure so the sink lock is not held while
        // summing shards.
        let counters: Vec<(&'static str, u64)> = Counter::ALL
            .iter()
            .map(|&c| (c.as_str(), self.shared.counter(c)))
            .collect();
        let spans: Vec<(&'static str, PhaseStats)> = Phase::ALL
            .iter()
            .map(|&p| (p.as_str(), self.shared.phase_stats(p)))
            .collect();
        self.emit(|w| {
            w.field_str("event", "run_end");
            w.field_usize("iterations", summary.iterations);
            w.field_usize("clusters", summary.clusters);
            w.field_usize("outliers", summary.outliers);
            w.field_f64("final_log_t", summary.final_log_t);
            w.field_u64("finalize_nanos", summary.finalize_nanos);
            w.field_u64("total_nanos", summary.total_nanos);
            w.key("counters");
            w.begin_obj();
            for (name, v) in counters {
                w.field_u64(name, v);
            }
            w.end_obj();
            w.key("spans");
            w.begin_obj();
            for (name, s) in spans {
                w.key(name);
                w.begin_obj();
                w.field_u64("total_nanos", s.total_nanos);
                w.field_u64("self_nanos", s.self_nanos);
                w.field_u64("count", s.count);
                w.field_u64("max_nanos", s.max_nanos);
                w.end_obj();
            }
            w.end_obj();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_shards() {
        let s = TraceSession::in_memory();
        for shard in 0..SHARDS + 3 {
            s.add_at(shard, Counter::PairsScored, 2);
        }
        // Out-of-range shards fold into the last one.
        assert_eq!(s.counter(Counter::PairsScored), 2 * (SHARDS as u64 + 3));
        assert_eq!(s.counter(Counter::PairsPruned), 0);
    }

    #[test]
    fn spans_aggregate_self_and_total() {
        let s = TraceSession::in_memory();
        {
            let _outer = s.span(Phase::Iteration);
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = s.span(Phase::Seeding);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let outer = s.phase_stats(Phase::Iteration);
        let inner = s.phase_stats(Phase::Seeding);
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_nanos >= inner.total_nanos);
        // Outer self time excludes the nested span.
        assert!(outer.self_nanos <= outer.total_nanos - inner.total_nanos);
        assert_eq!(inner.self_nanos, inner.total_nanos);
        assert_eq!(outer.max_nanos, outer.total_nanos);
    }

    #[test]
    fn sibling_spans_both_count_toward_parent() {
        let s = TraceSession::in_memory();
        {
            let _outer = s.span(Phase::Iteration);
            drop(s.span(Phase::ScanScore));
            drop(s.span(Phase::ScanAbsorb));
        }
        let outer = s.phase_stats(Phase::Iteration);
        let a = s.phase_stats(Phase::ScanScore);
        let b = s.phase_stats(Phase::ScanAbsorb);
        assert!(outer.self_nanos <= outer.total_nanos - a.total_nanos - b.total_nanos);
    }

    #[test]
    fn gauges_hold_last_value() {
        let s = TraceSession::in_memory();
        s.gauge_set(Gauge::Iteration, 5);
        s.gauge_set(Gauge::Iteration, 9);
        s.gauge_set_f64(Gauge::ThresholdLogT, 1.25);
        assert_eq!(s.shared().gauge(Gauge::Iteration), 9);
        assert_eq!(s.shared().gauge_f64(Gauge::ThresholdLogT), 1.25);
    }

    #[test]
    fn histogram_buckets_are_log_spaced() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(999), 0);
        assert_eq!(bucket_index(1_000), 1);
        assert_eq!(bucket_index(1_999), 1);
        assert_eq!(bucket_index(2_000), 2);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_upper_nanos(0), Some(1_000));
        assert_eq!(bucket_upper_nanos(HIST_BUCKETS - 1), None);
        // Every observation lands strictly below its bucket's upper edge.
        for nanos in [0u64, 500, 1_000, 123_456, 10_000_000_000] {
            let b = bucket_index(nanos);
            if let Some(upper) = bucket_upper_nanos(b) {
                assert!(nanos < upper, "nanos={nanos} bucket={b}");
            }
        }
    }

    #[test]
    fn histogram_counts_and_sums_merge() {
        let s = TraceSession::in_memory();
        s.observe(HistKind::ScoreRow, 0, 500);
        s.observe(HistKind::ScoreRow, 3, 1_500);
        s.observe(HistKind::ScoreRow, 7, 1_700);
        let counts = s.shared().hist_counts(HistKind::ScoreRow);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts.iter().sum::<u64>(), 3);
        assert_eq!(s.shared().hist_sum(HistKind::ScoreRow), 3_700);
    }

    #[test]
    fn shard_for_maps_chunks_to_distinct_shards() {
        // 100 rows, chunk 25 => 4 workers => shards 0..=3.
        let shards: Vec<usize> = (0..100).map(|pos| shard_for(pos, 25)).collect();
        assert_eq!(shards[0], 0);
        assert_eq!(shards[24], 0);
        assert_eq!(shards[25], 1);
        assert_eq!(shards[99], 3);
        assert_eq!(shard_for(10_000, 1), SHARDS - 1);
        assert_eq!(shard_for(7, 0), 0);
    }

    #[test]
    fn gauge_add_balances_to_zero() {
        let s = TraceSession::in_memory();
        let shared = s.shared();
        shared.gauge_add(Gauge::ServeInFlight, 3);
        shared.gauge_add(Gauge::ServeInFlight, -1);
        assert_eq!(shared.gauge(Gauge::ServeInFlight), 2);
        shared.gauge_add(Gauge::ServeInFlight, -2);
        assert_eq!(shared.gauge(Gauge::ServeInFlight), 0);
        // A transient negative (decrement observed before increment)
        // wraps, but the balanced total still lands on zero.
        shared.gauge_add(Gauge::ServeInFlight, -1);
        shared.gauge_add(Gauge::ServeInFlight, 1);
        assert_eq!(shared.gauge(Gauge::ServeInFlight), 0);
    }

    #[test]
    fn quantile_interpolates_within_the_rank_bucket() {
        let mut counts = [0u64; HIST_BUCKETS];
        assert_eq!(quantile_nanos(&counts, 0.5), None);
        // 10 observations, all in bucket 2 ([2, 4) µs).
        counts[2] = 10;
        let p50 = quantile_nanos(&counts, 0.5).unwrap();
        let p999 = quantile_nanos(&counts, 0.999).unwrap();
        assert!((2_000..4_000).contains(&p50), "{p50}");
        // Rank 10 of 10 interpolates to the bucket's inclusive upper edge.
        assert!((2_000..=4_000).contains(&p999), "{p999}");
        assert!(p50 < p999, "higher quantile is further into the bucket");
        // q=1.0 lands exactly on the bucket's upper edge.
        assert_eq!(quantile_nanos(&counts, 1.0), Some(4_000));
    }

    #[test]
    fn quantile_rank_is_exact_across_buckets() {
        let mut counts = [0u64; HIST_BUCKETS];
        counts[0] = 90; // < 1 µs
        counts[5] = 9; // [16, 32) µs
        counts[HIST_BUCKETS - 1] = 1; // overflow
        let p50 = quantile_nanos(&counts, 0.5).unwrap();
        assert!(p50 < 1_000, "rank 50 of 100 is in bucket 0, got {p50}");
        let p95 = quantile_nanos(&counts, 0.95).unwrap();
        assert!(
            (16_000..32_000).contains(&p95),
            "rank 95 is in bucket 5, got {p95}"
        );
        // The overflow bucket reports its lower edge, conservatively.
        assert_eq!(
            quantile_nanos(&counts, 1.0),
            Some(bucket_lower_nanos(HIST_BUCKETS - 1))
        );
        assert_eq!(quantile_nanos(&counts, 2.0), None, "q out of range");
    }

    #[test]
    fn bucket_lower_edges_abut_upper_edges() {
        assert_eq!(bucket_lower_nanos(0), 0);
        for b in 0..HIST_BUCKETS - 1 {
            assert_eq!(bucket_upper_nanos(b).unwrap(), bucket_lower_nanos(b + 1));
        }
    }

    #[test]
    fn saturating_nanos_never_wraps() {
        assert_eq!(saturating_nanos(Duration::ZERO), 0);
        assert_eq!(saturating_nanos(Duration::from_nanos(42)), 42);
        assert_eq!(saturating_nanos(Duration::MAX), u64::MAX);
    }
}
