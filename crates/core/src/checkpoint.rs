//! Crash-safe checkpointing of the iteration loop.
//!
//! A [`Checkpoint`] freezes the complete state of [`crate::Cluseq`]'s
//! iterative loop at an iteration boundary: every cluster model *with its
//! member list*, the RNG stream position, the similarity-threshold
//! trajectory, the growth-factor carryover, and the accumulated telemetry
//! records. [`crate::Cluseq::resume`] rebuilds the loop from a checkpoint
//! and continues it; because every input to the remaining iterations is
//! restored bit-exactly, a resumed run's [`crate::CluseqOutcome`] and its
//! [`crate::telemetry::RunReport::counters_json`] are **byte-identical**
//! to an uninterrupted run's (enforced by `tests/checkpoint_resume.rs`).
//!
//! # Format
//!
//! The same hand-rolled little-endian framing as [`cluseq_pst::serial`],
//! magic `CCKP`, version 4:
//!
//! ```text
//! magic "CCKP" | version u32
//! guard:    sequences u64 | alphabet u32 | digest u64   (FNV-1a, see below)
//! params:   every CluseqParams field, enums as u8 tags, options tagged
//!           (v2 adds the scan_kernel u8 tag after scan_mode; v3 appends
//!           the incremental u8 flag at the end; v4 appends scan_shard
//!           and model_cache_mb as optional u64s after it)
//! store:    u8 tag, 0 = in-memory, 1 = file-backed — which kind of
//!           [`SequenceStore`] the run was clustering (v4). Informational:
//!           the digest guards content, and either store kind resumes the
//!           run bit-identically; the CLI uses this to warn when a resume
//!           switches modes.
//! base:     u64, MAX = self-contained, else the completed-iteration
//!           number of the base checkpoint this delta file references (v3)
//! progress: completed u64 | stable u8 | next_id u64 | log_t f64
//!         | threshold_frozen u8 | rng u64×4 | prev_new u64
//!         | prev_removed u64 | prev_cluster_count u64
//!         | prev_best (u64 len, u64 each, MAX=none)
//! history:  u64 len, IterationStats each
//! clusters: u32 len, (id u64 | tag u8) each; tag 0 = full body
//!           (seed u64 | members u64 len + u64 each | CPST blob),
//!           tag 1 = unchanged since the base checkpoint, body elided
//!           (v1/v2 have no tag byte — every cluster is a full body)
//! records:  u32 len, IterationRecord each (timings included — they are
//!           replayed verbatim into the observer on resume; v2 adds
//!           scan.pairs_pruned u64 after scan.membership_changes; v3 adds
//!           scan.pairs_reused, scan.clusters_dirty, scan.pst_recompiles)
//! cache:    u32 column count, (cluster id u64 | n u64 | n entries) each;
//!           entry tag u8 0 = Exact (log_sim f64 | start u64 | end u64),
//!           1 = Pruned (v3; absent before — loader yields an empty cache)
//! ```
//!
//! Versions 1 through 3 are still readable: the loader threads the
//! header version through the params/record decoders, which default the
//! fields an older writer never produced — `scan_kernel` to
//! [`ScanKernel::Compiled`] (the kernels are bit-identical, so either
//! replays the run exactly), `incremental` to `false`, `pairs_pruned` and
//! the v3 scan counters to 0 (lossless: scan pruning is disabled whenever
//! an iteration is being recorded, and the incremental counters are zero
//! unless the — then nonexistent — incremental engine was on), the
//! similarity cache to empty, and the v4 fields to their no-op defaults
//! (`scan_shard`/`model_cache_mb` unset, store kind
//! [`StoreKind::Memory`] — the only kind older writers had). Writers
//! always emit the current version.
//!
//! # Delta checkpoints
//!
//! When the incremental engine is on ([`CluseqParams::incremental`]), the
//! driver writes every checkpoint after the first as a **delta**:
//! clusters untouched since the previous successfully written checkpoint
//! are stored as an id-only reference (tag 1) into that *base* file, named
//! by the base marker. [`Checkpoint::load_path`] resolves the chain —
//! strictly decreasing completed-iteration numbers, so it terminates —
//! by loading the base from its sibling file and splicing the referenced
//! cluster bodies back in; the result is indistinguishable from a
//! self-contained checkpoint. [`Checkpoint::load`] (reader-only, no
//! directory context) refuses delta files with a descriptive error.
//! Everything *except* cluster bodies — records, history, the similarity
//! cache — is always written in full, so only the base chain's cluster
//! sections are ever needed again.
//!
//! The guard digest is FNV-1a over the database's sequence lengths and
//! symbols; [`Checkpoint::verify_database`] refuses to resume against a
//! database that differs from the one the checkpoint was taken on.
//!
//! # Atomicity
//!
//! [`Checkpoint::write_atomic`] writes a temp file in the destination
//! directory, fsyncs it, renames it over the final path, and fsyncs the
//! directory. A crash at *any* byte of the write leaves either the
//! previous complete checkpoint or nothing at the final path — never a
//! partial file. [`Checkpoint::write_atomic_with`] threads a
//! [`FailPlan`] through the same code path so `tests/fault_injection.rs`
//! can prove that claim at every crash point.

use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use cluseq_pst::serial::{
    decode_capacity, read_f64, read_u32, read_u64, read_u8, write_f64, write_u32, write_u64,
    write_u8,
};
use cluseq_pst::{PruneStrategy, Pst, SerialError};
use cluseq_seq::{SequenceStore, StoreKind};

use crate::cluster::Cluster;
use crate::config::{CheckpointPolicy, CluseqParams, ConsolidationMode, ScanKernel, ScanMode};
use crate::failpoint::{FailPlan, FailingWriter};
use crate::order::ExaminationOrder;
use crate::outcome::IterationStats;
use crate::similarity::{BoundedSimilarity, SegmentSimilarity};
use crate::telemetry::{
    ClusterSnapshot, HistogramSnapshot, IterationRecord, PhaseNanos, ScanMetrics, SeedingMetrics,
};

const MAGIC: &[u8; 4] = b"CCKP";

/// A cluster entry as parsed from the clusters section: either a complete
/// body, or (v3 delta files) an id-only reference to the identical cluster
/// in the base checkpoint, resolved by [`Checkpoint::load_path`].
enum ParsedCluster {
    Full(Cluster),
    Unchanged(usize),
}

/// The complete loop state at an iteration boundary. All fields are public
/// so the driver can capture and restore without conversion layers; the
/// serialized layout is the module's contract, not this struct's shape.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The parameters of the checkpointed run. Resume uses *these* — not
    /// whatever the caller happens to hold — so the continuation cannot
    /// drift from the original configuration.
    pub params: CluseqParams,
    /// Sequence count of the database the run was clustering.
    pub db_sequences: usize,
    /// Alphabet size of that database.
    pub db_alphabet: usize,
    /// FNV-1a digest of that database's content ([`db_digest`]).
    pub db_digest: u64,
    /// Which kind of [`SequenceStore`] the run was clustering.
    /// Informational — the digest above guards content, and either store
    /// kind resumes bit-identically — but the CLI uses it to warn when a
    /// resume switches between in-memory and file-backed modes.
    pub store: StoreKind,
    /// Iterations fully completed; resume continues at this index.
    pub completed: usize,
    /// Whether the loop had already reached its fixpoint — resuming a
    /// stable checkpoint skips straight to the final assignment sweep.
    pub stable: bool,
    /// Next cluster id to assign.
    pub next_id: usize,
    /// Current similarity threshold, log-space.
    pub log_t: f64,
    /// Whether threshold adjustment has frozen (§4.6 convergence).
    pub threshold_frozen: bool,
    /// The xoshiro256++ RNG state after `completed` iterations.
    pub rng_state: [u64; 4],
    /// Clusters born in the last completed iteration (growth-factor input).
    pub prev_new: usize,
    /// Clusters dismissed in the last completed iteration.
    pub prev_removed: usize,
    /// Cluster count after the last completed iteration.
    pub prev_cluster_count: usize,
    /// Per-sequence best cluster *slot* from the last scan (the
    /// cluster-based examination order's grouping key).
    pub prev_best: Vec<Option<usize>>,
    /// Per-iteration stats so far (the eventual outcome's `history`).
    pub history: Vec<IterationStats>,
    /// Live clusters: models *and* member lists.
    pub clusters: Vec<Cluster>,
    /// Telemetry records for the completed iterations, replayed into the
    /// observer on resume so a resumed report is complete.
    pub records: Vec<IterationRecord>,
    /// The incremental engine's (sequence, cluster) similarity cache:
    /// one column per clean cluster, sorted by cluster id, each covering
    /// every sequence (see [`crate::incremental::SimilarityCache`]).
    /// Empty when [`CluseqParams::incremental`] is off — resume then
    /// starts with a cold cache, which is correct (just slower).
    pub cache: Vec<(usize, Vec<BoundedSimilarity>)>,
}

impl Checkpoint {
    /// Current checkpoint format version. Version 1 (pre scan-kernel),
    /// version 2 (pre incremental-engine), and version 3 (pre
    /// out-of-core) files remain loadable; see the module docs for the
    /// decode defaults.
    pub const VERSION: u32 = 4;

    // ---- database guard -------------------------------------------------

    /// Checks that `store` holds the database this checkpoint was taken
    /// on. The error names the first mismatching facet. The store *kind*
    /// is deliberately not checked: the digest is content-only, so a run
    /// checkpointed in memory resumes bit-identically from a file-backed
    /// store of the same corpus (and vice versa).
    pub fn verify_database(&self, store: &dyn SequenceStore) -> Result<(), &'static str> {
        if store.len() != self.db_sequences {
            return Err("checkpoint was taken on a database with a different sequence count");
        }
        if store.alphabet().len() != self.db_alphabet {
            return Err("checkpoint was taken on a database with a different alphabet size");
        }
        if db_digest(store) != self.db_digest {
            return Err("checkpoint was taken on a database with different content");
        }
        Ok(())
    }

    // ---- serialization --------------------------------------------------

    /// Serializes a self-contained checkpoint. Use
    /// [`Checkpoint::write_atomic`] for on-disk durability; this raw form
    /// exists for tests and composition.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        self.save_inner(w, None)
    }

    /// Serializes a **delta** checkpoint against the checkpoint whose
    /// completed-iteration number is `base`: clusters whose id is *not* in
    /// `changed` are written as id-only references into the base file.
    /// The caller guarantees `base < self.completed` and that every live
    /// cluster absent from `changed` is byte-identical in the base chain —
    /// the driver's dirty-cluster tracking provides exactly that. Prefer
    /// [`Checkpoint::write_atomic_delta_traced`] for on-disk writes.
    pub fn save_delta(
        &self,
        w: &mut impl Write,
        base: usize,
        changed: &BTreeSet<usize>,
    ) -> io::Result<()> {
        self.save_inner(w, Some((base, changed)))
    }

    fn save_inner(
        &self,
        w: &mut impl Write,
        delta: Option<(usize, &BTreeSet<usize>)>,
    ) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(w, Self::VERSION)?;
        write_u64(w, self.db_sequences as u64)?;
        write_u32(w, self.db_alphabet as u32)?;
        write_u64(w, self.db_digest)?;
        save_params(w, &self.params)?;
        write_u8(
            w,
            match self.store {
                StoreKind::Memory => 0,
                StoreKind::File => 1,
            },
        )?;
        write_opt_u64(w, delta.map(|(base, _)| base as u64))?;
        write_u64(w, self.completed as u64)?;
        write_bool(w, self.stable)?;
        write_u64(w, self.next_id as u64)?;
        write_f64(w, self.log_t)?;
        write_bool(w, self.threshold_frozen)?;
        for word in self.rng_state {
            write_u64(w, word)?;
        }
        write_u64(w, self.prev_new as u64)?;
        write_u64(w, self.prev_removed as u64)?;
        write_u64(w, self.prev_cluster_count as u64)?;
        write_u64(w, self.prev_best.len() as u64)?;
        for &slot in &self.prev_best {
            write_opt_u64(w, slot.map(|s| s as u64))?;
        }
        write_u64(w, self.history.len() as u64)?;
        for s in &self.history {
            save_stats(w, s)?;
        }
        write_u32(w, self.clusters.len() as u32)?;
        for c in &self.clusters {
            write_u64(w, c.id as u64)?;
            let unchanged = delta.is_some_and(|(_, changed)| !changed.contains(&c.id));
            if unchanged {
                write_u8(w, 1)?;
                continue;
            }
            write_u8(w, 0)?;
            write_u64(w, c.seed as u64)?;
            write_u64(w, c.members.len() as u64)?;
            for &m in &c.members {
                write_u64(w, m as u64)?;
            }
            c.pst.save(w)?;
        }
        write_u32(w, self.records.len() as u32)?;
        for r in &self.records {
            save_record(w, r)?;
        }
        write_u32(w, self.cache.len() as u32)?;
        for (id, column) in &self.cache {
            write_u64(w, *id as u64)?;
            write_u64(w, column.len() as u64)?;
            for entry in column {
                match entry {
                    BoundedSimilarity::Exact(sim) => {
                        write_u8(w, 0)?;
                        write_f64(w, sim.log_sim)?;
                        write_u64(w, sim.start as u64)?;
                        write_u64(w, sim.end as u64)?;
                    }
                    BoundedSimilarity::Pruned => write_u8(w, 1)?,
                }
            }
        }
        Ok(())
    }

    /// Deserializes a **self-contained** checkpoint, validating every
    /// structural invariant: enum tags, boolean bytes, RNG non-degeneracy,
    /// member-id ranges, and the cross-field length relations. Corruption
    /// yields a descriptive [`SerialError`], never a panic, and hostile
    /// length fields cannot command large allocations (see
    /// [`cluseq_pst::serial::decode_capacity`]).
    ///
    /// A delta checkpoint (one with a base reference) is rejected with a
    /// descriptive error: a bare reader has no directory to resolve the
    /// base chain in. Use [`Checkpoint::load_path`] for files on disk.
    pub fn load(r: &mut impl Read) -> Result<Self, SerialError> {
        let (ckpt, base_ref, clusters) = Self::load_parsed(r)?;
        if base_ref.is_some() {
            return Err(SerialError::Corrupt(
                "delta checkpoint needs its base; load it from its directory via load_path",
            ));
        }
        ckpt.resolve(clusters, None)
    }

    /// Loads a checkpoint from a file, resolving a delta chain when
    /// needed: a base reference is followed to the sibling
    /// `cluseq-NNNNNN.ckpt` file (recursively — completed-iteration
    /// numbers strictly decrease along the chain, so resolution
    /// terminates), the base's database digest is checked against this
    /// file's, and the referenced cluster bodies are spliced back in. The
    /// result is exactly what [`Checkpoint::load`] would return for a
    /// self-contained file of the same state.
    pub fn load_path(path: &Path) -> Result<Self, SerialError> {
        let file = std::fs::File::open(path)?;
        let (ckpt, base_ref, clusters) = Self::load_parsed(&mut io::BufReader::new(file))?;
        let base = match base_ref {
            None => None,
            Some(base_completed) => {
                if base_completed >= ckpt.completed {
                    return Err(SerialError::Corrupt("delta base not older than checkpoint"));
                }
                let dir = path.parent().unwrap_or_else(|| Path::new(""));
                let base_path = dir.join(format!("cluseq-{base_completed:06}.ckpt"));
                let base = Self::load_path(&base_path)?;
                if base.completed != base_completed {
                    return Err(SerialError::Corrupt("delta base completed-count mismatch"));
                }
                if base.db_digest != ckpt.db_digest {
                    return Err(SerialError::Corrupt("delta base database digest mismatch"));
                }
                Some(base)
            }
        };
        ckpt.resolve(clusters, base.as_ref())
    }

    /// Parses the full framing, returning the checkpoint with an *empty*
    /// cluster list, the base reference, and the parsed cluster entries
    /// (full bodies and unchanged-since-base references) for the caller to
    /// resolve.
    #[allow(clippy::type_complexity)]
    fn load_parsed(
        r: &mut impl Read,
    ) -> Result<(Self, Option<usize>, Vec<ParsedCluster>), SerialError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SerialError::BadMagic);
        }
        let version = read_u32(r)?;
        if !(1..=Self::VERSION).contains(&version) {
            return Err(SerialError::BadVersion(version));
        }
        let db_sequences = read_u64(r)? as usize;
        let db_alphabet = read_u32(r)? as usize;
        if db_sequences == 0 || db_alphabet == 0 {
            return Err(SerialError::Corrupt("empty database guard"));
        }
        let db_digest = read_u64(r)?;
        let params = load_params(r, version)?;
        let store = if version >= 4 {
            match read_u8(r)? {
                0 => StoreKind::Memory,
                1 => StoreKind::File,
                _ => return Err(SerialError::Corrupt("unknown store kind tag")),
            }
        } else {
            StoreKind::Memory
        };
        let base_ref = if version >= 3 {
            read_opt_u64(r)?.map(|b| b as usize)
        } else {
            None
        };
        let completed = read_u64(r)? as usize;
        let stable = read_bool(r)?;
        let next_id = read_u64(r)? as usize;
        let log_t = read_finite_f64(r)?;
        let threshold_frozen = read_bool(r)?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = read_u64(r)?;
        }
        if rng_state.iter().all(|&w| w == 0) {
            return Err(SerialError::Corrupt("all-zero rng state"));
        }
        let prev_new = read_u64(r)? as usize;
        let prev_removed = read_u64(r)? as usize;
        let prev_cluster_count = read_u64(r)? as usize;
        let prev_best_len = read_u64(r)? as usize;
        if prev_best_len != db_sequences {
            return Err(SerialError::Corrupt("prev_best length mismatch"));
        }
        let mut prev_best = Vec::with_capacity(decode_capacity(prev_best_len));
        for _ in 0..prev_best_len {
            prev_best.push(read_opt_u64(r)?.map(|s| s as usize));
        }
        let history_len = read_u64(r)? as usize;
        if history_len != completed {
            return Err(SerialError::Corrupt("history length mismatch"));
        }
        let mut history = Vec::with_capacity(decode_capacity(history_len));
        for i in 0..history_len {
            let s = load_stats(r)?;
            if s.iteration != i {
                return Err(SerialError::Corrupt("history iteration numbering"));
            }
            history.push(s);
        }
        let cluster_len = read_u32(r)? as usize;
        if cluster_len != prev_cluster_count {
            return Err(SerialError::Corrupt("cluster count mismatch"));
        }
        let mut clusters = Vec::with_capacity(decode_capacity(cluster_len));
        for _ in 0..cluster_len {
            let id = read_u64(r)? as usize;
            let unchanged = if version >= 3 {
                match read_u8(r)? {
                    0 => false,
                    1 => true,
                    _ => return Err(SerialError::Corrupt("cluster body tag")),
                }
            } else {
                false
            };
            if unchanged {
                if base_ref.is_none() {
                    return Err(SerialError::Corrupt(
                        "unchanged-cluster reference without a base checkpoint",
                    ));
                }
                clusters.push(ParsedCluster::Unchanged(id));
                continue;
            }
            let seed = read_u64(r)? as usize;
            let member_len = read_u64(r)? as usize;
            let mut members = Vec::with_capacity(decode_capacity(member_len));
            for _ in 0..member_len {
                let m = read_u64(r)? as usize;
                if m >= db_sequences {
                    return Err(SerialError::Corrupt("member id out of range"));
                }
                members.push(m);
            }
            let pst = Pst::load(r)?;
            clusters.push(ParsedCluster::Full(Cluster {
                id,
                pst,
                members,
                seed,
            }));
        }
        let record_len = read_u32(r)? as usize;
        if record_len != completed {
            return Err(SerialError::Corrupt("record count mismatch"));
        }
        let mut records = Vec::with_capacity(decode_capacity(record_len));
        for i in 0..record_len {
            let rec = load_record(r, version)?;
            if rec.iteration != i {
                return Err(SerialError::Corrupt("record iteration numbering"));
            }
            records.push(rec);
        }
        let cache = if version >= 3 {
            let column_len = read_u32(r)? as usize;
            let mut cache = Vec::with_capacity(decode_capacity(column_len));
            let mut prev_id = None;
            for _ in 0..column_len {
                let id = read_u64(r)? as usize;
                if prev_id.is_some_and(|p| id <= p) {
                    return Err(SerialError::Corrupt("cache columns not sorted by id"));
                }
                prev_id = Some(id);
                let n = read_u64(r)? as usize;
                if n != db_sequences {
                    return Err(SerialError::Corrupt("cache column length mismatch"));
                }
                let mut column = Vec::with_capacity(decode_capacity(n));
                for _ in 0..n {
                    column.push(match read_u8(r)? {
                        0 => {
                            let log_sim = read_f64(r)?;
                            // -inf is a legitimate similarity (empty
                            // sequence); only NaN marks corruption.
                            if log_sim.is_nan() {
                                return Err(SerialError::Corrupt("NaN cache similarity"));
                            }
                            let start = read_u64(r)? as usize;
                            let end = read_u64(r)? as usize;
                            BoundedSimilarity::Exact(SegmentSimilarity {
                                log_sim,
                                start,
                                end,
                            })
                        }
                        1 => BoundedSimilarity::Pruned,
                        _ => return Err(SerialError::Corrupt("cache entry tag")),
                    });
                }
                cache.push((id, column));
            }
            cache
        } else {
            Vec::new()
        };
        Ok((
            Self {
                params,
                db_sequences,
                db_alphabet,
                db_digest,
                store,
                completed,
                stable,
                next_id,
                log_t,
                threshold_frozen,
                rng_state,
                prev_new,
                prev_removed,
                prev_cluster_count,
                prev_best,
                history,
                clusters: Vec::new(),
                records,
                cache,
            },
            base_ref,
            clusters,
        ))
    }

    /// Fills in the parsed cluster entries: full bodies are taken as-is,
    /// unchanged references are copied out of `base` by cluster id.
    fn resolve(
        mut self,
        parsed: Vec<ParsedCluster>,
        base: Option<&Checkpoint>,
    ) -> Result<Self, SerialError> {
        self.clusters = parsed
            .into_iter()
            .map(|entry| match entry {
                ParsedCluster::Full(c) => Ok(c),
                ParsedCluster::Unchanged(id) => base
                    .ok_or(SerialError::Corrupt(
                        "unchanged-cluster reference without a base checkpoint",
                    ))?
                    .clusters
                    .iter()
                    .find(|c| c.id == id)
                    .cloned()
                    .ok_or(SerialError::Corrupt(
                        "base checkpoint missing a referenced cluster",
                    )),
            })
            .collect::<Result<_, _>>()?;
        Ok(self)
    }

    // ---- atomic file writes ---------------------------------------------

    /// Writes the checkpoint durably and atomically to `path`: serialize
    /// to `path + ".tmp"` in the same directory, fsync the file, rename it
    /// over `path`, fsync the directory. Returns the serialized size.
    ///
    /// A crash (or I/O error) at any point leaves `path` either absent or
    /// holding a previous *complete* checkpoint — never partial data.
    pub fn write_atomic(&self, path: &Path) -> io::Result<u64> {
        self.write_atomic_with(path, &FailPlan::none())
    }

    /// The delta counterpart of [`Checkpoint::write_atomic`]: same
    /// durability protocol, [`Checkpoint::save_delta`] payload.
    pub fn write_atomic_delta(
        &self,
        path: &Path,
        base: usize,
        changed: &BTreeSet<usize>,
    ) -> io::Result<u64> {
        self.write_atomic_delta_with(path, base, changed, &FailPlan::none())
    }

    /// [`Checkpoint::write_atomic`] under a `checkpoint_save` span, with
    /// the write attempt, its outcome, its byte count, and its wall time
    /// recorded in the tracing registry. The write itself is identical.
    pub fn write_atomic_traced(
        &self,
        path: &Path,
        trace: Option<&crate::trace::TraceSession>,
    ) -> io::Result<u64> {
        self.traced_write(path, trace, None)
    }

    /// The delta counterpart of [`Checkpoint::write_atomic_traced`] — the
    /// driver's cadence writes when the incremental engine has a live base.
    pub fn write_atomic_delta_traced(
        &self,
        path: &Path,
        base: usize,
        changed: &BTreeSet<usize>,
        trace: Option<&crate::trace::TraceSession>,
    ) -> io::Result<u64> {
        self.traced_write(path, trace, Some((base, changed)))
    }

    fn traced_write(
        &self,
        path: &Path,
        trace: Option<&crate::trace::TraceSession>,
        delta: Option<(usize, &BTreeSet<usize>)>,
    ) -> io::Result<u64> {
        use crate::trace::{Counter, HistKind, Phase};
        let plan = FailPlan::none();
        let Some(trace) = trace else {
            return self.write_atomic_inner(path, &plan, delta);
        };
        let _span = trace.span(Phase::CheckpointSave);
        let start = std::time::Instant::now();
        let result = self.write_atomic_inner(path, &plan, delta);
        trace.add(Counter::CheckpointWrites, 1);
        trace.observe(
            HistKind::CheckpointWrite,
            0,
            crate::trace::nanos_since(start),
        );
        match &result {
            Ok(bytes) => trace.add(Counter::CheckpointBytes, *bytes),
            Err(_) => trace.add(Counter::CheckpointFailures, 1),
        }
        result
    }

    /// [`Checkpoint::write_atomic`] with fault injection: every byte of
    /// the temp-file write flows through `plan`, and
    /// [`FailPlan::fail_rename`] aborts between the durable temp write and
    /// the rename, leaving the temp file behind exactly as `kill -9`
    /// would. The production path is this function with a no-op plan —
    /// the tests exercise the real writer, not a replica.
    pub fn write_atomic_with(&self, path: &Path, plan: &FailPlan) -> io::Result<u64> {
        self.write_atomic_inner(path, plan, None)
    }

    /// [`Checkpoint::write_atomic_delta`] with fault injection, so the
    /// crash-safety suite can prove the delta writer torn-write-free at
    /// every byte, exactly like the self-contained writer.
    pub fn write_atomic_delta_with(
        &self,
        path: &Path,
        base: usize,
        changed: &BTreeSet<usize>,
        plan: &FailPlan,
    ) -> io::Result<u64> {
        self.write_atomic_inner(path, plan, Some((base, changed)))
    }

    fn write_atomic_inner(
        &self,
        path: &Path,
        plan: &FailPlan,
        delta: Option<(usize, &BTreeSet<usize>)>,
    ) -> io::Result<u64> {
        let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = tmp_path(path);
        let written = (|| {
            let file = std::fs::File::create(&tmp)?;
            let mut w = FailingWriter::new(io::BufWriter::new(file), plan.clone());
            self.save_inner(&mut w, delta)?;
            w.flush()?;
            let written = w.written();
            let file = w.into_inner().into_inner().map_err(|e| e.into_error())?;
            file.sync_all()?;
            Ok(written)
        })();
        let written = match written {
            Ok(n) => n,
            Err(e) => {
                // A graceful I/O error cleans up its debris; a real crash
                // would leave the temp file, which loaders ignore by name.
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        };
        if plan.fail_rename {
            // Simulated crash after the temp file is durable but before
            // it is published: leave it in place, exactly like kill -9.
            return Err(io::Error::other("injected failpoint before rename"));
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = dir {
            // The rename is only durable once the directory entry is; an
            // fsync on the file alone does not cover its new name.
            std::fs::File::open(dir)?.sync_all()?;
        }
        Ok(written)
    }

    /// The newest checkpoint file in `dir` (highest completed-iteration
    /// number in a `cluseq-NNNNNN.ckpt` name). `Ok(None)` when the
    /// directory is missing or holds no checkpoint-named files; temp files
    /// and foreign names are ignored.
    pub fn latest_in(dir: &Path) -> io::Result<Option<PathBuf>> {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut best: Option<(usize, PathBuf)> = None;
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let Some(completed) = name.to_str().and_then(parse_checkpoint_name) else {
                continue;
            };
            if best.as_ref().map_or(true, |(b, _)| completed > *b) {
                best = Some((completed, entry.path()));
            }
        }
        Ok(best.map(|(_, path)| path))
    }
}

/// The completed-iteration number encoded in a `cluseq-NNNNNN.ckpt` file
/// name, or `None` for any other name.
fn parse_checkpoint_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("cluseq-")?.strip_suffix(".ckpt")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// FNV-1a digest of a store's content: sequence count, alphabet size,
/// and every sequence's length and symbols. Labels are excluded — they do
/// not influence clustering — and so is the store *kind*: an in-memory
/// database and a file-backed store of the same corpus digest identically,
/// which is what lets a checkpoint resume across store modes.
pub fn db_digest(store: &dyn SequenceStore) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |hash: &mut u64, v: u64| {
        for b in v.to_le_bytes() {
            *hash ^= u64::from(b);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(&mut hash, store.len() as u64);
    mix(&mut hash, store.alphabet().len() as u64);
    let mut reader = store.reader();
    for i in 0..store.len() {
        let seq = reader.symbols(i);
        mix(&mut hash, seq.len() as u64);
        for sym in seq {
            mix(&mut hash, u64::from(sym.0));
        }
    }
    hash
}

// ---- framing helpers ---------------------------------------------------

fn write_bool(w: &mut impl Write, v: bool) -> io::Result<()> {
    write_u8(w, u8::from(v))
}

/// Booleans must be exactly 0 or 1 — anything else is corruption, and
/// catching it here turns a silent misread into a descriptive error.
fn read_bool(r: &mut impl Read) -> Result<bool, SerialError> {
    match read_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(SerialError::Corrupt("boolean flag out of range")),
    }
}

fn write_opt_u64(w: &mut impl Write, v: Option<u64>) -> io::Result<()> {
    // u64::MAX is the none sentinel: no stored quantity approaches it.
    write_u64(w, v.unwrap_or(u64::MAX))
}

fn read_opt_u64(r: &mut impl Read) -> Result<Option<u64>, SerialError> {
    match read_u64(r)? {
        u64::MAX => Ok(None),
        v => Ok(Some(v)),
    }
}

fn read_finite_f64(r: &mut impl Read) -> Result<f64, SerialError> {
    let v = read_f64(r)?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(SerialError::Corrupt("non-finite float"))
    }
}

// ---- params ------------------------------------------------------------

fn save_params(w: &mut impl Write, p: &CluseqParams) -> io::Result<()> {
    write_u64(w, p.initial_clusters as u64)?;
    write_u64(w, p.significance)?;
    write_f64(w, p.initial_threshold)?;
    write_bool(w, p.adjust_threshold)?;
    write_u64(w, p.sample_factor as u64)?;
    write_u64(w, p.max_depth as u64)?;
    write_opt_u64(w, p.max_pst_bytes.map(|b| b as u64))?;
    write_u8(
        w,
        match p.prune_strategy {
            PruneStrategy::SmallestCount => 0,
            PruneStrategy::LongestLabel => 1,
            PruneStrategy::ExpectedVector => 2,
            PruneStrategy::Composite => 3,
        },
    )?;
    write_f64(w, p.smoothing.unwrap_or(f64::NAN))?;
    write_u8(
        w,
        match p.order {
            ExaminationOrder::Fixed => 0,
            ExaminationOrder::Random => 1,
            ExaminationOrder::ClusterBased => 2,
        },
    )?;
    write_u64(w, p.histogram_buckets as u64)?;
    write_u64(w, p.max_iterations as u64)?;
    write_u8(
        w,
        match p.consolidation {
            ConsolidationMode::Dismiss => 0,
            ConsolidationMode::MergeIntoCovering => 1,
        },
    )?;
    write_opt_u64(w, p.min_exclusive.map(|m| m as u64))?;
    write_bool(w, p.rebuild_psts)?;
    write_u8(
        w,
        match p.scan_mode {
            ScanMode::Incremental => 0,
            ScanMode::Snapshot => 1,
        },
    )?;
    // v2 field: absent from v1 files, where the loader defaults it. Tags
    // 2 (batched) and 3 (quantized) extend the original 0/1 value space
    // without a version bump: old readers reject them as corrupt rather
    // than misinterpreting them, and old files never contain them.
    write_u8(
        w,
        match p.scan_kernel {
            ScanKernel::Interpreted => 0,
            ScanKernel::Compiled => 1,
            ScanKernel::Batched => 2,
            ScanKernel::Quantized => 3,
        },
    )?;
    write_u64(w, p.threads as u64)?;
    write_u64(w, p.seed)?;
    match &p.checkpoint {
        Some(policy) => {
            write_bool(w, true)?;
            write_u64(w, policy.every as u64)?;
            // Paths are stored as UTF-8 (lossy): the CLI and tests only
            // ever produce unicode paths, and the policy is advisory —
            // resume may override it anyway.
            let dir = policy.dir.to_string_lossy();
            write_u32(w, dir.len() as u32)?;
            w.write_all(dir.as_bytes())?;
        }
        None => write_bool(w, false)?,
    }
    // v3 field: absent from older files, where the loader defaults it —
    // the incremental engine did not exist, so `false` is the true value.
    write_bool(w, p.incremental)?;
    // v4 fields: same story — older writers had neither scan sharding nor
    // a model-cache budget, so `None` is the true value on old files.
    write_opt_u64(w, p.scan_shard.map(|s| s as u64))?;
    write_opt_u64(w, p.model_cache_mb.map(|m| m as u64))?;
    Ok(())
}

fn load_params(r: &mut impl Read, version: u32) -> Result<CluseqParams, SerialError> {
    let initial_clusters = read_u64(r)? as usize;
    let significance = read_u64(r)?;
    let initial_threshold = read_finite_f64(r)?;
    if initial_threshold < 1.0 {
        return Err(SerialError::Corrupt("initial threshold below 1"));
    }
    let adjust_threshold = read_bool(r)?;
    let sample_factor = read_u64(r)? as usize;
    if sample_factor == 0 {
        return Err(SerialError::Corrupt("zero sample factor"));
    }
    let max_depth = read_u64(r)? as usize;
    let max_pst_bytes = read_opt_u64(r)?.map(|b| b as usize);
    let prune_strategy = match read_u8(r)? {
        0 => PruneStrategy::SmallestCount,
        1 => PruneStrategy::LongestLabel,
        2 => PruneStrategy::ExpectedVector,
        3 => PruneStrategy::Composite,
        _ => return Err(SerialError::Corrupt("prune strategy tag")),
    };
    let smoothing_raw = read_f64(r)?;
    let smoothing = if smoothing_raw.is_nan() {
        None
    } else {
        Some(smoothing_raw)
    };
    let order = match read_u8(r)? {
        0 => ExaminationOrder::Fixed,
        1 => ExaminationOrder::Random,
        2 => ExaminationOrder::ClusterBased,
        _ => return Err(SerialError::Corrupt("examination order tag")),
    };
    let histogram_buckets = read_u64(r)? as usize;
    if histogram_buckets < 3 {
        return Err(SerialError::Corrupt("histogram bucket count below 3"));
    }
    let max_iterations = read_u64(r)? as usize;
    if max_iterations == 0 {
        return Err(SerialError::Corrupt("zero iteration cap"));
    }
    let consolidation = match read_u8(r)? {
        0 => ConsolidationMode::Dismiss,
        1 => ConsolidationMode::MergeIntoCovering,
        _ => return Err(SerialError::Corrupt("consolidation mode tag")),
    };
    let min_exclusive = read_opt_u64(r)?.map(|m| m as usize);
    let rebuild_psts = read_bool(r)?;
    let scan_mode = match read_u8(r)? {
        0 => ScanMode::Incremental,
        1 => ScanMode::Snapshot,
        _ => return Err(SerialError::Corrupt("scan mode tag")),
    };
    // v1 predates the kernel choice; Compiled is safe because the two
    // kernels are bit-identical, so the resumed run replays exactly.
    let scan_kernel = if version >= 2 {
        match read_u8(r)? {
            0 => ScanKernel::Interpreted,
            1 => ScanKernel::Compiled,
            2 => ScanKernel::Batched,
            3 => ScanKernel::Quantized,
            _ => return Err(SerialError::Corrupt("scan kernel tag")),
        }
    } else {
        ScanKernel::Compiled
    };
    let threads = read_u64(r)? as usize;
    if threads == 0 {
        return Err(SerialError::Corrupt("zero thread count"));
    }
    let seed = read_u64(r)?;
    let checkpoint = if read_bool(r)? {
        let every = read_u64(r)? as usize;
        if every == 0 {
            return Err(SerialError::Corrupt("zero checkpoint cadence"));
        }
        let dir_len = read_u32(r)? as usize;
        if dir_len > 64 * 1024 {
            return Err(SerialError::Corrupt("checkpoint dir length"));
        }
        let mut dir = vec![0u8; dir_len];
        r.read_exact(&mut dir)?;
        let dir =
            String::from_utf8(dir).map_err(|_| SerialError::Corrupt("checkpoint dir utf-8"))?;
        Some(CheckpointPolicy::new(dir, every))
    } else {
        None
    };
    let incremental = if version >= 3 { read_bool(r)? } else { false };
    let (scan_shard, model_cache_mb) = if version >= 4 {
        let shard = read_opt_u64(r)?.map(|s| s as usize);
        if shard == Some(0) {
            return Err(SerialError::Corrupt("zero scan shard"));
        }
        (shard, read_opt_u64(r)?.map(|m| m as usize))
    } else {
        (None, None)
    };
    Ok(CluseqParams {
        initial_clusters,
        significance,
        initial_threshold,
        adjust_threshold,
        sample_factor,
        max_depth,
        max_pst_bytes,
        prune_strategy,
        smoothing,
        order,
        histogram_buckets,
        max_iterations,
        consolidation,
        min_exclusive,
        rebuild_psts,
        scan_mode,
        scan_kernel,
        threads,
        incremental,
        scan_shard,
        model_cache_mb,
        checkpoint,
        seed,
    })
}

// ---- iteration stats ----------------------------------------------------

fn save_stats(w: &mut impl Write, s: &IterationStats) -> io::Result<()> {
    write_u64(w, s.iteration as u64)?;
    write_u64(w, s.new_clusters as u64)?;
    write_u64(w, s.removed_clusters as u64)?;
    write_u64(w, s.clusters_at_end as u64)?;
    write_u64(w, s.membership_changes as u64)?;
    write_f64(w, s.log_t)?;
    write_bool(w, s.threshold_moved)
}

fn load_stats(r: &mut impl Read) -> Result<IterationStats, SerialError> {
    Ok(IterationStats {
        iteration: read_u64(r)? as usize,
        new_clusters: read_u64(r)? as usize,
        removed_clusters: read_u64(r)? as usize,
        clusters_at_end: read_u64(r)? as usize,
        membership_changes: read_u64(r)? as usize,
        log_t: read_finite_f64(r)?,
        threshold_moved: read_bool(r)?,
    })
}

// ---- telemetry records --------------------------------------------------

fn save_record(w: &mut impl Write, rec: &IterationRecord) -> io::Result<()> {
    write_u64(w, rec.iteration as u64)?;
    write_u64(w, rec.clusters_at_start as u64)?;
    write_u64(w, rec.seeding.requested as u64)?;
    write_u64(w, rec.seeding.pool as u64)?;
    write_u64(w, rec.seeding.sampled as u64)?;
    write_u64(w, rec.seeding.chosen as u64)?;
    write_u64(w, rec.scan.pairs_scored)?;
    write_u64(w, rec.scan.joins)?;
    write_u64(w, rec.scan.new_joins)?;
    write_u64(w, rec.scan.membership_changes as u64)?;
    // v2 field: absent from v1 files, where the loader defaults it to 0
    // (a recorded iteration never prunes, so 0 is the true count).
    write_u64(w, rec.scan.pairs_pruned)?;
    // v3 fields: absent from older files, where the loader defaults them
    // to 0 (the incremental engine did not exist, so 0 is the true count).
    write_u64(w, rec.scan.pairs_reused)?;
    write_u64(w, rec.scan.clusters_dirty)?;
    write_u64(w, rec.scan.pst_recompiles)?;
    write_u64(w, rec.removed_clusters as u64)?;
    write_u64(w, rec.merged_clusters as u64)?;
    write_u64(w, rec.clusters_at_end as u64)?;
    match &rec.histogram {
        Some(h) => {
            write_bool(w, true)?;
            write_f64(w, h.lo)?;
            write_f64(w, h.hi)?;
            write_u32(w, h.counts.len() as u32)?;
            for &c in &h.counts {
                write_u64(w, c)?;
            }
        }
        None => write_bool(w, false)?,
    }
    match rec.valley {
        Some(v) => {
            write_bool(w, true)?;
            write_f64(w, v)?;
        }
        None => write_bool(w, false)?,
    }
    write_f64(w, rec.log_t_before)?;
    write_f64(w, rec.log_t_after)?;
    write_bool(w, rec.threshold_moved)?;
    write_u32(w, rec.clusters.len() as u32)?;
    for c in &rec.clusters {
        write_u64(w, c.id as u64)?;
        write_u64(w, c.members as u64)?;
        write_u64(w, c.exclusive_members as u64)?;
        write_u64(w, c.pst_nodes as u64)?;
        write_u64(w, c.pst_bytes as u64)?;
        write_u64(w, c.pst_total_count)?;
    }
    write_u64(w, rec.timings.seeding)?;
    write_u64(w, rec.timings.scan_score)?;
    write_u64(w, rec.timings.scan_absorb)?;
    write_u64(w, rec.timings.consolidate)?;
    write_u64(w, rec.timings.threshold)?;
    write_u64(w, rec.timings.total)
}

fn load_record(r: &mut impl Read, version: u32) -> Result<IterationRecord, SerialError> {
    let iteration = read_u64(r)? as usize;
    let clusters_at_start = read_u64(r)? as usize;
    let seeding = SeedingMetrics {
        requested: read_u64(r)? as usize,
        pool: read_u64(r)? as usize,
        sampled: read_u64(r)? as usize,
        chosen: read_u64(r)? as usize,
    };
    let scan = ScanMetrics {
        pairs_scored: read_u64(r)?,
        joins: read_u64(r)?,
        new_joins: read_u64(r)?,
        membership_changes: read_u64(r)? as usize,
        pairs_pruned: if version >= 2 { read_u64(r)? } else { 0 },
        pairs_reused: if version >= 3 { read_u64(r)? } else { 0 },
        clusters_dirty: if version >= 3 { read_u64(r)? } else { 0 },
        pst_recompiles: if version >= 3 { read_u64(r)? } else { 0 },
    };
    let removed_clusters = read_u64(r)? as usize;
    let merged_clusters = read_u64(r)? as usize;
    let clusters_at_end = read_u64(r)? as usize;
    let histogram = if read_bool(r)? {
        let lo = read_finite_f64(r)?;
        let hi = read_finite_f64(r)?;
        let len = read_u32(r)? as usize;
        let mut counts = Vec::with_capacity(decode_capacity(len));
        for _ in 0..len {
            counts.push(read_u64(r)?);
        }
        Some(HistogramSnapshot { lo, hi, counts })
    } else {
        None
    };
    let valley = if read_bool(r)? {
        Some(read_finite_f64(r)?)
    } else {
        None
    };
    let log_t_before = read_finite_f64(r)?;
    let log_t_after = read_finite_f64(r)?;
    let threshold_moved = read_bool(r)?;
    let cluster_len = read_u32(r)? as usize;
    let mut clusters = Vec::with_capacity(decode_capacity(cluster_len));
    for _ in 0..cluster_len {
        clusters.push(ClusterSnapshot {
            id: read_u64(r)? as usize,
            members: read_u64(r)? as usize,
            exclusive_members: read_u64(r)? as usize,
            pst_nodes: read_u64(r)? as usize,
            pst_bytes: read_u64(r)? as usize,
            pst_total_count: read_u64(r)?,
        });
    }
    let timings = PhaseNanos {
        seeding: read_u64(r)?,
        scan_score: read_u64(r)?,
        scan_absorb: read_u64(r)?,
        consolidate: read_u64(r)?,
        threshold: read_u64(r)?,
        total: read_u64(r)?,
    };
    Ok(IterationRecord {
        iteration,
        clusters_at_start,
        seeding,
        scan,
        removed_clusters,
        merged_clusters,
        clusters_at_end,
        histogram,
        valley,
        log_t_before,
        log_t_after,
        threshold_moved,
        clusters,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_seq::SequenceDatabase;

    fn sample_db() -> SequenceDatabase {
        SequenceDatabase::from_strs(["abab", "baba", "abba"])
    }

    /// A structurally consistent checkpoint over [`sample_db`] with one
    /// cluster and one completed iteration.
    fn sample_checkpoint() -> Checkpoint {
        let db = sample_db();
        let params = CluseqParams::default()
            .with_significance(1)
            .with_max_depth(3);
        let cluster = Cluster::from_seed(
            0,
            1,
            db.sequence(1),
            db.alphabet().len(),
            params.pst_params(),
        );
        let stats = IterationStats {
            iteration: 0,
            new_clusters: 1,
            removed_clusters: 0,
            clusters_at_end: 1,
            membership_changes: 1,
            log_t: 0.25,
            threshold_moved: true,
        };
        let record = IterationRecord {
            iteration: 0,
            clusters_at_start: 0,
            seeding: SeedingMetrics {
                requested: 1,
                pool: 3,
                sampled: 3,
                chosen: 1,
            },
            scan: ScanMetrics {
                pairs_scored: 3,
                joins: 1,
                new_joins: 1,
                membership_changes: 1,
                pairs_pruned: 2,
                pairs_reused: 4,
                clusters_dirty: 1,
                pst_recompiles: 1,
            },
            removed_clusters: 0,
            merged_clusters: 0,
            clusters_at_end: 1,
            histogram: Some(HistogramSnapshot {
                lo: -0.5,
                hi: 1.5,
                counts: vec![1, 0, 2],
            }),
            valley: Some(0.25),
            log_t_before: 0.0005,
            log_t_after: 0.25,
            threshold_moved: true,
            clusters: vec![ClusterSnapshot {
                id: 0,
                members: 1,
                exclusive_members: 1,
                pst_nodes: 5,
                pst_bytes: 512,
                pst_total_count: 4,
            }],
            timings: PhaseNanos::default(),
        };
        Checkpoint {
            params,
            db_sequences: db.len(),
            db_alphabet: db.alphabet().len(),
            db_digest: db_digest(&db),
            store: StoreKind::Memory,
            completed: 1,
            stable: false,
            next_id: 1,
            log_t: 0.25,
            threshold_frozen: false,
            rng_state: [1, 2, 3, 4],
            prev_new: 1,
            prev_removed: 0,
            prev_cluster_count: 1,
            prev_best: vec![None, Some(0), None],
            history: vec![stats],
            clusters: vec![cluster],
            records: vec![record],
            cache: vec![(
                0,
                vec![
                    BoundedSimilarity::Exact(SegmentSimilarity {
                        log_sim: 0.5,
                        start: 0,
                        end: 4,
                    }),
                    BoundedSimilarity::Pruned,
                    BoundedSimilarity::Exact(SegmentSimilarity {
                        log_sim: f64::NEG_INFINITY,
                        start: 0,
                        end: 0,
                    }),
                ],
            )],
        }
    }

    fn to_bytes(ckpt: &Checkpoint) -> Vec<u8> {
        let mut buf = Vec::new();
        ckpt.save(&mut buf).unwrap();
        buf
    }

    #[test]
    fn every_scan_kernel_tag_round_trips() {
        for kernel in ScanKernel::ALL {
            let mut ckpt = sample_checkpoint();
            ckpt.params = ckpt.params.with_scan_kernel(kernel);
            let bytes = to_bytes(&ckpt);
            let loaded = Checkpoint::load(&mut bytes.as_slice()).unwrap();
            assert_eq!(loaded.params.scan_kernel, kernel);
        }
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let ckpt = sample_checkpoint();
        let bytes = to_bytes(&ckpt);
        let loaded = Checkpoint::load(&mut bytes.as_slice()).unwrap();
        assert_eq!(to_bytes(&loaded), bytes);
        assert_eq!(loaded.completed, 1);
        assert_eq!(loaded.params, ckpt.params);
        assert_eq!(loaded.history, ckpt.history);
        assert_eq!(loaded.records, ckpt.records);
        assert_eq!(loaded.prev_best, ckpt.prev_best);
        assert_eq!(loaded.rng_state, [1, 2, 3, 4]);
        assert_eq!(loaded.clusters[0].members, ckpt.clusters[0].members);
        assert_eq!(loaded.cache, ckpt.cache);
        assert!(!loaded.params.incremental);
    }

    #[test]
    fn delta_checkpoint_resolves_through_its_base_chain() {
        let dir = std::env::temp_dir().join(format!("cluseq-ckpt-delta-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = sample_checkpoint();
        base.write_atomic(&dir.join("cluseq-000001.ckpt")).unwrap();

        // Iteration 2: the cluster is untouched, so the delta elides it.
        let mut delta = sample_checkpoint();
        delta.completed = 2;
        delta.history.push(delta.history[0]);
        delta.history[1].iteration = 1;
        delta.records.push(delta.records[0].clone());
        delta.records[1].iteration = 1;
        let changed = BTreeSet::new();
        let delta_path = dir.join("cluseq-000002.ckpt");
        delta.write_atomic_delta(&delta_path, 1, &changed).unwrap();

        // A delta is smaller than the same state written self-contained.
        let mut full_bytes = Vec::new();
        delta.save(&mut full_bytes).unwrap();
        assert!(std::fs::metadata(&delta_path).unwrap().len() < full_bytes.len() as u64);

        // load_path splices the base's cluster body back in …
        let resolved = Checkpoint::load_path(&delta_path).unwrap();
        assert_eq!(to_bytes(&resolved), full_bytes);
        assert_eq!(resolved.clusters[0].members, base.clusters[0].members);

        // … while the bare reader refuses the unresolvable file.
        let raw = std::fs::read(&delta_path).unwrap();
        assert!(matches!(
            Checkpoint::load(&mut raw.as_slice()).unwrap_err(),
            SerialError::Corrupt(msg) if msg.contains("delta")
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_with_a_changed_cluster_carries_its_body() {
        let dir =
            std::env::temp_dir().join(format!("cluseq-ckpt-delta-chg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = sample_checkpoint();
        base.write_atomic(&dir.join("cluseq-000001.ckpt")).unwrap();

        let mut delta = sample_checkpoint();
        delta.completed = 2;
        delta.history.push(delta.history[0]);
        delta.history[1].iteration = 1;
        delta.records.push(delta.records[0].clone());
        delta.records[1].iteration = 1;
        delta.clusters[0].members = vec![0, 1]; // the cluster changed
        let changed: BTreeSet<usize> = [0].into();
        let delta_path = dir.join("cluseq-000002.ckpt");
        delta.write_atomic_delta(&delta_path, 1, &changed).unwrap();

        let resolved = Checkpoint::load_path(&delta_path).unwrap();
        assert_eq!(resolved.clusters[0].members, vec![0, 1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_against_a_missing_or_foreign_base_is_an_error() {
        let dir =
            std::env::temp_dir().join(format!("cluseq-ckpt-delta-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut delta = sample_checkpoint();
        delta.completed = 2;
        delta.history.push(delta.history[0]);
        delta.history[1].iteration = 1;
        delta.records.push(delta.records[0].clone());
        delta.records[1].iteration = 1;
        let delta_path = dir.join("cluseq-000002.ckpt");
        delta
            .write_atomic_delta(&delta_path, 1, &BTreeSet::new())
            .unwrap();

        // No base file at all.
        assert!(Checkpoint::load_path(&delta_path).is_err());

        // A base from a different database is rejected by digest.
        let mut foreign = sample_checkpoint();
        foreign.db_digest ^= 1;
        foreign
            .write_atomic(&dir.join("cluseq-000001.ckpt"))
            .unwrap();
        assert!(matches!(
            Checkpoint::load_path(&delta_path).unwrap_err(),
            SerialError::Corrupt(msg) if msg.contains("digest")
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn database_guard_accepts_the_original_and_names_mismatches() {
        let ckpt = sample_checkpoint();
        ckpt.verify_database(&sample_db()).unwrap();

        let fewer = SequenceDatabase::from_strs(["abab", "baba"]);
        assert!(ckpt
            .verify_database(&fewer)
            .unwrap_err()
            .contains("sequence count"));

        let bigger_alphabet = SequenceDatabase::from_strs(["abab", "baba", "abca"]);
        assert!(ckpt
            .verify_database(&bigger_alphabet)
            .unwrap_err()
            .contains("alphabet"));

        let other_content = SequenceDatabase::from_strs(["abab", "baba", "aabb"]);
        assert!(ckpt
            .verify_database(&other_content)
            .unwrap_err()
            .contains("content"));
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        // Note the digest sees symbol *ids*, which `from_strs` assigns by
        // first appearance — so the swapped pair must not be isomorphic
        // under relabeling (e.g. ["ab","ba"] vs ["ba","ab"] would be).
        let a = db_digest(&SequenceDatabase::from_strs(["aab", "abb"]));
        let b = db_digest(&SequenceDatabase::from_strs(["abb", "aab"]));
        let c = db_digest(&SequenceDatabase::from_strs(["aab", "abb"]));
        assert_ne!(a, b, "sequence order must matter");
        assert_eq!(a, c, "digest must be a pure function of content");
        let d = db_digest(&SequenceDatabase::from_strs(["aab", "aba"]));
        assert_ne!(a, d, "content must matter");
    }

    #[test]
    fn bad_magic_version_and_flags_are_descriptive() {
        assert!(matches!(
            Checkpoint::load(&mut &b"NOPE"[..]).unwrap_err(),
            SerialError::BadMagic
        ));

        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            Checkpoint::load(&mut buf.as_slice()).unwrap_err(),
            SerialError::BadVersion(9)
        ));

        // A boolean byte of 2 is corruption, not truth.
        let ckpt = sample_checkpoint();
        let bytes = to_bytes(&ckpt);
        // `stable` sits right after guard + params + completed; find it by
        // flipping every byte until the loader names the boolean — cheap
        // and layout-independent.
        let mut hit = false;
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] = 2;
            if let Err(SerialError::Corrupt(msg)) = Checkpoint::load(&mut evil.as_slice()) {
                if msg.contains("boolean") {
                    hit = true;
                    break;
                }
            }
        }
        assert!(hit, "some byte position must trip the boolean validation");
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = to_bytes(&sample_checkpoint());
        for len in 0..bytes.len() {
            assert!(
                Checkpoint::load(&mut &bytes[..len]).is_err(),
                "truncation at {len} must error"
            );
        }
    }

    #[test]
    fn member_ids_are_range_checked() {
        let mut ckpt = sample_checkpoint();
        ckpt.clusters[0].members = vec![99];
        let bytes = to_bytes(&ckpt);
        assert!(matches!(
            Checkpoint::load(&mut bytes.as_slice()).unwrap_err(),
            SerialError::Corrupt("member id out of range")
        ));
    }

    #[test]
    fn write_atomic_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("cluseq-ckpt-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = sample_checkpoint();
        let path = dir.join("cluseq-000001.ckpt");
        let bytes = ckpt.write_atomic(&path).unwrap();
        assert_eq!(bytes, to_bytes(&ckpt).len() as u64);
        let loaded = Checkpoint::load_path(&path).unwrap();
        assert_eq!(to_bytes(&loaded), to_bytes(&ckpt));
        // No temp debris left behind.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["cluseq-000001.ckpt".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_in_picks_the_highest_iteration_and_ignores_noise() {
        let dir = std::env::temp_dir().join(format!("cluseq-ckpt-latest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(Checkpoint::latest_in(&dir).unwrap().is_none());
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Checkpoint::latest_in(&dir).unwrap().is_none());
        for name in [
            "cluseq-000002.ckpt",
            "cluseq-000010.ckpt",
            "cluseq-000003.ckpt",
            "cluseq-000010.ckpt.tmp", // torn write debris
            "notes.txt",
            "cluseq-.ckpt",
            "cluseq-12x4.ckpt",
        ] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let latest = Checkpoint::latest_in(&dir).unwrap().unwrap();
        assert_eq!(latest.file_name().unwrap(), "cluseq-000010.ckpt");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_name_parser_is_strict() {
        assert_eq!(parse_checkpoint_name("cluseq-000042.ckpt"), Some(42));
        assert_eq!(parse_checkpoint_name("cluseq-7.ckpt"), Some(7));
        assert_eq!(parse_checkpoint_name("cluseq-.ckpt"), None);
        assert_eq!(parse_checkpoint_name("cluseq-42.ckpt.tmp"), None);
        assert_eq!(parse_checkpoint_name("cluseq-4a2.ckpt"), None);
        assert_eq!(parse_checkpoint_name("model.cseq"), None);
    }
}
