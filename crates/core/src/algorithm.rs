//! The CLUSEQ iterative driver (paper §4, Figure 2).
//!
//! Each iteration: (1) generate new clusters from unclustered sequences,
//! paced by the growth factor `f`; (2) re-cluster every sequence against
//! every cluster; (3) consolidate covered clusters; (4) optionally adjust
//! the similarity threshold toward the histogram valley. The loop stops at
//! a fixpoint — same number of clusters and no membership change — or at
//! the iteration cap.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use cluseq_eval::Histogram;
use cluseq_seq::SequenceStore;

use crate::checkpoint::{db_digest, Checkpoint};
use crate::cluster::Cluster;
use crate::config::CluseqParams;
use crate::consolidate::{consolidate_traced, exclusive_member_counts};
use crate::incremental::SimilarityCache;
use crate::kernel::ClusterAutomaton;
use crate::models::ModelCache;
use crate::outcome::{CluseqOutcome, IterationStats};
use crate::recluster::{recluster_full, ScanOptions};
use crate::score::{parallel_map, parallel_map_with, plan_chunk};
use crate::seeding::select_seeds_detailed;
use crate::similarity::{max_similarity_pst, BoundedSimilarity};
use crate::telemetry::{
    CheckpointEvent, ClusterSnapshot, HistogramSnapshot, IterationRecord, NoopObserver, PhaseNanos,
    ResumeInfo, RunContext, RunObserver, RunSummary,
};
use crate::threshold::decide_threshold_traced;
use crate::trace::{self, Counter, Gauge, HistKind, IterationEvent, Phase, TraceSession};

/// The mutable state of the iteration loop — exactly what a
/// [`Checkpoint`] captures and [`Cluseq::resume`] restores. Keeping it in
/// one struct guarantees the fresh-start and resume paths drive the same
/// loop over the same variables.
struct LoopState {
    clusters: Vec<Cluster>,
    next_id: usize,
    log_t: f64,
    threshold_frozen: bool,
    history: Vec<IterationStats>,
    /// Growth-factor carryover from the previous iteration (§4.1).
    prev_new: usize,
    prev_removed: usize,
    prev_cluster_count: usize,
    prev_best: Vec<Option<usize>>,
    rng: StdRng,
    /// First iteration index to execute (0 fresh, `completed` resumed).
    start_iteration: usize,
    /// Whether the fixpoint was already reached (resume of a final
    /// checkpoint skips straight to the assignment sweep).
    stable: bool,
    /// Telemetry records accumulated for checkpoints (empty when
    /// checkpointing is off — then nothing ever reads them).
    records: Vec<IterationRecord>,
    /// The incremental engine's (sequence, cluster) similarity cache.
    /// Stays empty — and costs nothing — unless `params.incremental`.
    cache: SimilarityCache,
    /// Completed-iteration number of the last successfully written
    /// checkpoint, i.e. the base the next delta checkpoint references.
    /// `None` until a full checkpoint exists (or when incremental is off).
    ckpt_base: Option<usize>,
    /// Ids of clusters seeded, mutated, merged into, or rebuilt since
    /// `ckpt_base` — exactly the bodies the next delta must carry.
    changed_since_base: BTreeSet<usize>,
}

/// The CLUSEQ algorithm, configured and ready to run.
///
/// ```
/// use cluseq_core::{Cluseq, CluseqParams};
/// use cluseq_seq::SequenceDatabase;
///
/// let db = SequenceDatabase::from_strs(
///     std::iter::repeat("ababababab").take(20)
///         .chain(std::iter::repeat("cdcdcdcdcd").take(20)),
/// );
/// let outcome = Cluseq::new(
///     CluseqParams::default().with_significance(3).with_initial_clusters(2),
/// )
/// .run(&db);
/// assert!(outcome.cluster_count() >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct Cluseq {
    params: CluseqParams,
}

impl Cluseq {
    /// Creates a runner with the given parameters.
    pub fn new(params: CluseqParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CluseqParams {
        &self.params
    }

    /// Clusters `store`, consuming nothing: the store is only read. Any
    /// [`SequenceStore`] works — an in-memory
    /// [`SequenceDatabase`](cluseq_seq::SequenceDatabase) coerces here
    /// directly, and a [`cluseq_seq::FileStore`] runs the identical
    /// algorithm out of core (bit-identical output; see the store docs).
    ///
    /// # Panics
    ///
    /// Panics if the store is empty or the parameters are inconsistent
    /// with its alphabet.
    pub fn run(&self, store: &dyn SequenceStore) -> CluseqOutcome {
        self.run_observed(store, &mut NoopObserver)
    }

    /// [`Cluseq::run`] with a per-iteration progress callback — each
    /// iteration's [`IterationStats`] is delivered as soon as the
    /// iteration finishes (the CLI's `--verbose` live log). For the full
    /// per-iteration telemetry, use [`Cluseq::run_observed`].
    pub fn run_with_progress(
        &self,
        store: &dyn SequenceStore,
        progress: impl FnMut(&IterationStats),
    ) -> CluseqOutcome {
        struct ProgressObserver<F>(F);
        impl<F: FnMut(&IterationStats)> RunObserver for ProgressObserver<F> {
            fn on_iteration(&mut self, record: &IterationRecord) {
                (self.0)(&record.stats());
            }
        }
        self.run_observed(store, &mut ProgressObserver(progress))
    }

    /// [`Cluseq::run`] with a telemetry sink: `observer` receives the run
    /// context, one [`IterationRecord`] per completed iteration, and a
    /// final [`RunSummary`] (see [`crate::telemetry`]). Every counter
    /// delivered to the observer is deterministic — only the wall-clock
    /// fields vary across runs and thread counts.
    pub fn run_observed(
        &self,
        store: &dyn SequenceStore,
        observer: &mut dyn RunObserver,
    ) -> CluseqOutcome {
        self.run_inner(store, observer, None)
    }

    /// [`Cluseq::run_observed`] with live tracing: when `trace` is `Some`,
    /// the session's registry, spans, JSONL stream, and exporter follow
    /// the run (see [`crate::trace`]). Tracing never perturbs the
    /// clustering — the outcome and every deterministic telemetry counter
    /// are byte-identical to the untraced run.
    pub fn run_traced(
        &self,
        store: &dyn SequenceStore,
        observer: &mut dyn RunObserver,
        trace: Option<&TraceSession>,
    ) -> CluseqOutcome {
        self.run_inner(store, observer, trace)
    }

    fn run_inner(
        &self,
        store: &dyn SequenceStore,
        observer: &mut dyn RunObserver,
        trace: Option<&TraceSession>,
    ) -> CluseqOutcome {
        assert!(!store.is_empty(), "cannot cluster an empty database");
        let alphabet_size = store.alphabet().len();
        self.params.validate(alphabet_size);
        let p = &self.params;
        let n = store.len();

        let ctx = RunContext {
            sequences: n,
            alphabet_size,
            threads: p.threads,
            scan_mode: p.scan_mode,
            seed: p.seed,
            initial_log_t: p.initial_threshold.ln(),
        };
        observer.on_run_start(&ctx);
        if let Some(t) = trace {
            t.event_run_start(&ctx, p.scan_kernel);
            t.gauge_set_f64(Gauge::ThresholdLogT, ctx.initial_log_t);
            t.sync();
        }

        self.drive(
            store,
            observer,
            trace,
            LoopState {
                clusters: Vec::new(),
                next_id: 0,
                log_t: p.initial_threshold.ln(),
                threshold_frozen: !p.adjust_threshold,
                history: Vec::new(),
                prev_new: 0,
                prev_removed: 0,
                prev_cluster_count: 0,
                prev_best: vec![None; n],
                rng: StdRng::seed_from_u64(p.seed),
                start_iteration: 0,
                stable: false,
                records: Vec::new(),
                cache: SimilarityCache::new(n),
                ckpt_base: None,
                changed_since_base: BTreeSet::new(),
            },
        )
    }

    /// Continues a checkpointed run to completion (see
    /// [`crate::checkpoint`]). The parameters stored *in the checkpoint*
    /// drive the continuation, so the result is bit-identical — outcome
    /// and [`crate::telemetry::RunReport::counters_json`] — to the
    /// uninterrupted run the checkpoint was taken from.
    ///
    /// # Panics
    ///
    /// Panics if `db` is not the database the checkpoint was taken on
    /// (sequence count, alphabet size, and content digest are all
    /// checked). Call [`Checkpoint::verify_database`] first to handle a
    /// mismatch gracefully.
    pub fn resume(checkpoint: Checkpoint, store: &dyn SequenceStore) -> CluseqOutcome {
        Self::resume_observed(checkpoint, store, &mut NoopObserver)
    }

    /// [`Cluseq::resume`] with a telemetry sink. The observer receives the
    /// run context, then [`RunObserver::on_resume`], then the checkpoint's
    /// stored iteration records replayed in order, then the live records of
    /// the remaining iterations — the full sequence an uninterrupted
    /// observed run would have delivered.
    pub fn resume_observed(
        checkpoint: Checkpoint,
        store: &dyn SequenceStore,
        observer: &mut dyn RunObserver,
    ) -> CluseqOutcome {
        Self::resume_inner(checkpoint, store, observer, None)
    }

    /// [`Cluseq::resume_observed`] with live tracing. When the
    /// [`crate::TraceConfig`] points at the trace file of the interrupted
    /// run, the session continues its JSONL stream in place — the `resume`
    /// event is the marker [`crate::trace::sink::stitch_iterations`] uses
    /// to splice the iteration history back together.
    pub fn resume_traced(
        checkpoint: Checkpoint,
        store: &dyn SequenceStore,
        observer: &mut dyn RunObserver,
        trace: Option<&TraceSession>,
    ) -> CluseqOutcome {
        Self::resume_inner(checkpoint, store, observer, trace)
    }

    fn resume_inner(
        checkpoint: Checkpoint,
        store: &dyn SequenceStore,
        observer: &mut dyn RunObserver,
        trace: Option<&TraceSession>,
    ) -> CluseqOutcome {
        assert!(!store.is_empty(), "cannot cluster an empty database");
        if let Err(mismatch) = checkpoint.verify_database(store) {
            panic!("cannot resume: {mismatch}");
        }
        let alphabet_size = store.alphabet().len();
        checkpoint.params.validate(alphabet_size);
        let runner = Cluseq::new(checkpoint.params.clone());
        let p = &runner.params;

        let ctx = RunContext {
            sequences: store.len(),
            alphabet_size,
            threads: p.threads,
            scan_mode: p.scan_mode,
            seed: p.seed,
            initial_log_t: p.initial_threshold.ln(),
        };
        observer.on_run_start(&ctx);
        let info = ResumeInfo {
            completed: checkpoint.completed,
            version: Checkpoint::VERSION,
        };
        observer.on_resume(&info);
        if let Some(t) = trace {
            t.event_run_start(&ctx, p.scan_kernel);
            t.event_resume(&info);
            t.gauge_set(Gauge::Iteration, checkpoint.completed as u64);
            t.gauge_set(Gauge::ClustersLive, checkpoint.clusters.len() as u64);
            t.gauge_set_f64(Gauge::ThresholdLogT, checkpoint.log_t);
            t.sync();
        }
        {
            let _span = trace.map(|t| t.span(Phase::Resume));
            if observer.enabled() {
                for record in &checkpoint.records {
                    observer.on_iteration(record);
                }
            }
        }

        // The checkpoint's cache columns rebuild the incremental engine's
        // warm state; resuming with a cold cache would also be correct
        // (the cache only elides provably identical evaluations) but
        // would re-pay one full scan. The resumed-from checkpoint is the
        // base for the next delta — it is on disk by construction.
        let cache = if p.incremental {
            SimilarityCache::from_columns(store.len(), checkpoint.cache)
        } else {
            SimilarityCache::new(store.len())
        };
        let ckpt_base = p.incremental.then_some(checkpoint.completed);
        runner.drive(
            store,
            observer,
            trace,
            LoopState {
                clusters: checkpoint.clusters,
                next_id: checkpoint.next_id,
                log_t: checkpoint.log_t,
                threshold_frozen: checkpoint.threshold_frozen,
                history: checkpoint.history,
                prev_new: checkpoint.prev_new,
                prev_removed: checkpoint.prev_removed,
                prev_cluster_count: checkpoint.prev_cluster_count,
                prev_best: checkpoint.prev_best,
                rng: StdRng::from_state(checkpoint.rng_state),
                start_iteration: checkpoint.completed,
                stable: checkpoint.stable,
                records: checkpoint.records,
                cache,
                ckpt_base,
                changed_since_base: BTreeSet::new(),
            },
        )
    }

    /// The iteration loop proper, shared by fresh and resumed runs: seeds,
    /// scans, consolidates, adjusts the threshold, and — when a
    /// [`crate::CheckpointPolicy`] is configured — writes a checkpoint at
    /// every cadence boundary and at the fixpoint.
    fn drive(
        &self,
        store: &dyn SequenceStore,
        observer: &mut dyn RunObserver,
        trace: Option<&TraceSession>,
        mut st: LoopState,
    ) -> CluseqOutcome {
        let p = &self.params;
        let run_start = std::time::Instant::now();
        let background = store.background();
        let pst_params = p.pst_params();
        let alphabet_size = store.alphabet().len();
        let n = store.len();
        // The guard digest is the same for every checkpoint of the run.
        let guard_digest = p.checkpoint.as_ref().map(|_| db_digest(store));
        // The paged model cache lives for the whole run: scan automata of
        // clusters whose model did not change survive across iterations
        // up to the byte budget (see `crate::models`). `None` preserves
        // the compile-per-scan behaviour exactly.
        let mut models = p.model_cache_mb.map(ModelCache::with_budget_mb);

        let first = if st.stable {
            p.max_iterations // fixpoint already reached: skip the loop
        } else {
            st.start_iteration
        };
        for iteration in first..p.max_iterations {
            // The iteration span closes at the end of the loop body, so
            // the checkpoint-save span nests under it.
            let _iter_span = trace.map(|t| t.span(Phase::Iteration));
            let iter_start = std::time::Instant::now();
            let clusters_at_start = st.clusters.len();

            // ---- 1. New cluster generation (§4.1) ----
            let seed_span = trace.map(|t| t.span(Phase::Seeding));
            let seed_start = std::time::Instant::now();
            let k_n_target = if iteration == 0 {
                p.initial_clusters
            } else {
                growth_count(st.clusters.len(), st.prev_new, st.prev_removed)
            };
            let unclustered = unclustered_ids(n, &st.clusters);
            let (seeds, seed_metrics) = select_seeds_detailed(
                store,
                &background,
                &st.clusters,
                &unclustered,
                k_n_target,
                p.sample_factor,
                pst_params,
                p.threads,
                p.scan_kernel,
                &mut st.rng,
                trace,
            );
            let k_n = seeds.len();
            if !seeds.is_empty() {
                let mut reader = store.reader();
                for seed in seeds {
                    if p.incremental {
                        st.changed_since_base.insert(st.next_id);
                    }
                    st.clusters.push(Cluster::from_seed(
                        st.next_id,
                        seed,
                        &reader.sequence(seed),
                        alphabet_size,
                        pst_params,
                    ));
                    st.next_id += 1;
                }
            }
            let seeding_nanos = seed_start.elapsed().as_nanos() as u64;
            drop(seed_span);

            // ---- 2. Re-clustering scan (§4.2) ----
            // Records are assembled for a live observer *or* for the
            // checkpoint stream — a resumed run must be able to replay
            // them into any observer, so they cannot depend on the
            // original run's observer being enabled. Computed before the
            // scan because it also gates early-exit pruning: a recorded
            // iteration feeds every similarity into its histogram
            // snapshot, so pruning is only allowed once the threshold is
            // frozen *and* nothing is being recorded.
            let record_iteration = observer.enabled() || p.checkpoint.is_some();
            let order = p.order.sequence_order(n, &st.prev_best, &mut st.rng);
            // The histogram feed is read below iff the threshold is still
            // live or the iteration is recorded; the same condition gates
            // early-exit pruning (a pruned pair forfeits its sample) and
            // sample collection (skipping unread samples bounds the scan's
            // O(n·k) buffer on large runs).
            let histogram_live = !st.threshold_frozen || record_iteration;
            let scan = recluster_full(
                store,
                &mut st.clusters,
                st.log_t,
                &order,
                &background,
                ScanOptions {
                    mode: p.scan_mode,
                    rebuild_psts: p.rebuild_psts,
                    threads: p.threads,
                    kernel: p.scan_kernel,
                    prune_below: (!histogram_live).then_some(st.log_t),
                    trace,
                    scan_shard: p.scan_shard,
                    collect_similarities: histogram_live,
                },
                p.incremental.then_some(&mut st.cache),
                models.as_mut(),
            );
            if p.incremental {
                st.changed_since_base.extend(scan.changed_clusters.iter());
            }

            // ---- 3. Consolidation (§4.5) ----
            let consolidate_start = std::time::Instant::now();
            let mut merge_targets = Vec::new();
            let consolidation = consolidate_traced(
                &mut st.clusters,
                p.effective_min_exclusive(),
                n,
                p.consolidation,
                trace,
                &mut merge_targets,
            );
            let removed = consolidation.dismissed;
            if let Some(mc) = models.as_mut() {
                // Consolidation mutates models outside the scan: a merge
                // target absorbed another cluster's model, so its cached
                // automaton is stale, and dismissed clusters' automata are
                // dead weight against the byte budget.
                for &id in &merge_targets {
                    mc.invalidate(id);
                }
                let live: BTreeSet<usize> = st.clusters.iter().map(|c| c.id).collect();
                mc.retain_live(|id| live.contains(&id));
            }
            if p.incremental {
                // A merge target absorbed another cluster's members: its
                // model changed, so its cached column is stale and its
                // body must travel in the next delta. Columns of dismissed
                // clusters are dropped wholesale.
                for &id in &merge_targets {
                    st.cache.invalidate(id);
                    st.changed_since_base.insert(id);
                }
                let live: BTreeSet<usize> = st.clusters.iter().map(|c| c.id).collect();
                st.cache.retain_live(|id| live.contains(&id));
            }
            let consolidate_nanos = consolidate_start.elapsed().as_nanos() as u64;

            // ---- 4. Threshold adjustment (§4.6) ----
            let threshold_span = trace.map(|t| t.span(Phase::Threshold));
            let threshold_start = std::time::Instant::now();
            let log_t_before = st.log_t;
            let mut moved = false;
            let mut valley = None;
            // The histogram is needed for adjustment while it is live, and
            // for the record (an observer sees every iteration's
            // distribution, frozen or not).
            let hist = if histogram_live {
                build_histogram(&scan.similarities, p.histogram_buckets)
            } else {
                None
            };
            if !st.threshold_frozen {
                if let Some(hist) = &hist {
                    let decision = decide_threshold_traced(st.log_t, hist, 0.01, trace);
                    valley = decision.valley;
                    // The paper requires t >= 1 for a meaningful
                    // outlier separation; clamp the log to 0.
                    st.log_t = decision.log_t.max(0.0);
                    moved = decision.moved;
                    if !decision.moved {
                        st.threshold_frozen = true; // within 1%: stop adjusting
                    }
                }
            }
            let threshold_nanos = threshold_start.elapsed().as_nanos() as u64;
            drop(threshold_span);

            let phase_nanos = PhaseNanos {
                seeding: seeding_nanos,
                scan_score: scan.score_nanos,
                scan_absorb: scan.absorb_nanos,
                consolidate: consolidate_nanos,
                threshold: threshold_nanos,
                total: iter_start.elapsed().as_nanos() as u64,
            };
            let stats = IterationStats {
                iteration,
                new_clusters: k_n,
                removed_clusters: removed,
                clusters_at_end: st.clusters.len(),
                membership_changes: scan.changes,
                log_t: st.log_t,
                threshold_moved: moved,
            };
            if record_iteration {
                let exclusive = exclusive_member_counts(&st.clusters, n);
                let cluster_snapshots = st
                    .clusters
                    .iter()
                    .zip(&exclusive)
                    .map(|(c, &ex)| {
                        let f = c.pst.footprint();
                        ClusterSnapshot {
                            id: c.id,
                            members: c.size(),
                            exclusive_members: ex,
                            pst_nodes: f.nodes,
                            pst_bytes: f.bytes,
                            pst_total_count: f.total_count,
                        }
                    })
                    .collect();
                let record = IterationRecord {
                    iteration,
                    clusters_at_start,
                    seeding: seed_metrics,
                    scan: scan.metrics,
                    removed_clusters: removed,
                    merged_clusters: consolidation.merged,
                    clusters_at_end: st.clusters.len(),
                    histogram: hist.as_ref().map(HistogramSnapshot::capture),
                    valley,
                    log_t_before,
                    log_t_after: st.log_t,
                    threshold_moved: moved,
                    clusters: cluster_snapshots,
                    timings: phase_nanos,
                };
                if observer.enabled() {
                    observer.on_iteration(&record);
                }
                if p.checkpoint.is_some() {
                    st.records.push(record);
                }
            }
            st.history.push(stats);

            // ---- Termination (§4): the clustering is a fixpoint ----
            // A fixpoint requires the threshold to have settled too: if t
            // just moved, the next scan can expel members and re-open the
            // seed pool, so the clustering is not final yet.
            let stable = iteration > 0
                && st.clusters.len() == st.prev_cluster_count
                && scan.changes == 0
                && k_n == removed // the only activity was churn consolidation undid
                && !moved;

            st.prev_new = k_n;
            st.prev_removed = removed;
            st.prev_cluster_count = st.clusters.len();
            st.prev_best = scan.best_cluster;

            // ---- Trace boundary ----
            // The iteration event is emitted and fsynced *before* any
            // checkpoint write, so the trace on disk always covers at
            // least as many iterations as any checkpoint.
            if let Some(t) = trace {
                t.add(Counter::SeedCandidatesSampled, seed_metrics.sampled as u64);
                t.add(Counter::SeedsChosen, k_n as u64);
                t.gauge_set(Gauge::Iteration, iteration as u64 + 1);
                t.gauge_set(Gauge::ClustersLive, st.clusters.len() as u64);
                t.gauge_set_f64(Gauge::ThresholdLogT, st.log_t);
                t.observe(HistKind::IterationWall, 0, trace::nanos_since(iter_start));
                t.event_iteration(&IterationEvent {
                    iteration,
                    clusters_at_start,
                    new_clusters: k_n,
                    removed_clusters: removed,
                    clusters_live: st.clusters.len(),
                    membership_changes: scan.changes,
                    pairs_scored: scan.metrics.pairs_scored,
                    pairs_pruned: scan.metrics.pairs_pruned,
                    pairs_reused: scan.metrics.pairs_reused,
                    joins: scan.metrics.joins,
                    new_joins: scan.metrics.new_joins,
                    log_t: st.log_t,
                    threshold_moved: moved,
                    phases: phase_nanos,
                });
                t.sync();
            }

            // ---- Checkpoint (crash safety; see `crate::checkpoint`) ----
            // Written after the state advance so the file captures exactly
            // the boundary a resume continues from; the fixpoint always
            // gets a final checkpoint regardless of cadence. Writes are
            // best-effort durability: an I/O failure is reported through
            // the event and the run continues unharmed.
            if let Some(policy) = &p.checkpoint {
                let completed = iteration + 1;
                if completed % policy.every == 0 || stable {
                    let ckpt = Checkpoint {
                        params: p.clone(),
                        db_sequences: n,
                        db_alphabet: alphabet_size,
                        db_digest: guard_digest.expect("digest computed when policy set"),
                        store: store.kind(),
                        completed,
                        stable,
                        next_id: st.next_id,
                        log_t: st.log_t,
                        threshold_frozen: st.threshold_frozen,
                        rng_state: st.rng.state(),
                        prev_new: st.prev_new,
                        prev_removed: st.prev_removed,
                        prev_cluster_count: st.prev_cluster_count,
                        prev_best: st.prev_best.clone(),
                        history: st.history.clone(),
                        clusters: st.clusters.clone(),
                        records: st.records.clone(),
                        cache: st
                            .cache
                            .columns()
                            .map(|(id, col)| (id, col.to_vec()))
                            .collect(),
                    };
                    let path = policy.path_for(completed);
                    let write_start = std::time::Instant::now();
                    // With the incremental engine on and a base on disk,
                    // write a delta: unchanged cluster bodies become
                    // id-only references into the base chain. A failed
                    // write keeps the old base and its changed-set, so
                    // the next attempt still references a file that
                    // exists.
                    let result = match st.ckpt_base.filter(|_| p.incremental) {
                        Some(base) => ckpt.write_atomic_delta_traced(
                            &path,
                            base,
                            &st.changed_since_base,
                            trace,
                        ),
                        None => ckpt.write_atomic_traced(&path, trace),
                    };
                    let write_nanos = write_start.elapsed().as_nanos() as u64;
                    let bytes = result.as_ref().copied().unwrap_or(0);
                    if result.is_ok() && p.incremental {
                        st.ckpt_base = Some(completed);
                        st.changed_since_base.clear();
                    }
                    if let Some(t) = trace {
                        t.event_checkpoint(completed, bytes, write_nanos, result.is_ok());
                        t.sync();
                    }
                    observer.on_checkpoint(&CheckpointEvent {
                        completed,
                        path: path.to_string_lossy().into_owned(),
                        bytes,
                        write_nanos,
                        error: result.err().map(|e| e.to_string()),
                    });
                }
            }

            if stable {
                break;
            }
        }

        let finalize_start = std::time::Instant::now();
        drop(models); // nothing below scans against cached automata
        let (outcome, pairs_pruned) =
            self.finalize(store, st.clusters, st.log_t, st.history, trace);
        let summary = RunSummary {
            iterations: outcome.iterations,
            clusters: outcome.cluster_count(),
            outliers: outcome.outliers.len(),
            final_log_t: outcome.final_log_t,
            pairs_pruned,
            finalize_nanos: finalize_start.elapsed().as_nanos() as u64,
            total_nanos: run_start.elapsed().as_nanos() as u64,
        };
        observer.on_run_end(&summary);
        if let Some(t) = trace {
            t.event_run_end(&summary);
            t.sync();
        }
        outcome
    }

    /// Final assignment pass: score every sequence against the surviving
    /// clusters so the reported memberships reflect the *final* models and
    /// threshold (intermediate memberships can reference clusters that were
    /// later consolidated away). Returns the outcome and the number of
    /// (sequence, cluster) pairs the compiled kernel's early-exit bound
    /// skipped — always 0 under [`ScanKernel::Interpreted`]. Pruning here
    /// needs no gating: a pruned pair is provably below the threshold, so
    /// memberships, best clusters, and outliers are unaffected.
    fn finalize(
        &self,
        store: &dyn SequenceStore,
        mut clusters: Vec<Cluster>,
        log_t: f64,
        history: Vec<IterationStats>,
        trace: Option<&TraceSession>,
    ) -> (CluseqOutcome, u64) {
        let _span = trace.map(|t| t.span(Phase::Finalize));
        let background = store.background();
        let n = store.len();
        let mut best_cluster = vec![None::<usize>; n];
        let mut best_score = vec![f64::NEG_INFINITY; n];
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); clusters.len()];

        let automata: Option<Vec<ClusterAutomaton>> =
            self.params.scan_kernel.uses_automaton().then(|| {
                parallel_map(clusters.len(), self.params.threads, |slot| {
                    ClusterAutomaton::build(
                        &clusters[slot].pst,
                        &background,
                        self.params.scan_kernel,
                    )
                    .expect("automaton-backed kernel")
                })
            });

        // Scoring is read-only and embarrassingly parallel over sequences;
        // results are bit-identical for any thread count (see
        // [`crate::score`]).
        let chunk = plan_chunk(n, self.params.threads);
        let joins_per_seq: Vec<(Vec<(usize, f64)>, u64)> = parallel_map_with(
            n,
            self.params.threads,
            || store.reader(),
            |reader, seq_id| {
                let seq = reader.symbols(seq_id);
                let mut joins = Vec::new();
                let mut pruned = 0u64;
                match &automata {
                    Some(automata) => {
                        for (slot, automaton) in automata.iter().enumerate() {
                            match automaton.scan_bounded(seq, log_t) {
                                BoundedSimilarity::Exact(sim) => {
                                    if sim.log_sim >= log_t && !seq.is_empty() {
                                        joins.push((slot, sim.log_sim));
                                    }
                                }
                                BoundedSimilarity::Pruned => pruned += 1,
                            }
                        }
                    }
                    None => {
                        for (slot, cluster) in clusters.iter().enumerate() {
                            let sim = max_similarity_pst(&cluster.pst, &background, seq);
                            if sim.log_sim >= log_t && !seq.is_empty() {
                                joins.push((slot, sim.log_sim));
                            }
                        }
                    }
                }
                if let Some(t) = trace {
                    let shard = trace::shard_for(seq_id, chunk);
                    t.add_at(shard, Counter::PairsScored, clusters.len() as u64);
                    t.add_at(shard, Counter::PairsPruned, pruned);
                }
                (joins, pruned)
            },
        );
        let mut pairs_pruned = 0u64;
        for (seq_id, (joins, pruned)) in joins_per_seq.into_iter().enumerate() {
            pairs_pruned += pruned;
            for (slot, log_sim) in joins {
                members[slot].push(seq_id);
                if log_sim > best_score[seq_id] {
                    best_score[seq_id] = log_sim;
                    best_cluster[seq_id] = Some(slot);
                }
            }
        }
        for m in &mut members {
            m.sort_unstable();
        }
        for (cluster, m) in clusters.iter_mut().zip(members) {
            cluster.members = m;
        }
        let outliers: Vec<usize> = (0..n).filter(|&i| best_cluster[i].is_none()).collect();

        let outcome = CluseqOutcome {
            clusters,
            best_cluster,
            outliers,
            final_log_t: log_t,
            iterations: history.len(),
            history,
            background,
        };
        (outcome, pairs_pruned)
    }
}

/// The paper's growth rule: `k_n = k' · f` with
/// `f = max(k'_n − k'_c, 0) / k'_c`, clamped to `[0, 1]`; when nothing was
/// consolidated (`k'_c = 0`), `f = 1` (unchecked exponential growth phase).
fn growth_count(current_clusters: usize, prev_new: usize, prev_removed: usize) -> usize {
    let f = if prev_removed == 0 {
        1.0
    } else {
        (prev_new.saturating_sub(prev_removed)) as f64 / prev_removed as f64
    };
    let f = f.clamp(0.0, 1.0);
    (current_clusters as f64 * f).round() as usize
}

fn unclustered_ids(n: usize, clusters: &[Cluster]) -> Vec<usize> {
    let mut clustered = vec![false; n];
    for c in clusters {
        for &m in &c.members {
            clustered[m] = true;
        }
    }
    (0..n).filter(|&i| !clustered[i]).collect()
}

/// Builds the §4.6 similarity histogram. The domain is clipped at the
/// 98th percentile: a handful of extreme member-to-own-cluster scores
/// Builds the §4.6 similarity histogram over the full observed range, as
/// the paper specifies ("the granularity of the histogram is 1/n of the
/// domain"). Robust-clipping variants (drop values past a percentile or a
/// Tukey fence before bucketing) were evaluated and made the valley
/// detection *less* stable across workloads — the long member tail is
/// precisely what anchors the right-hand regression line's low slope.
fn build_histogram(sims: &[f64], buckets: usize) -> Option<Histogram> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &s in sims {
        lo = lo.min(s);
        hi = hi.max(s);
    }
    if !lo.is_finite() || !hi.is_finite() || hi - lo < 1e-9 {
        return None;
    }
    let mut h = Histogram::new(lo, hi, buckets);
    for &s in sims {
        h.add(s);
    }
    Some(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CluseqParams;
    use crate::order::ExaminationOrder;
    use cluseq_seq::SequenceDatabase;

    /// A small two-behaviour database with a couple of noise sequences.
    fn two_cluster_db() -> SequenceDatabase {
        let mut texts: Vec<String> = Vec::new();
        for i in 0..20 {
            let _ = i;
            texts.push("abababababababababababab".into());
            texts.push("ccacacaccacacaccacacacca".into());
        }
        // Outliers: alternating junk unlike either behaviour.
        texts.push("bcabcabacbacbabcbacbcab".into());
        texts.push("cbacbabcacbabcacbabcbca".into());
        SequenceDatabase::from_strs(texts.iter().map(|s| s.as_str()))
    }

    fn base_params() -> CluseqParams {
        CluseqParams::default()
            .with_significance(3)
            .with_max_depth(8)
            .with_seed(13)
    }

    #[test]
    fn recovers_two_planted_clusters() {
        let db = two_cluster_db();
        let outcome = Cluseq::new(base_params().with_initial_clusters(2)).run(&db);
        assert!(
            outcome.cluster_count() >= 2,
            "found {} clusters",
            outcome.cluster_count()
        );
        // The two big groups end up in different best clusters.
        let a = outcome.best_cluster[0];
        let c = outcome.best_cluster[1];
        assert!(a.is_some() && c.is_some());
        assert_ne!(a, c, "ab-repeats and ca-repeats must separate");
    }

    #[test]
    fn adapts_cluster_count_from_a_single_seed() {
        // The paper's headline claim: k = 1 still finds all clusters.
        let db = two_cluster_db();
        let outcome = Cluseq::new(base_params().with_initial_clusters(1)).run(&db);
        assert!(outcome.cluster_count() >= 2);
        assert_ne!(outcome.best_cluster[0], outcome.best_cluster[1]);
    }

    #[test]
    fn terminates_before_the_cap_on_stable_data() {
        let db = two_cluster_db();
        let outcome = Cluseq::new(base_params().with_initial_clusters(2)).run(&db);
        assert!(
            outcome.iterations < outcome.history.capacity().max(50),
            "should reach a fixpoint"
        );
        let last = outcome.history.last().unwrap();
        assert_eq!(last.membership_changes, 0, "fixpoint reached");
    }

    #[test]
    fn memberships_and_outliers_partition_consistently() {
        let db = two_cluster_db();
        let outcome = Cluseq::new(base_params()).run(&db);
        let in_any: std::collections::HashSet<usize> =
            outcome.membership_lists().into_iter().flatten().collect();
        for i in 0..db.len() {
            let clustered = in_any.contains(&i);
            let is_outlier = outcome.outliers.contains(&i);
            assert!(clustered != is_outlier, "sequence {i} must be exactly one");
            assert_eq!(outcome.best_cluster[i].is_some(), clustered);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let db = two_cluster_db();
        let a = Cluseq::new(base_params()).run(&db);
        let b = Cluseq::new(base_params()).run(&db);
        assert_eq!(a.cluster_count(), b.cluster_count());
        assert_eq!(a.best_cluster, b.best_cluster);
        assert_eq!(a.final_log_t, b.final_log_t);
    }

    #[test]
    fn random_order_also_converges() {
        let db = two_cluster_db();
        let params = base_params().with_order(ExaminationOrder::Random);
        let outcome = Cluseq::new(params).run(&db);
        assert!(outcome.cluster_count() >= 2);
    }

    #[test]
    fn growth_count_follows_the_paper() {
        // Nothing consolidated => f = 1 => double the cluster count.
        assert_eq!(growth_count(4, 4, 0), 4);
        // Everything new was consolidated => f = 0 => no new clusters.
        assert_eq!(growth_count(10, 3, 3), 0);
        assert_eq!(growth_count(10, 2, 5), 0);
        // Half survived => f = (4-2)/2 = 1 (clamped).
        assert_eq!(growth_count(6, 4, 2), 6);
        // f = (3-2)/2 = 0.5 => half of k'.
        assert_eq!(growth_count(8, 3, 2), 4);
    }

    #[test]
    fn histogram_of_constant_sims_is_none() {
        assert!(build_histogram(&[1.0, 1.0, 1.0], 10).is_none());
        assert!(build_histogram(&[], 10).is_none());
        assert!(build_histogram(&[0.5, 2.5], 10).is_some());
    }

    #[test]
    #[should_panic(expected = "empty database")]
    fn empty_database_is_rejected() {
        let db = SequenceDatabase::from_strs(std::iter::empty::<&str>());
        Cluseq::new(CluseqParams::default()).run(&db);
    }

    #[test]
    fn history_records_every_iteration() {
        let db = two_cluster_db();
        let outcome = Cluseq::new(base_params()).run(&db);
        assert_eq!(outcome.history.len(), outcome.iterations);
        for (i, h) in outcome.history.iter().enumerate() {
            assert_eq!(h.iteration, i);
        }
    }

    #[test]
    fn progress_callback_sees_every_iteration_in_order() {
        let db = two_cluster_db();
        let mut seen: Vec<usize> = Vec::new();
        let outcome = Cluseq::new(base_params()).run_with_progress(&db, |stats| {
            seen.push(stats.iteration);
        });
        assert_eq!(seen.len(), outcome.iterations);
        for (i, &it) in seen.iter().enumerate() {
            assert_eq!(it, i);
        }
        // The callback saw exactly what the history records.
        assert_eq!(seen.len(), outcome.history.len());
    }

    #[test]
    fn observed_run_matches_plain_run_and_records_every_iteration() {
        use crate::telemetry::RunReport;
        let db = two_cluster_db();
        let plain = Cluseq::new(base_params()).run(&db);
        let mut report = RunReport::new();
        let observed = Cluseq::new(base_params()).run_observed(&db, &mut report);

        // Observation must not perturb the clustering.
        assert_eq!(plain.best_cluster, observed.best_cluster);
        assert_eq!(plain.final_log_t.to_bits(), observed.final_log_t.to_bits());
        assert_eq!(plain.history, observed.history);

        // One record per iteration, consistent with the history.
        assert_eq!(report.iterations.len(), observed.iterations);
        for (record, stats) in report.iterations.iter().zip(&observed.history) {
            assert_eq!(&record.stats(), stats);
            assert_eq!(
                record.clusters_at_start + record.seeding.chosen - record.removed_clusters,
                record.clusters_at_end,
                "cluster lifecycle must balance"
            );
            assert_eq!(record.scan.pairs_scored, {
                let scored_against = record.clusters_at_start + record.seeding.chosen;
                (db.len() * scored_against) as u64
            });
            assert!(record.histogram.is_some(), "live threshold => histogram");
        }
        let ctx = report.context.expect("context recorded");
        assert_eq!(ctx.sequences, db.len());
        let summary = report.summary.expect("summary recorded");
        assert_eq!(summary.iterations, observed.iterations);
        assert_eq!(summary.clusters, observed.cluster_count());
        assert_eq!(summary.outliers, observed.outliers.len());
        assert_eq!(
            summary.final_log_t.to_bits(),
            observed.final_log_t.to_bits()
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        use crate::config::ScanMode;
        let db = two_cluster_db();
        for mode in [ScanMode::Incremental, ScanMode::Snapshot] {
            let serial = Cluseq::new(base_params().with_scan_mode(mode)).run(&db);
            let parallel = Cluseq::new(base_params().with_scan_mode(mode).with_threads(4)).run(&db);
            assert_eq!(serial.cluster_count(), parallel.cluster_count(), "{mode:?}");
            assert_eq!(serial.best_cluster, parallel.best_cluster, "{mode:?}");
            assert_eq!(
                serial.membership_lists(),
                parallel.membership_lists(),
                "{mode:?}"
            );
            assert_eq!(
                serial.final_log_t.to_bits(),
                parallel.final_log_t.to_bits(),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn snapshot_scan_mode_also_converges() {
        use crate::config::ScanMode;
        let db = two_cluster_db();
        let outcome = Cluseq::new(
            base_params()
                .with_initial_clusters(2)
                .with_scan_mode(ScanMode::Snapshot),
        )
        .run(&db);
        assert!(outcome.cluster_count() >= 2);
        assert_ne!(outcome.best_cluster[0], outcome.best_cluster[1]);
        assert_eq!(outcome.history.last().unwrap().membership_changes, 0);
    }

    #[test]
    fn threshold_adjustment_can_be_disabled() {
        let db = two_cluster_db();
        let params = base_params()
            .with_initial_threshold(1.5)
            .with_threshold_adjustment(false);
        let outcome = Cluseq::new(params).run(&db);
        assert!((outcome.final_t() - 1.5).abs() < 1e-9);
    }
}
