//! The incremental iteration engine: dirty-cluster tracking and a
//! (sequence, cluster) similarity cache.
//!
//! A converging CLUSEQ run spends almost all of its time re-scoring pairs
//! whose answer cannot have changed: once a cluster stops absorbing
//! segments, the similarity of every sequence to that cluster is a pure
//! function of inputs that are all frozen. This module holds the state
//! that lets the scan ([`crate::recluster`]) skip that work — enabled by
//! [`crate::CluseqParams::incremental`], off by default.
//!
//! # The cache invariant
//!
//! A [`SimilarityCache`] maps a **stable cluster id** to a *column*: one
//! [`BoundedSimilarity`] verdict per database sequence, indexed by
//! sequence id. The invariant, maintained by the scan and the driver
//! together, is:
//!
//! > A column is present for cluster `C` **only if** every entry equals
//! > the verdict a fresh evaluation of (sequence, `C`) would produce
//! > against `C`'s *current* model.
//!
//! Presence of a column is therefore exactly "cluster `C` is clean"; a
//! dirty cluster simply has no column. Anything that mutates a cluster's
//! model — a new join absorbing a segment mid-scan, a consolidation merge,
//! the `rebuild_psts` ablation — must remove (or never install) the
//! column. Because reused verdicts are bit-for-bit the values a fresh scan
//! would compute, an incremental run is **byte-identical** to a full run
//! in every clustering observable; only the reuse telemetry
//! (`pairs_reused`, `clusters_dirty`, `pst_recompiles`) differs from zero.
//!
//! Cached [`BoundedSimilarity::Pruned`] verdicts are safe to reuse for the
//! same reason: scan pruning is only enabled once the threshold is frozen,
//! so a pair pruned against an unchanged model at an unchanged threshold
//! would be pruned again.
//!
//! # Checkpointing
//!
//! The cache is part of the loop state a version-3 [`crate::Checkpoint`]
//! captures, so a resumed incremental run reuses exactly the pairs the
//! uninterrupted run would have — keeping even the reuse counters
//! byte-identical across a crash/resume boundary.

use std::collections::BTreeMap;

use crate::similarity::BoundedSimilarity;

/// Cached similarity verdicts for the clean clusters of a run (see the
/// [module docs](self) for the validity invariant).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimilarityCache {
    /// Database size; every column holds exactly this many entries.
    sequences: usize,
    /// Cluster id → verdict per sequence id. A `BTreeMap` so iteration
    /// (and therefore checkpoint serialization) is deterministic.
    columns: BTreeMap<usize, Vec<BoundedSimilarity>>,
}

impl SimilarityCache {
    /// An empty cache for a database of `sequences` sequences.
    pub fn new(sequences: usize) -> Self {
        Self {
            sequences,
            columns: BTreeMap::new(),
        }
    }

    /// The database size the cache was built for.
    pub fn sequences(&self) -> usize {
        self.sequences
    }

    /// The cached column for cluster `id`, if the cluster is clean.
    /// Entries are indexed by sequence id.
    pub fn column(&self, id: usize) -> Option<&[BoundedSimilarity]> {
        self.columns.get(&id).map(Vec::as_slice)
    }

    /// Whether cluster `id` is clean (has a valid column).
    pub fn is_clean(&self, id: usize) -> bool {
        self.columns.contains_key(&id)
    }

    /// Number of clean clusters.
    pub fn clean_count(&self) -> usize {
        self.columns.len()
    }

    /// Installs a freshly-scored column for cluster `id`, marking it
    /// clean. The caller asserts the column invariant: every entry was
    /// computed against the cluster's current (post-scan) model.
    ///
    /// # Panics
    ///
    /// Panics if the column length does not match the database size.
    pub fn install(&mut self, id: usize, column: Vec<BoundedSimilarity>) {
        assert_eq!(
            column.len(),
            self.sequences,
            "cache column must cover every sequence"
        );
        self.columns.insert(id, column);
    }

    /// Marks cluster `id` dirty, dropping its column (a no-op if it was
    /// already dirty).
    pub fn invalidate(&mut self, id: usize) {
        self.columns.remove(&id);
    }

    /// Drops every column whose cluster id fails `live` — called after
    /// consolidation so dismissed clusters do not pin stale columns.
    pub fn retain_live(&mut self, mut live: impl FnMut(usize) -> bool) {
        self.columns.retain(|&id, _| live(id));
    }

    /// Drops every column (the `rebuild_psts` ablation, which replaces
    /// every model each iteration).
    pub fn clear(&mut self) {
        self.columns.clear();
    }

    /// The columns in ascending cluster-id order — the checkpoint
    /// serializer's view.
    pub fn columns(&self) -> impl Iterator<Item = (usize, &[BoundedSimilarity])> {
        self.columns.iter().map(|(&id, col)| (id, col.as_slice()))
    }

    /// Rebuilds a cache from checkpointed columns.
    ///
    /// # Panics
    ///
    /// Panics if any column's length does not match `sequences`.
    pub fn from_columns(
        sequences: usize,
        columns: impl IntoIterator<Item = (usize, Vec<BoundedSimilarity>)>,
    ) -> Self {
        let mut cache = Self::new(sequences);
        for (id, col) in columns {
            cache.install(id, col);
        }
        cache
    }
}

/// Accumulates one cluster's fresh verdicts during a serial (incremental-
/// mode) scan, where the model can mutate mid-scan.
///
/// The builder is *poisoned* when its cluster's model mutates: entries
/// recorded before the mutation were computed against a model that no
/// longer exists, so the whole column is discarded rather than installed.
/// A builder that survives the scan unpoisoned with all `n` entries filled
/// yields a column satisfying the cache invariant — the model never
/// changed, so every entry reflects the final model.
#[derive(Debug)]
pub struct ColumnBuilder {
    entries: Vec<Option<BoundedSimilarity>>,
    filled: usize,
    poisoned: bool,
}

impl ColumnBuilder {
    /// A builder for a database of `sequences` sequences.
    pub fn new(sequences: usize) -> Self {
        Self {
            entries: vec![None; sequences],
            filled: 0,
            poisoned: false,
        }
    }

    /// Records the fresh verdict for `seq_id`. Recording the same sequence
    /// twice keeps the latest verdict (it can only arise from a re-scored
    /// pair after a mutation, which also poisons the builder).
    pub fn record(&mut self, seq_id: usize, verdict: BoundedSimilarity) {
        if self.entries[seq_id].is_none() {
            self.filled += 1;
        }
        self.entries[seq_id] = Some(verdict);
    }

    /// Marks the column unusable (the cluster's model mutated mid-scan).
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Whether the builder has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The finished column: `Some` only if the builder is unpoisoned and
    /// every sequence was recorded.
    pub fn finish(self) -> Option<Vec<BoundedSimilarity>> {
        if self.poisoned || self.filled != self.entries.len() {
            return None;
        }
        self.entries.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::SegmentSimilarity;

    fn exact(log_sim: f64) -> BoundedSimilarity {
        BoundedSimilarity::Exact(SegmentSimilarity {
            log_sim,
            start: 0,
            end: 1,
        })
    }

    #[test]
    fn install_lookup_invalidate_round_trip() {
        let mut cache = SimilarityCache::new(3);
        assert!(!cache.is_clean(7));
        cache.install(7, vec![exact(1.0), BoundedSimilarity::Pruned, exact(2.0)]);
        assert!(cache.is_clean(7));
        assert_eq!(cache.clean_count(), 1);
        let col = cache.column(7).unwrap();
        assert_eq!(col[0], exact(1.0));
        assert!(col[1].is_pruned());
        cache.invalidate(7);
        assert!(cache.column(7).is_none());
        assert_eq!(cache.clean_count(), 0);
    }

    #[test]
    #[should_panic(expected = "every sequence")]
    fn short_columns_are_rejected() {
        SimilarityCache::new(3).install(0, vec![exact(1.0)]);
    }

    #[test]
    fn retain_live_drops_dismissed_ids() {
        let mut cache = SimilarityCache::new(1);
        cache.install(1, vec![exact(0.5)]);
        cache.install(2, vec![exact(0.5)]);
        cache.install(5, vec![exact(0.5)]);
        cache.retain_live(|id| id != 2);
        assert!(cache.is_clean(1));
        assert!(!cache.is_clean(2));
        assert!(cache.is_clean(5));
    }

    #[test]
    fn columns_iterate_in_ascending_id_order() {
        let mut cache = SimilarityCache::new(1);
        for id in [9, 3, 6] {
            cache.install(id, vec![exact(id as f64)]);
        }
        let ids: Vec<usize> = cache.columns().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![3, 6, 9]);
        let rebuilt =
            SimilarityCache::from_columns(1, cache.columns().map(|(id, col)| (id, col.to_vec())));
        assert_eq!(rebuilt, cache);
    }

    #[test]
    fn builder_completes_only_when_full_and_unpoisoned() {
        let mut b = ColumnBuilder::new(2);
        b.record(1, exact(1.0));
        // Incomplete: sequence 0 missing.
        assert!(ColumnBuilder::new(2).finish().is_none());
        b.record(0, exact(0.0));
        let col = b.finish().expect("complete and unpoisoned");
        assert_eq!(col.len(), 2);

        let mut poisoned = ColumnBuilder::new(1);
        poisoned.record(0, exact(1.0));
        poisoned.poison();
        assert!(poisoned.is_poisoned());
        assert!(poisoned.finish().is_none());
    }

    #[test]
    fn builder_rerecord_keeps_latest() {
        let mut b = ColumnBuilder::new(1);
        b.record(0, exact(1.0));
        b.record(0, exact(2.0));
        assert_eq!(b.finish().unwrap()[0], exact(2.0));
    }
}
