//! Deterministic parallel scoring engine.
//!
//! Every hot path in CLUSEQ reduces to the same shape: a *pure* map over
//! (sequence, model) pairs — similarity evaluation reads the PSTs and
//! writes nothing. This module extracts that shape once so the scan, seed
//! selection, the online scorer, and the final assignment pass all share
//! it.
//!
//! # Determinism contract
//!
//! [`parallel_map`] guarantees **bit-identical output for every thread
//! count**, including 1. The input index range `0..n` is split into at
//! most `threads` *contiguous* chunks of `ceil(n / threads)` indices;
//! worker `t` evaluates chunk `t` in ascending index order, and the chunk
//! results are concatenated in chunk order. Because the function is
//! required to be pure (it cannot observe evaluation order), the resulting
//! vector is exactly `(0..n).map(f).collect()` — no atomics, no work
//! stealing, no reduction-order ambiguity. Floating-point results are
//! therefore reproducible to the bit, which is what lets the test suite
//! assert equality between serial and parallel runs instead of comparing
//! within a tolerance.

use std::borrow::Borrow;

use cluseq_pst::{CompiledPst, Pst};
use cluseq_seq::{BackgroundModel, Sequence, SequenceStore, Symbol};

use crate::cluster::Cluster;
use crate::config::ScanKernel;
use crate::incremental::SimilarityCache;
use crate::kernel::ClusterAutomaton;
use crate::similarity::{
    max_similarity_compiled, max_similarity_compiled_bounded, max_similarity_pst,
    max_similarity_pst_with_scratch, prune_count, BoundedSimilarity, SegmentSimilarity,
    BATCH_LANES,
};
use crate::trace::{self, Counter, HistKind, TraceSession};

/// Maps `f` over `0..n` using up to `threads` scoped worker threads.
///
/// Equivalent to `(0..n).map(f).collect()` for any pure `f`, regardless of
/// `threads` (see the module-level determinism contract). `threads` is
/// clamped to `[1, n]`; small inputs run serially to avoid spawn overhead.
///
/// # Panics
///
/// A panic in `f` aborts the whole map: the calling thread panics with
/// "scoring worker panicked".
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    // Below ~2 indices per worker the spawn cost dominates; the serial
    // path is *defined* to produce the same output, so this cutoff is a
    // pure performance choice.
    if threads == 1 || n < 2 * threads {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                let f = &f;
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scoring worker panicked"))
            .collect()
    })
}

/// [`parallel_map`] with per-worker scratch state.
///
/// `init` is called once per worker (once total on the serial path) and
/// the resulting state is threaded through every call that worker makes —
/// the shape the out-of-core scan needs, where each worker owns a
/// [`cluseq_seq::StoreReader`] with its own resident window. The chunk
/// layout, ordering, and output are *identical* to [`parallel_map`]: the
/// determinism contract requires `f` to be pure with respect to the
/// *returned values* (the state may buffer I/O, cache windows, or reuse
/// scratch allocations, but must never change what `f` returns for a
/// given index).
///
/// `S` needs no `Send` bound: each state is created and dropped inside
/// the worker thread that uses it.
///
/// # Panics
///
/// A panic in `init` or `f` aborts the whole map: the calling thread
/// panics with "scoring worker panicked".
pub fn parallel_map_with<S, T, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 2 * threads {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut state = init();
                    (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<T>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scoring worker panicked"))
            .collect()
    })
}

/// The chunk size [`parallel_map`] uses for `n` indices over `threads`
/// workers — `n` itself on the serial path, so that
/// [`trace::shard_for`]`(pos, plan_chunk(n, threads))` maps row `pos` to
/// the registry shard owned by the worker that evaluates it (shard 0 for
/// a serial map).
pub fn plan_chunk(n: usize, threads: usize) -> usize {
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 2 * threads {
        n.max(1)
    } else {
        n.div_ceil(threads)
    }
}

/// The result of [`ScoreEngine::score_sequences_cached`]: the verdict
/// rows plus what the cache did and did not save.
#[derive(Debug)]
pub struct CachedScorePass {
    /// `rows[pos][slot]` — verdicts in examination order (reused or
    /// fresh; see [`ScoreEngine::score_sequences_cached`]).
    pub rows: Vec<Vec<BoundedSimilarity>>,
    /// Wall time of the whole pass (dirty-slot automaton compiles plus
    /// scoring), in nanoseconds.
    pub nanos: u64,
    /// Slots scored fresh (no valid cached column), ascending.
    pub dirty_slots: Vec<usize>,
    /// Automata compiled — `dirty_slots.len()` under the compiled kernel,
    /// 0 under the interpreted one.
    pub compiles: u64,
}

/// A configured scorer: the thread count plus the similarity shapes the
/// algorithm needs.
///
/// All methods score against *fixed* models ("snapshot" semantics): the
/// caller decides when model updates happen, which keeps every method here
/// trivially parallel and deterministic.
#[derive(Debug, Clone, Copy)]
pub struct ScoreEngine {
    threads: usize,
}

impl ScoreEngine {
    /// An engine using up to `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Scores every sequence in `order` against every cluster model.
    ///
    /// `out[pos][slot]` is the similarity of sequence `order[pos]` to
    /// `clusters[slot]`, all evaluated against the models as passed in.
    ///
    /// Every scoring method takes the corpus as a [`SequenceStore`]: a
    /// resident [`cluseq_seq::SequenceDatabase`] coerces to the trait
    /// object and reads zero-copy, while a [`cluseq_seq::FileStore`]
    /// streams each worker's chunk through that worker's own windowed
    /// reader — the scores are bit-identical either way.
    pub fn score_sequences(
        &self,
        store: &dyn SequenceStore,
        clusters: &[Cluster],
        background: &BackgroundModel,
        order: &[usize],
    ) -> Vec<Vec<SegmentSimilarity>> {
        parallel_map_with(
            order.len(),
            self.threads,
            || store.reader(),
            |reader, pos| {
                let seq = reader.symbols(order[pos]);
                clusters
                    .iter()
                    .map(|cluster| max_similarity_pst(&cluster.pst, background, seq))
                    .collect()
            },
        )
    }

    /// [`score_sequences`](ScoreEngine::score_sequences) plus the wall
    /// time of the whole scoring pass in nanoseconds — the telemetry
    /// layer's `scan_score` phase attribution. The scores themselves are
    /// identical to the untimed call.
    pub fn score_sequences_timed(
        &self,
        store: &dyn SequenceStore,
        clusters: &[Cluster],
        background: &BackgroundModel,
        order: &[usize],
    ) -> (Vec<Vec<SegmentSimilarity>>, u64) {
        self.score_sequences_metered(store, clusters, background, order, None)
    }

    /// [`score_sequences_timed`](ScoreEngine::score_sequences_timed) that
    /// additionally records per-row metrics into `trace` when one is
    /// given: each worker writes `pairs_scored` and a `score_row` latency
    /// observation into its own registry shard, contention-free. Scores
    /// are identical either way — the registry is write-only here.
    pub fn score_sequences_metered(
        &self,
        store: &dyn SequenceStore,
        clusters: &[Cluster],
        background: &BackgroundModel,
        order: &[usize],
        trace: Option<&TraceSession>,
    ) -> (Vec<Vec<SegmentSimilarity>>, u64) {
        let start = std::time::Instant::now();
        let rows = match trace {
            None => self.score_sequences(store, clusters, background, order),
            Some(trace) => {
                let chunk = plan_chunk(order.len(), self.threads);
                parallel_map_with(
                    order.len(),
                    self.threads,
                    || store.reader(),
                    |reader, pos| {
                        let row_start = std::time::Instant::now();
                        let seq = reader.symbols(order[pos]);
                        let row: Vec<SegmentSimilarity> = clusters
                            .iter()
                            .map(|cluster| max_similarity_pst(&cluster.pst, background, seq))
                            .collect();
                        let shard = trace::shard_for(pos, chunk);
                        trace.add_at(shard, Counter::PairsScored, row.len() as u64);
                        trace.observe(HistKind::ScoreRow, shard, trace::nanos_since(row_start));
                        row
                    },
                )
            }
        };
        (rows, trace::nanos_since(start))
    }

    /// Compiles every cluster's PST into its scan automaton, in slot
    /// order. A helper for the compiled-kernel scoring paths; the compile
    /// cost is paid once per frozen model, then amortized over every
    /// sequence scored against it.
    pub fn compile_clusters(
        &self,
        clusters: &[Cluster],
        background: &BackgroundModel,
    ) -> Vec<CompiledPst> {
        parallel_map(clusters.len(), self.threads, |slot| {
            CompiledPst::compile(&clusters[slot].pst, background)
        })
    }

    /// [`score_sequences`](ScoreEngine::score_sequences) over precompiled
    /// automatons, with optional threshold early-exit.
    ///
    /// `compiled[slot]` must be the compilation of `clusters[slot]` against
    /// the same background model. With `prune_below = None` every entry is
    /// [`BoundedSimilarity::Exact`] and bit-identical to the interpreted
    /// engine; with `Some(log_t)`, pairs provably below `log_t` may come
    /// back [`BoundedSimilarity::Pruned`] instead (see
    /// [`max_similarity_compiled_bounded`]).
    pub fn score_sequences_compiled(
        &self,
        store: &dyn SequenceStore,
        compiled: &[CompiledPst],
        order: &[usize],
        prune_below: Option<f64>,
    ) -> Vec<Vec<BoundedSimilarity>> {
        parallel_map_with(
            order.len(),
            self.threads,
            || store.reader(),
            |reader, pos| {
                let seq = reader.symbols(order[pos]);
                compiled
                    .iter()
                    .map(|automaton| match prune_below {
                        Some(log_t) => max_similarity_compiled_bounded(automaton, seq, log_t),
                        None => BoundedSimilarity::Exact(max_similarity_compiled(automaton, seq)),
                    })
                    .collect()
            },
        )
    }

    /// [`score_sequences_compiled`](ScoreEngine::score_sequences_compiled)
    /// plus the wall time of the pass (including nothing else — the caller
    /// times compilation separately if it wants it attributed).
    pub fn score_sequences_compiled_timed(
        &self,
        store: &dyn SequenceStore,
        compiled: &[CompiledPst],
        order: &[usize],
        prune_below: Option<f64>,
    ) -> (Vec<Vec<BoundedSimilarity>>, u64) {
        self.score_sequences_compiled_metered(store, compiled, order, prune_below, None)
    }

    /// [`score_sequences_compiled_timed`](ScoreEngine::score_sequences_compiled_timed)
    /// with optional per-row metrics (see
    /// [`score_sequences_metered`](ScoreEngine::score_sequences_metered));
    /// pruned pairs additionally count into `pairs_pruned`, recorded by
    /// the worker that proved the prune.
    pub fn score_sequences_compiled_metered(
        &self,
        store: &dyn SequenceStore,
        compiled: &[CompiledPst],
        order: &[usize],
        prune_below: Option<f64>,
        trace: Option<&TraceSession>,
    ) -> (Vec<Vec<BoundedSimilarity>>, u64) {
        let start = std::time::Instant::now();
        let rows = match trace {
            None => self.score_sequences_compiled(store, compiled, order, prune_below),
            Some(trace) => {
                let chunk = plan_chunk(order.len(), self.threads);
                parallel_map_with(
                    order.len(),
                    self.threads,
                    || store.reader(),
                    |reader, pos| {
                        let row_start = std::time::Instant::now();
                        let seq = reader.symbols(order[pos]);
                        let row: Vec<BoundedSimilarity> = compiled
                            .iter()
                            .map(|automaton| match prune_below {
                                Some(log_t) => {
                                    max_similarity_compiled_bounded(automaton, seq, log_t)
                                }
                                None => BoundedSimilarity::Exact(max_similarity_compiled(
                                    automaton, seq,
                                )),
                            })
                            .collect();
                        let shard = trace::shard_for(pos, chunk);
                        trace.add_at(shard, Counter::PairsScored, row.len() as u64);
                        trace.add_at(shard, Counter::PairsPruned, prune_count(&row));
                        trace.observe(HistKind::ScoreRow, shard, trace::nanos_since(row_start));
                        row
                    },
                )
            }
        };
        (rows, trace::nanos_since(start))
    }

    /// Builds every cluster's [`ClusterAutomaton`] for `kernel`, in slot
    /// order. The generalization of
    /// [`compile_clusters`](ScoreEngine::compile_clusters) to every
    /// automaton-backed kernel.
    ///
    /// # Panics
    ///
    /// If `kernel` is [`ScanKernel::Interpreted`], which has no automaton.
    pub fn compile_cluster_automata(
        &self,
        clusters: &[Cluster],
        background: &BackgroundModel,
        kernel: ScanKernel,
    ) -> Vec<ClusterAutomaton> {
        assert!(
            kernel.uses_automaton(),
            "the interpreted kernel scans the tree directly"
        );
        parallel_map(clusters.len(), self.threads, |slot| {
            ClusterAutomaton::build(&clusters[slot].pst, background, kernel)
                .expect("automaton-backed kernel")
        })
    }

    /// [`score_sequences_compiled`](ScoreEngine::score_sequences_compiled)
    /// generalized over [`ClusterAutomaton`]s: scores every sequence in
    /// `order` against every automaton, honoring `prune_below`.
    ///
    /// `kernel` selects the *driver*, not the tables (those are baked into
    /// `automata`): under [`ScanKernel::Batched`] the order is split into
    /// [`BATCH_LANES`]-wide groups and each group is scanned through the
    /// interleaved batch driver — per-lane results are bit-identical to
    /// the per-pair scan, so the choice reorders memory traffic, never
    /// arithmetic. Every other kernel scans row by row.
    ///
    /// `automata` is generic over [`Borrow`] so both owned
    /// `[ClusterAutomaton]` slices and `[std::sync::Arc<ClusterAutomaton>]`
    /// slices handed out by the model cache score identically.
    pub fn score_sequences_automata<A: Borrow<ClusterAutomaton> + Sync>(
        &self,
        store: &dyn SequenceStore,
        automata: &[A],
        order: &[usize],
        prune_below: Option<f64>,
        kernel: ScanKernel,
    ) -> Vec<Vec<BoundedSimilarity>> {
        self.score_sequences_automata_metered(store, automata, order, prune_below, kernel, None)
            .0
    }

    /// [`score_sequences_automata`](ScoreEngine::score_sequences_automata)
    /// plus wall time, with optional per-worker metrics. Pair counters
    /// total identically under both drivers; the `score_row` latency
    /// histogram records one observation per row (per-pair driver) or per
    /// lane group (batched driver).
    #[allow(clippy::too_many_arguments)]
    pub fn score_sequences_automata_metered<A: Borrow<ClusterAutomaton> + Sync>(
        &self,
        store: &dyn SequenceStore,
        automata: &[A],
        order: &[usize],
        prune_below: Option<f64>,
        kernel: ScanKernel,
        trace: Option<&TraceSession>,
    ) -> (Vec<Vec<BoundedSimilarity>>, u64) {
        let start = std::time::Instant::now();
        let rows = if kernel == ScanKernel::Batched {
            let n_groups = order.len().div_ceil(BATCH_LANES);
            let chunk = plan_chunk(n_groups, self.threads);
            let group_rows: Vec<Vec<Vec<BoundedSimilarity>>> = parallel_map_with(
                n_groups,
                self.threads,
                || store.reader(),
                |reader, g| {
                    let group_start = std::time::Instant::now();
                    let lo = g * BATCH_LANES;
                    let hi = (lo + BATCH_LANES).min(order.len());
                    // The batch driver needs every lane's symbols alive at
                    // once; a reader hands out one slice at a time, so the
                    // lanes are copied into an owned arena first.
                    let lanes: Vec<Sequence> =
                        (lo..hi).map(|pos| reader.sequence(order[pos])).collect();
                    let seqs: Vec<&[Symbol]> = lanes.iter().map(Sequence::symbols).collect();
                    let mut rows: Vec<Vec<BoundedSimilarity>> = (lo..hi)
                        .map(|_| Vec::with_capacity(automata.len()))
                        .collect();
                    for automaton in automata {
                        let lane_verdicts = automaton.borrow().scan_batch(&seqs, prune_below);
                        for (lane, verdict) in lane_verdicts.into_iter().enumerate() {
                            rows[lane].push(verdict);
                        }
                    }
                    if let Some(trace) = trace {
                        let shard = trace::shard_for(g, chunk);
                        let scored = (rows.len() * automata.len()) as u64;
                        let pruned: u64 = rows.iter().map(|row| prune_count(row)).sum();
                        trace.add_at(shard, Counter::PairsScored, scored);
                        trace.add_at(shard, Counter::PairsPruned, pruned);
                        trace.observe(HistKind::ScoreRow, shard, trace::nanos_since(group_start));
                    }
                    rows
                },
            );
            group_rows.into_iter().flatten().collect()
        } else {
            let chunk = plan_chunk(order.len(), self.threads);
            parallel_map_with(
                order.len(),
                self.threads,
                || store.reader(),
                |reader, pos| {
                    let row_start = std::time::Instant::now();
                    let seq = reader.symbols(order[pos]);
                    let row: Vec<BoundedSimilarity> = automata
                        .iter()
                        .map(|automaton| automaton.borrow().scan_pruned(seq, prune_below))
                        .collect();
                    if let Some(trace) = trace {
                        let shard = trace::shard_for(pos, chunk);
                        trace.add_at(shard, Counter::PairsScored, row.len() as u64);
                        trace.add_at(shard, Counter::PairsPruned, prune_count(&row));
                        trace.observe(HistKind::ScoreRow, shard, trace::nanos_since(row_start));
                    }
                    row
                },
            )
        };
        (rows, trace::nanos_since(start))
    }

    /// A snapshot scoring pass that reuses cached columns for clean
    /// clusters and scores only dirty ones (see [`crate::incremental`]).
    ///
    /// `rows[pos][slot]` is the verdict of sequence `order[pos]` against
    /// `clusters[slot]`: read straight from `cache` when the cluster has a
    /// valid column, computed fresh otherwise. Fresh verdicts use `kernel`
    /// (automata are built here, for dirty slots only) and honor
    /// `prune_below` under the automaton kernels, exactly like the
    /// uncached paths — so with an empty cache the rows are bit-identical
    /// to
    /// [`score_sequences_compiled_metered`](ScoreEngine::score_sequences_compiled_metered)
    /// (or the interpreted equivalent wrapped in
    /// [`BoundedSimilarity::Exact`]). Dirty slots are always scored
    /// per-pair, even under [`ScanKernel::Batched`] — legal because the
    /// batched driver is bit-identical to the per-pair scan — and under
    /// [`ScanKernel::Quantized`] the verdicts are byte-stable (pure
    /// integer DP), so a column cached by one pass and reused by the next
    /// upholds the cache's replay invariant.
    ///
    /// When `trace` is given, each worker records `pairs_scored` and
    /// `pairs_pruned` for its *fresh* pairs and `pairs_reused` for its
    /// cache hits, into its own shard.
    #[allow(clippy::too_many_arguments)]
    pub fn score_sequences_cached(
        &self,
        store: &dyn SequenceStore,
        clusters: &[Cluster],
        background: &BackgroundModel,
        order: &[usize],
        kernel: ScanKernel,
        prune_below: Option<f64>,
        cache: &SimilarityCache,
        trace: Option<&TraceSession>,
    ) -> CachedScorePass {
        let start = std::time::Instant::now();
        let columns: Vec<Option<&[BoundedSimilarity]>> =
            clusters.iter().map(|c| cache.column(c.id)).collect();
        let dirty_slots: Vec<usize> = columns
            .iter()
            .enumerate()
            .filter_map(|(slot, col)| col.is_none().then_some(slot))
            .collect();
        // Build automata for dirty slots only — clean slots never touch
        // their model, so steady state pays zero compilation.
        let automata: Vec<Option<ClusterAutomaton>> = if kernel.uses_automaton() {
            parallel_map(clusters.len(), self.threads, |slot| {
                columns[slot].is_none().then(|| {
                    ClusterAutomaton::build(&clusters[slot].pst, background, kernel)
                        .expect("automaton-backed kernel")
                })
            })
        } else {
            clusters.iter().map(|_| None).collect()
        };
        let compiles = automata.iter().flatten().count() as u64;
        let chunk = plan_chunk(order.len(), self.threads);
        let rows = parallel_map_with(
            order.len(),
            self.threads,
            || store.reader(),
            |reader, pos| {
                let row_start = std::time::Instant::now();
                let id = order[pos];
                let seq = reader.symbols(id);
                let mut scratch: Vec<cluseq_seq::Symbol> = Vec::new();
                let mut fresh = 0u64;
                let mut fresh_pruned = 0u64;
                let row: Vec<BoundedSimilarity> = columns
                    .iter()
                    .enumerate()
                    .map(|(slot, col)| match col {
                        Some(col) => col[id],
                        None => {
                            fresh += 1;
                            let verdict = match &automata[slot] {
                                Some(automaton) => automaton.scan_pruned(seq, prune_below),
                                None => BoundedSimilarity::Exact(max_similarity_pst_with_scratch(
                                    &clusters[slot].pst,
                                    background,
                                    seq,
                                    &mut scratch,
                                )),
                            };
                            if verdict.is_pruned() {
                                fresh_pruned += 1;
                            }
                            verdict
                        }
                    })
                    .collect();
                if let Some(trace) = trace {
                    let shard = trace::shard_for(pos, chunk);
                    trace.add_at(shard, Counter::PairsScored, fresh);
                    trace.add_at(shard, Counter::PairsPruned, fresh_pruned);
                    trace.add_at(shard, Counter::PairsReused, row.len() as u64 - fresh);
                    trace.observe(HistKind::ScoreRow, shard, trace::nanos_since(row_start));
                }
                row
            },
        );
        CachedScorePass {
            rows,
            nanos: trace::nanos_since(start),
            dirty_slots,
            compiles,
        }
    }

    /// Scores each store sequence in `ids` against a single PST.
    pub fn score_against_pst(
        &self,
        store: &dyn SequenceStore,
        pst: &Pst,
        background: &BackgroundModel,
        ids: &[usize],
    ) -> Vec<SegmentSimilarity> {
        parallel_map_with(
            ids.len(),
            self.threads,
            || store.reader(),
            |reader, i| max_similarity_pst(pst, background, reader.symbols(ids[i])),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_pst::PstParams;
    use cluseq_seq::SequenceDatabase;

    #[test]
    fn parallel_map_with_matches_parallel_map_for_any_thread_count() {
        for n in [0usize, 1, 3, 7, 64, 100] {
            let serial: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
            for threads in [1usize, 2, 4, 8, 200] {
                // State buffers scratch but never changes the output.
                let got = parallel_map_with(n, threads, Vec::<usize>::new, |scratch, i| {
                    scratch.push(i);
                    i * 3 + 1
                });
                assert_eq!(got, serial, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_map_with_initializes_one_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        // Serial path: exactly one state.
        parallel_map_with(3, 1, || inits.fetch_add(1, Ordering::SeqCst), |_, i| i);
        assert_eq!(inits.swap(0, Ordering::SeqCst), 1);
        // Parallel path: one per spawned worker.
        parallel_map_with(64, 4, || inits.fetch_add(1, Ordering::SeqCst), |_, i| i);
        assert_eq!(inits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn parallel_map_equals_serial_map() {
        for n in [0usize, 1, 2, 3, 7, 64, 100] {
            let serial: Vec<usize> = (0..n).map(|i| i * i + 1).collect();
            for threads in [1usize, 2, 3, 4, 8, 200] {
                let parallel = parallel_map(n, threads, |i| i * i + 1);
                assert_eq!(parallel, serial, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_map_preserves_float_bits() {
        // A float-heavy function whose result would differ under any
        // reduction reordering; chunked mapping must not reorder anything.
        let f = |i: usize| {
            let mut acc = 0.1f64;
            for k in 0..=i {
                acc = (acc * 1.7 + k as f64).sin();
            }
            acc
        };
        let serial: Vec<u64> = (0..257).map(|i| f(i).to_bits()).collect();
        for threads in [2usize, 5, 16] {
            let parallel: Vec<u64> = parallel_map(257, threads, f)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn thread_count_is_clamped_not_trusted() {
        assert_eq!(parallel_map(3, 0, |i| i), vec![0, 1, 2]);
        assert_eq!(parallel_map(3, usize::MAX, |i| i), vec![0, 1, 2]);
        assert!(parallel_map(0, 8, |i| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "scoring worker panicked")]
    fn worker_panics_propagate() {
        parallel_map(64, 4, |i| {
            if i == 40 {
                panic!("deliberate");
            }
            i
        });
    }

    fn fixture() -> (SequenceDatabase, BackgroundModel, Vec<Cluster>) {
        let texts = [
            "abababababababab",
            "abababababababab",
            "cccccccccccccccc",
            "cccccccccccccccc",
            "abcabcabcabcabca",
        ];
        let db = SequenceDatabase::from_strs(texts);
        let bg = db.background();
        let params = PstParams::default().with_significance(2);
        let clusters = [0usize, 2]
            .iter()
            .enumerate()
            .map(|(i, &s)| Cluster::from_seed(i, s, db.sequence(s), db.alphabet().len(), params))
            .collect();
        (db, bg, clusters)
    }

    #[test]
    fn engine_matches_direct_scoring_for_any_thread_count() {
        let (db, bg, clusters) = fixture();
        let order: Vec<usize> = vec![4, 0, 3, 1, 2];
        let direct: Vec<Vec<SegmentSimilarity>> = order
            .iter()
            .map(|&id| {
                clusters
                    .iter()
                    .map(|c| max_similarity_pst(&c.pst, &bg, db.sequence(id).symbols()))
                    .collect()
            })
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let engine = ScoreEngine::new(threads);
            assert_eq!(
                engine.score_sequences(&db, &clusters, &bg, &order),
                direct,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn timed_scoring_returns_identical_rows() {
        let (db, bg, clusters) = fixture();
        let order: Vec<usize> = (0..db.len()).collect();
        let engine = ScoreEngine::new(2);
        let plain = engine.score_sequences(&db, &clusters, &bg, &order);
        let (timed, _nanos) = engine.score_sequences_timed(&db, &clusters, &bg, &order);
        assert_eq!(plain, timed);
    }

    #[test]
    fn compiled_engine_matches_interpreted_engine_bit_for_bit() {
        let (db, bg, clusters) = fixture();
        let order: Vec<usize> = vec![4, 0, 3, 1, 2];
        let engine = ScoreEngine::new(3);
        let interpreted = engine.score_sequences(&db, &clusters, &bg, &order);
        let compiled = engine.compile_clusters(&clusters, &bg);
        let fast = engine.score_sequences_compiled(&db, &compiled, &order, None);
        for (pos, row) in fast.iter().enumerate() {
            for (slot, verdict) in row.iter().enumerate() {
                let got = verdict.exact().expect("unpruned scoring is exact");
                let want = interpreted[pos][slot];
                assert_eq!(got.log_sim.to_bits(), want.log_sim.to_bits());
                assert_eq!((got.start, got.end), (want.start, want.end));
            }
        }
        let (timed, _nanos) = engine.score_sequences_compiled_timed(&db, &compiled, &order, None);
        assert_eq!(timed, fast);
    }

    #[test]
    fn compiled_engine_pruning_never_hides_a_join() {
        let (db, bg, clusters) = fixture();
        let order: Vec<usize> = (0..db.len()).collect();
        let engine = ScoreEngine::new(2);
        let exact = engine.score_sequences(&db, &clusters, &bg, &order);
        let compiled = engine.compile_clusters(&clusters, &bg);
        let log_t = 0.5f64;
        let bounded = engine.score_sequences_compiled(&db, &compiled, &order, Some(log_t));
        for (pos, row) in bounded.iter().enumerate() {
            for (slot, verdict) in row.iter().enumerate() {
                match verdict {
                    BoundedSimilarity::Exact(s) => {
                        assert_eq!(s.log_sim.to_bits(), exact[pos][slot].log_sim.to_bits());
                    }
                    BoundedSimilarity::Pruned => {
                        assert!(
                            exact[pos][slot].log_sim < log_t,
                            "pruned pair ({pos},{slot}) actually scores {}",
                            exact[pos][slot].log_sim
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn metered_scoring_is_identical_and_counts_pairs() {
        let (db, bg, clusters) = fixture();
        let order: Vec<usize> = (0..db.len()).collect();
        for threads in [1usize, 4] {
            let engine = ScoreEngine::new(threads);
            let session = TraceSession::in_memory();
            let plain = engine.score_sequences(&db, &clusters, &bg, &order);
            let (metered, _) =
                engine.score_sequences_metered(&db, &clusters, &bg, &order, Some(&session));
            assert_eq!(plain, metered, "threads={threads}");
            let expected = (order.len() * clusters.len()) as u64;
            assert_eq!(session.counter(Counter::PairsScored), expected);
            assert_eq!(session.counter(Counter::PairsPruned), 0);
            let hist = session.shared().hist_counts(HistKind::ScoreRow);
            assert_eq!(hist.iter().sum::<u64>(), order.len() as u64);

            let compiled = engine.compile_clusters(&clusters, &bg);
            let session = TraceSession::in_memory();
            let bounded = engine.score_sequences_compiled(&db, &compiled, &order, Some(0.5));
            let (metered, _) = engine.score_sequences_compiled_metered(
                &db,
                &compiled,
                &order,
                Some(0.5),
                Some(&session),
            );
            assert_eq!(bounded, metered, "threads={threads}");
            assert_eq!(session.counter(Counter::PairsScored), expected);
            let pruned: u64 = bounded.iter().map(|row| prune_count(row)).sum();
            assert_eq!(session.counter(Counter::PairsPruned), pruned);
        }
    }

    #[test]
    fn batched_engine_is_bit_identical_to_compiled_engine() {
        let (db, bg, clusters) = fixture();
        let order: Vec<usize> = vec![4, 0, 3, 1, 2];
        let reference = {
            let engine = ScoreEngine::new(1);
            let compiled = engine.compile_clusters(&clusters, &bg);
            (
                engine.score_sequences_compiled(&db, &compiled, &order, None),
                engine.score_sequences_compiled(&db, &compiled, &order, Some(0.5)),
            )
        };
        for threads in [1usize, 2, 4] {
            let engine = ScoreEngine::new(threads);
            for kernel in [ScanKernel::Compiled, ScanKernel::Batched] {
                let automata = engine.compile_cluster_automata(&clusters, &bg, kernel);
                for (prune_below, want) in [(None, &reference.0), (Some(0.5), &reference.1)] {
                    let rows = engine.score_sequences_automata(
                        &db,
                        &automata,
                        &order,
                        prune_below,
                        kernel,
                    );
                    assert_eq!(
                        &rows, want,
                        "threads={threads} kernel={kernel} prune={prune_below:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_engine_is_byte_stable_across_drivers_and_threads() {
        let (db, bg, clusters) = fixture();
        let order: Vec<usize> = (0..db.len()).collect();
        let reference = {
            let engine = ScoreEngine::new(1);
            let automata = engine.compile_cluster_automata(&clusters, &bg, ScanKernel::Quantized);
            // Per-pair quantized scans, the ground truth for this kernel.
            order
                .iter()
                .map(|&id| {
                    automata
                        .iter()
                        .map(|a| a.scan_pruned(db.sequence(id).symbols(), None))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        for threads in [1usize, 3, 8] {
            let engine = ScoreEngine::new(threads);
            let automata = engine.compile_cluster_automata(&clusters, &bg, ScanKernel::Quantized);
            let rows = engine.score_sequences_automata(
                &db,
                &automata,
                &order,
                None,
                ScanKernel::Quantized,
            );
            assert_eq!(rows, reference, "threads={threads}");
        }
    }

    #[test]
    fn metered_automata_scoring_counts_pairs_under_both_drivers() {
        let (db, bg, clusters) = fixture();
        let order: Vec<usize> = (0..db.len()).collect();
        for kernel in [
            ScanKernel::Compiled,
            ScanKernel::Batched,
            ScanKernel::Quantized,
        ] {
            for threads in [1usize, 4] {
                let engine = ScoreEngine::new(threads);
                let automata = engine.compile_cluster_automata(&clusters, &bg, kernel);
                let session = TraceSession::in_memory();
                let plain =
                    engine.score_sequences_automata(&db, &automata, &order, Some(0.5), kernel);
                let (metered, _) = engine.score_sequences_automata_metered(
                    &db,
                    &automata,
                    &order,
                    Some(0.5),
                    kernel,
                    Some(&session),
                );
                assert_eq!(plain, metered, "kernel={kernel} threads={threads}");
                let expected = (order.len() * clusters.len()) as u64;
                assert_eq!(session.counter(Counter::PairsScored), expected);
                let pruned: u64 = plain.iter().map(|row| prune_count(row)).sum();
                assert_eq!(session.counter(Counter::PairsPruned), pruned);
            }
        }
    }

    #[test]
    fn cached_scoring_with_empty_cache_matches_uncached() {
        let (db, bg, clusters) = fixture();
        let order: Vec<usize> = vec![4, 0, 3, 1, 2];
        let empty = SimilarityCache::new(db.len());
        for threads in [1usize, 4] {
            let engine = ScoreEngine::new(threads);
            let compiled = engine.compile_clusters(&clusters, &bg);
            for prune_below in [None, Some(0.5)] {
                let pass = engine.score_sequences_cached(
                    &db,
                    &clusters,
                    &bg,
                    &order,
                    ScanKernel::Compiled,
                    prune_below,
                    &empty,
                    None,
                );
                let want = engine.score_sequences_compiled(&db, &compiled, &order, prune_below);
                assert_eq!(pass.rows, want, "threads={threads} prune={prune_below:?}");
                assert_eq!(pass.dirty_slots, vec![0, 1]);
                assert_eq!(pass.compiles, clusters.len() as u64);
            }
            for kernel in [ScanKernel::Batched, ScanKernel::Quantized] {
                let automata = engine.compile_cluster_automata(&clusters, &bg, kernel);
                for prune_below in [None, Some(0.5)] {
                    let pass = engine.score_sequences_cached(
                        &db,
                        &clusters,
                        &bg,
                        &order,
                        kernel,
                        prune_below,
                        &empty,
                        None,
                    );
                    let want = engine.score_sequences_automata(
                        &db,
                        &automata,
                        &order,
                        prune_below,
                        kernel,
                    );
                    assert_eq!(pass.rows, want, "kernel={kernel} prune={prune_below:?}");
                    assert_eq!(pass.compiles, clusters.len() as u64);
                }
            }
            let pass = engine.score_sequences_cached(
                &db,
                &clusters,
                &bg,
                &order,
                ScanKernel::Interpreted,
                None,
                &empty,
                None,
            );
            let want = engine.score_sequences(&db, &clusters, &bg, &order);
            for (pos, row) in pass.rows.iter().enumerate() {
                for (slot, verdict) in row.iter().enumerate() {
                    assert_eq!(verdict.exact().unwrap(), want[pos][slot]);
                }
            }
            assert_eq!(pass.compiles, 0);
        }
    }

    #[test]
    fn cached_scoring_reuses_columns_and_meters_reuse() {
        let (db, bg, clusters) = fixture();
        let order: Vec<usize> = (0..db.len()).collect();
        let engine = ScoreEngine::new(2);
        let compiled = engine.compile_clusters(&clusters, &bg);
        let full = engine.score_sequences_compiled(&db, &compiled, &order, None);

        // Cache cluster 0's column (a deliberately wrong sentinel value so
        // reuse is observable), leave cluster 1 dirty.
        let sentinel = SegmentSimilarity {
            log_sim: 123.0,
            start: 0,
            end: 1,
        };
        let mut cache = SimilarityCache::new(db.len());
        cache.install(
            clusters[0].id,
            vec![BoundedSimilarity::Exact(sentinel); db.len()],
        );

        let session = TraceSession::in_memory();
        let pass = engine.score_sequences_cached(
            &db,
            &clusters,
            &bg,
            &order,
            ScanKernel::Compiled,
            None,
            &cache,
            Some(&session),
        );
        assert_eq!(pass.dirty_slots, vec![1]);
        assert_eq!(pass.compiles, 1);
        for (pos, row) in pass.rows.iter().enumerate() {
            assert_eq!(row[0], BoundedSimilarity::Exact(sentinel), "reused");
            assert_eq!(row[1], full[pos][1], "fresh");
        }
        let n = order.len() as u64;
        assert_eq!(session.counter(Counter::PairsScored), n);
        assert_eq!(session.counter(Counter::PairsReused), n);
        assert_eq!(session.counter(Counter::PairsPruned), 0);
    }

    #[test]
    fn file_backed_store_scores_bit_identically_to_the_database() {
        let (db, bg, clusters) = fixture();
        let dir = std::env::temp_dir().join(format!("cluseq-score-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.cseq");
        cluseq_seq::store::write_indexed(&db, &path).unwrap();
        // A tiny window forces slides mid-chunk; scores must not notice.
        let store = cluseq_seq::FileStore::open_windowed(&path, 16).unwrap();
        let order: Vec<usize> = vec![4, 0, 3, 1, 2];
        for threads in [1usize, 3] {
            let engine = ScoreEngine::new(threads);
            let resident = engine.score_sequences(&db, &clusters, &bg, &order);
            let streamed = engine.score_sequences(&store, &clusters, &bg, &order);
            assert_eq!(resident, streamed, "threads={threads}");
            let compiled = engine.compile_clusters(&clusters, &bg);
            for prune_below in [None, Some(0.5)] {
                assert_eq!(
                    engine.score_sequences_compiled(&db, &compiled, &order, prune_below),
                    engine.score_sequences_compiled(&store, &compiled, &order, prune_below),
                    "threads={threads} prune={prune_below:?}"
                );
            }
            for kernel in [
                ScanKernel::Compiled,
                ScanKernel::Batched,
                ScanKernel::Quantized,
            ] {
                let automata = engine.compile_cluster_automata(&clusters, &bg, kernel);
                assert_eq!(
                    engine.score_sequences_automata(&db, &automata, &order, None, kernel),
                    engine.score_sequences_automata(&store, &automata, &order, None, kernel),
                    "threads={threads} kernel={kernel}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_chunk_matches_parallel_map_layout() {
        // Serial path: single chunk covering everything.
        assert_eq!(plan_chunk(5, 1), 5);
        assert_eq!(plan_chunk(7, 4), 7); // n < 2*threads => serial
        assert_eq!(plan_chunk(0, 4), 1);
        // Parallel path: ceil(n / clamped_threads).
        assert_eq!(plan_chunk(100, 4), 25);
        assert_eq!(plan_chunk(9, 4), 3);
    }

    #[test]
    fn engine_scores_ids_against_one_pst() {
        let (db, bg, clusters) = fixture();
        let ids = [1usize, 2, 4];
        let engine = ScoreEngine::new(4);
        let got = engine.score_against_pst(&db, &clusters[0].pst, &bg, &ids);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(
                got[i],
                max_similarity_pst(&clusters[0].pst, &bg, db.sequence(id).symbols())
            );
        }
    }
}
