//! `cluseq serve`: clustering as a service.
//!
//! The daemon loads a frozen model set (a `CSEQ` snapshot from
//! [`crate::persist`] or a `CCKP` checkpoint from [`crate::checkpoint`]),
//! binds one TCP port, and answers ASSIGN / SCORE / ANOMALY / INFO / SWAP
//! queries over a length-prefixed binary protocol
//! ([`protocol`]), with a minimal HTTP/1.1 JSON facade on the same port
//! for curl-ability ([the first byte of a connection decides: frame magic
//! → binary, anything else → HTTP](Server)).
//!
//! Three properties carry the subsystem, each with its own adversarial
//! test suite:
//!
//! - **Batched determinism** ([`engine`]): concurrent requests are
//!   drained into arrival-order batches and scored through the same
//!   deterministic [`crate::score::parallel_map`] as the offline scan, so
//!   responses are bit-identical to single-request scoring at any
//!   `--threads` (`tests/serve_concurrent.rs`).
//! - **Epoch-pinned hot swap** ([`engine::ServeEngine::swap`] /
//!   SIGHUP): a generation switch is an `Arc` pointer swap; in-flight
//!   batches finish on the generation they pinned, every response carries
//!   its generation id, and zero requests drop (`tests/serve_swap.rs`).
//! - **A total protocol** ([`protocol`]): hostile bytes — truncation,
//!   oversized length prefixes, garbage magic, slow-loris stalls — get a
//!   well-formed error frame or a clean close, never a panic or a hang
//!   (`tests/serve_protocol.rs`).
//!
//! A fourth, optional, rides along: **request observability** ([`obs`]).
//! With a [`ServeObs`] bundle attached, every accepted request gets an id
//! and a seven-stage timeline (accept → decode → queue wait → batch
//! formation → scan → encode → write-back) recorded into the sharded
//! registry, outliers land in a crash-safe slow-request log, and the HTTP
//! facade grows `/healthz`, `/readyz`, and the full `/metrics` series the
//! `cluseq top` dashboard reads. Without the bundle the daemon pays for
//! none of it — not even the clock reads.

pub mod client;
pub mod engine;
mod http;
pub mod model;
pub mod obs;
pub mod protocol;
pub mod signal;

use std::cell::RefCell;
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cluseq_seq::SequenceStore;

use crate::config::ScanKernel;
use engine::{EngineHandle, Scored, ServeEngine, Work};
use model::ServeModel;
use obs::{ObsLocal, RequestRecord, ServeObs, ServeOp, StageNanos};
use crate::trace::stamp::Stamp;
use protocol::{errcode, parse_header, ProtoError, Request, Response, FRAME_MAGIC};

/// How often blocked reads wake to check the stop flag.
const POLL: Duration = Duration::from_millis(100);

/// How the daemon binds, batches, and times out.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Scoring worker threads per batch (see [`crate::score::parallel_map`]).
    pub threads: usize,
    /// Most requests one dispatch batch may drain.
    pub max_batch: usize,
    /// Which scan kernel answers queries.
    pub kernel: ScanKernel,
    /// Once a frame (or HTTP request) has *started* arriving, how long the
    /// rest may take — the slow-loris cutoff. Idle connections are not
    /// subject to it.
    pub frame_timeout: Duration,
    /// Spawn the signal watcher: SIGHUP reloads the model from its source
    /// path, SIGTERM initiates a graceful drain (unix only; ignored
    /// elsewhere).
    pub watch_sighup: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            max_batch: 64,
            kernel: ScanKernel::default(),
            frame_timeout: Duration::from_secs(5),
            watch_sighup: false,
        }
    }
}

/// The serve daemon's TCP front door.
///
/// [`Server::start`] binds the port, starts the [`ServeEngine`]
/// dispatcher, and spawns the accept loop; the returned [`ServerHandle`]
/// owns every thread and tears them down in drain order.
pub struct Server;

impl Server {
    /// Starts serving `model` under `config`. `db` is kept for hot-swaps
    /// to CCKP checkpoints — any [`SequenceStore`] works, and a
    /// file-backed one keeps the daemon's resident footprint bounded by
    /// the model rather than the corpus; `obs` (when given) receives the
    /// full request observability stream: per-opcode counters, stage
    /// timelines, the slow-request log, and the serve trace events.
    pub fn start(
        model: ServeModel,
        db: Option<Box<dyn SequenceStore + Send>>,
        config: &ServeConfig,
        obs: Option<Arc<ServeObs>>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        if let Some(o) = &obs {
            // Calibrate the stamp clock up front so the first traced
            // request doesn't eat the ~2ms spin.
            crate::trace::stamp::calibrate();
            o.event_serve_start(
                &addr.to_string(),
                config.threads,
                config.max_batch,
                &config.kernel.to_string(),
                model.generation,
                model.saved.cluster_count() as u32,
            );
        }
        let engine_handle =
            ServeEngine::start(model, config.threads, config.max_batch, db, obs.clone());
        let engine = Arc::clone(engine_handle.engine());
        let stop = Arc::new(AtomicBool::new(false));

        let accept = {
            let stop = Arc::clone(&stop);
            let engine = Arc::clone(&engine);
            let obs = obs.clone();
            let frame_timeout = config.frame_timeout;
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, stop, engine, obs, frame_timeout, addr))?
        };

        let hup = if config.watch_sighup && signal::install() {
            let term_installed = signal::install_term();
            let stop = Arc::clone(&stop);
            let engine = Arc::clone(&engine);
            Some(
                std::thread::Builder::new()
                    .name("serve-signal".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            if signal::take() {
                                match engine.reload() {
                                    Ok((generation, clusters)) => eprintln!(
                                        "serve: SIGHUP reload -> generation {generation} \
                                         ({clusters} clusters)"
                                    ),
                                    Err(e) => eprintln!(
                                        "serve: SIGHUP reload failed ({e}); previous \
                                         generation keeps serving"
                                    ),
                                }
                            }
                            if term_installed && signal::take_term() {
                                eprintln!("serve: SIGTERM -> graceful drain");
                                stop.store(true, Ordering::SeqCst);
                                wake(addr);
                            }
                            std::thread::sleep(POLL);
                        }
                    })?,
            )
        } else {
            None
        };

        Ok(ServerHandle {
            addr,
            stop,
            accept: Some(accept),
            hup,
            engine,
            engine_handle: Some(engine_handle),
            obs,
        })
    }
}

/// A running daemon; owns the accept loop, connection handlers (via the
/// accept loop), the optional signal watcher, and the dispatcher.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    hup: Option<JoinHandle<()>>,
    engine: Arc<ServeEngine>,
    engine_handle: Option<EngineHandle>,
    obs: Option<Arc<ServeObs>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving core (generation queries, in-process swaps).
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// Live model generation.
    pub fn generation(&self) -> u64 {
        self.engine.generation()
    }

    /// Blocks until the daemon stops — via a client SHUTDOWN frame, a
    /// SIGTERM, or [`ServerHandle::shutdown`] from another thread — then
    /// completes the drain. The CLI parks on this.
    pub fn wait(mut self) {
        self.finish();
    }

    /// Initiates a graceful stop and drains: no new connections, existing
    /// handlers get one grace poll to pick up already-sent frames, every
    /// queued request is scored and answered before the dispatcher exits.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        wake(self.addr);
        self.finish();
    }

    fn finish(&mut self) {
        // Order matters: connection handlers (joined via the accept
        // thread) block on engine replies, so the engine must outlive
        // them; it shuts down last, after the queue can no longer grow.
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.stop.store(true, Ordering::SeqCst);
        if let Some(hup) = self.hup.take() {
            let _ = hup.join();
        }
        if let Some(engine_handle) = self.engine_handle.take() {
            engine_handle.shutdown();
            // The drain is complete: snapshot the registry into the serve
            // trace (`serve_end`) and make both JSONL streams durable.
            if let Some(o) = &self.obs {
                o.event_serve_end();
                o.sync();
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        wake(self.addr);
        self.finish();
    }
}

/// Wakes a blocking `accept` with a throwaway connection (the exporter's
/// pattern), mapping unspecified bind IPs to loopback.
fn wake(mut addr: SocketAddr) {
    match addr.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => addr.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST)),
        IpAddr::V6(ip) if ip.is_unspecified() => addr.set_ip(IpAddr::V6(Ipv6Addr::LOCALHOST)),
        _ => {}
    }
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
}

fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    engine: Arc<ServeEngine>,
    obs: Option<Arc<ServeObs>>,
    frame_timeout: Duration,
    addr: SocketAddr,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        handlers.retain(|h| !h.is_finished());
        let shard = obs.as_ref().map_or(0, |o| o.conn_shard());
        let conn = Connection {
            engine: Arc::clone(&engine),
            obs: obs.clone(),
            shard,
            local: RefCell::new(ObsLocal::new()),
            stop: Arc::clone(&stop),
            frame_timeout,
            server_addr: addr,
        };
        match std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || conn.run(stream))
        {
            Ok(handle) => handlers.push(handle),
            Err(_) => continue, // spawn failure: drop the connection
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Per-connection state: one handler thread per accepted stream.
struct Connection {
    engine: Arc<ServeEngine>,
    obs: Option<Arc<ServeObs>>,
    /// This connection's registry shard (see [`ServeObs::conn_shard`]).
    shard: usize,
    /// This connection's histogram buffer (see
    /// [`ServeObs::record_buffered`]); flushed when the handler exits.
    local: RefCell<ObsLocal>,
    stop: Arc<AtomicBool>,
    frame_timeout: Duration,
    server_addr: SocketAddr,
}

enum FirstByte {
    Byte(u8),
    Closed,
    Stopping,
}

enum Filled {
    Done,
    Closed,
    TimedOut,
}

/// The transport-side half of a binary request's timeline: its id, the
/// accept stage, and where decode began (the queue stages arrive with
/// [`Scored`], whose enqueue stamp also ends decode). Absent when
/// observability is off — and with it every clock read on the framing
/// path.
#[derive(Clone, Copy)]
struct FrameMeta {
    request_id: u64,
    accept_nanos: u64,
    decode_start: Stamp,
}

impl Connection {
    fn run(&self, mut stream: TcpStream) {
        loop {
            let first = match self.idle_first_byte(&mut stream) {
                Ok(b) => b,
                Err(_) => return,
            };
            match first {
                FirstByte::Closed | FirstByte::Stopping => return,
                FirstByte::Byte(b) if b == FRAME_MAGIC[0] => {
                    if !self.serve_frame(&mut stream, b) {
                        return;
                    }
                }
                FirstByte::Byte(b) => {
                    // Not frame magic: one HTTP request, then close.
                    let deadline = Instant::now() + self.frame_timeout;
                    http::handle(&mut stream, b, &self.engine, self.obs.as_ref(), deadline);
                    return;
                }
            }
        }
    }

    /// Waits for the first byte of the next request. Idle waiting is
    /// unbounded but polls the stop flag; after observing stop it grants
    /// one extra poll interval so a frame already in the socket buffer
    /// still gets served (the drain grace).
    fn idle_first_byte(&self, stream: &mut TcpStream) -> io::Result<FirstByte> {
        let mut grace_used = false;
        let mut buf = [0u8; 1];
        loop {
            stream.set_read_timeout(Some(POLL))?;
            match stream.read(&mut buf) {
                Ok(0) => return Ok(FirstByte::Closed),
                Ok(_) => return Ok(FirstByte::Byte(buf[0])),
                Err(e) if is_timeout(&e) => {
                    if self.stop.load(Ordering::SeqCst) {
                        if grace_used {
                            return Ok(FirstByte::Stopping);
                        }
                        grace_used = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads exactly `buf` from the stream before `deadline`.
    fn fill(&self, stream: &mut TcpStream, buf: &mut [u8], deadline: Instant) -> Filled {
        let mut got = 0;
        while got < buf.len() {
            let now = Instant::now();
            if now >= deadline {
                return Filled::TimedOut;
            }
            if stream
                .set_read_timeout(Some((deadline - now).min(POLL)))
                .is_err()
            {
                return Filled::Closed;
            }
            match stream.read(&mut buf[got..]) {
                Ok(0) => return Filled::Closed,
                Ok(n) => got += n,
                Err(e) if is_timeout(&e) || e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Filled::Closed,
            }
        }
        Filled::Done
    }

    /// Serves one binary frame whose first byte already arrived. Returns
    /// whether the connection should keep going.
    fn serve_frame(&self, stream: &mut TcpStream, first: u8) -> bool {
        let started = self
            .obs
            .as_ref()
            .map(|o| (o.next_request_id(), Stamp::now()));
        let deadline = Instant::now() + self.frame_timeout;
        let mut header = [0u8; 8];
        header[0] = first;
        match self.fill(stream, &mut header[1..], deadline) {
            Filled::Done => {}
            Filled::Closed => return false,
            Filled::TimedOut => {
                self.send_error(stream, errcode::TIMEOUT, "frame header stalled");
                return false;
            }
        }
        let len = match parse_header(&header) {
            Ok(len) => len as usize,
            Err(ProtoError::Oversized(n)) => {
                // Rejected from the header alone — the payload was never
                // allocated or read.
                self.send_error(
                    stream,
                    errcode::OVERSIZED,
                    &format!("length prefix {n} exceeds cap"),
                );
                return false;
            }
            Err(_) => {
                self.send_error(stream, errcode::BAD_MAGIC, "bad frame magic");
                return false;
            }
        };
        let mut payload = vec![0u8; len];
        match self.fill(stream, &mut payload, deadline) {
            Filled::Done => {}
            Filled::Closed => return false,
            Filled::TimedOut => {
                self.send_error(stream, errcode::TIMEOUT, "frame payload stalled");
                return false;
            }
        }
        // One stamp ends accept and starts decode.
        let decode_start = started.map(|_| Stamp::now());
        let accept_nanos = match (started, decode_start) {
            (Some((_, t)), Some(d)) => d.nanos_since(t),
            _ => 0,
        };
        let request = match Request::decode_payload(&payload) {
            Ok(request) => request,
            Err(ProtoError::BadTag(op)) => {
                self.send_error(
                    stream,
                    errcode::BAD_OP,
                    &format!("unknown opcode {op:#04x}"),
                );
                return true; // framing is intact; the connection survives
            }
            Err(e) => {
                self.send_error(stream, errcode::MALFORMED, &e.to_string());
                return true;
            }
        };
        let meta = started.zip(decode_start).map(|((request_id, _), d)| FrameMeta {
            request_id,
            accept_nanos,
            decode_start: d,
        });
        self.dispatch(stream, request, meta)
    }

    /// Executes one decoded request. Returns whether to keep the
    /// connection open.
    fn dispatch(&self, stream: &mut TcpStream, request: Request, meta: Option<FrameMeta>) -> bool {
        match request {
            Request::Assign { seq } => {
                let n = seq.len();
                self.scored(stream, ServeOp::Assign, Work::Assign(seq), n, meta)
            }
            Request::Score { seq } => {
                let n = seq.len();
                self.scored(stream, ServeOp::Score, Work::Score(seq), n, meta)
            }
            Request::Anomaly { seq, threshold } => {
                let n = seq.len();
                self.scored(stream, ServeOp::Anomaly, Work::Anomaly(seq, threshold), n, meta)
            }
            Request::Info => {
                let response = self.engine.current().info();
                self.finish(stream, ServeOp::Info, Scored::immediate(response), 0, meta)
            }
            Request::Swap { path } => match self.engine.swap(Path::new(&path)) {
                Ok((generation, clusters)) => self.finish(
                    stream,
                    ServeOp::Swap,
                    Scored::immediate(Response::Swapped {
                        generation,
                        clusters,
                    }),
                    0,
                    meta,
                ),
                Err(e) => {
                    self.finish(
                        stream,
                        ServeOp::Swap,
                        Scored::immediate(Response::Error {
                            code: errcode::SWAP_FAILED,
                            message: e,
                        }),
                        0,
                        meta,
                    );
                    true
                }
            },
            Request::Shutdown => {
                let _ = self.finish(
                    stream,
                    ServeOp::Shutdown,
                    Scored::immediate(Response::ShuttingDown),
                    0,
                    meta,
                );
                self.stop.store(true, Ordering::SeqCst);
                wake(self.server_addr);
                false
            }
        }
    }

    /// Queues scoring work and relays the batched answer.
    fn scored(
        &self,
        stream: &mut TcpStream,
        op: ServeOp,
        work: Work,
        seq_len: usize,
        meta: Option<FrameMeta>,
    ) -> bool {
        let scored = self
            .engine
            .submit(work)
            .recv()
            .unwrap_or_else(|_| Scored::draining());
        self.finish(stream, op, scored, seq_len, meta)
    }

    /// Encodes and writes the response; with observability on, times both
    /// stages and records the request's complete timeline. Returns write
    /// success (keep the connection).
    fn finish(
        &self,
        stream: &mut TcpStream,
        op: ServeOp,
        scored: Scored,
        seq_len: usize,
        meta: Option<FrameMeta>,
    ) -> bool {
        let Scored {
            response,
            enqueued,
            queue_wait_nanos,
            batch_form_nanos,
            scan_nanos,
        } = scored;
        match (&self.obs, meta) {
            (Some(obs), Some(meta)) => {
                let encode_start = Stamp::now();
                let frame = response.encode_frame();
                let write_start = Stamp::now();
                let ok = stream.write_all(&frame).is_ok();
                let stages = StageNanos {
                    accept: meta.accept_nanos,
                    // Queued ops end decode at their enqueue stamp; admin
                    // ops answer inline, so their decode runs until the
                    // response was ready to encode.
                    decode: enqueued
                        .unwrap_or(encode_start)
                        .nanos_since(meta.decode_start),
                    queue_wait: queue_wait_nanos,
                    batch_form: batch_form_nanos,
                    scan: scan_nanos,
                    encode: write_start.nanos_since(encode_start),
                    write_back: Stamp::now().nanos_since(write_start),
                };
                obs.record_buffered(
                    self.shard,
                    &mut self.local.borrow_mut(),
                    &RequestRecord {
                        request_id: meta.request_id,
                        op,
                        transport: "binary",
                        generation: response.generation(),
                        seq_len,
                        error: matches!(response, Response::Error { .. }),
                        stages,
                    },
                );
                ok
            }
            _ => self.send(stream, &response),
        }
    }

    fn send(&self, stream: &mut TcpStream, response: &Response) -> bool {
        stream.write_all(&response.encode_frame()).is_ok()
    }

    /// A protocol-level failure (framing, timeout, bad opcode): the
    /// request never reached an opcode, so it counts against the
    /// aggregate error total only.
    fn send_error(&self, stream: &mut TcpStream, code: u16, message: &str) {
        if let Some(o) = &self.obs {
            o.record_meta(true);
        }
        let _ = self.send(
            stream,
            &Response::Error {
                code,
                message: message.into(),
            },
        );
    }
}

impl Drop for Connection {
    /// Drains any histogram observations still buffered when the handler
    /// exits, so registry totals are complete once every connection has
    /// closed (the shutdown snapshot joins the handlers first).
    fn drop(&mut self) {
        if let Some(obs) = &self.obs {
            obs.flush_local(self.shard, &mut self.local.borrow_mut());
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
