//! A blocking binary-protocol client for the serve daemon.
//!
//! One [`ServeClient`] wraps one TCP connection and speaks strict
//! request/response: every call writes one frame and blocks for one
//! frame back. The tests, the bench load generator, and the anomaly
//! example all query through this type, so the daemon's test surface
//! exercises the exact codec production clients would use.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use cluseq_seq::Symbol;

use crate::serve::protocol::{read_frame, ClusterScore, ProtoError, Request, Response};

/// A connected binary-protocol client.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a serve daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Self {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Bounds how long [`ServeClient::request`] waits for a response
    /// frame (`None` = forever).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request frame and blocks for the one response frame.
    pub fn request(&mut self, req: &Request) -> Result<Response, ProtoError> {
        self.stream.write_all(&req.encode_frame())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Response::decode_payload(&payload),
            None => Err(ProtoError::Truncated),
        }
    }

    /// ASSIGN: `(slot, log_sim)` hits plus the answering generation.
    pub fn assign(&mut self, seq: &[Symbol]) -> Result<(u64, Vec<(u32, f64)>), ProtoError> {
        match self.request(&Request::Assign { seq: seq.to_vec() })? {
            Response::Assign { generation, hits } => Ok((generation, hits)),
            other => Err(unexpected(other)),
        }
    }

    /// SCORE: full ranked per-cluster scores plus the answering generation.
    pub fn score(&mut self, seq: &[Symbol]) -> Result<(u64, Vec<ClusterScore>), ProtoError> {
        match self.request(&Request::Score { seq: seq.to_vec() })? {
            Response::Score { generation, scores } => Ok((generation, scores)),
            other => Err(unexpected(other)),
        }
    }

    /// ANOMALY: the full verdict response.
    pub fn anomaly(
        &mut self,
        seq: &[Symbol],
        threshold: Option<f64>,
    ) -> Result<Response, ProtoError> {
        let resp = self.request(&Request::Anomaly {
            seq: seq.to_vec(),
            threshold,
        })?;
        match resp {
            Response::Anomaly { .. } => Ok(resp),
            other => Err(unexpected(other)),
        }
    }

    /// INFO: the model metadata response.
    pub fn info(&mut self) -> Result<Response, ProtoError> {
        let resp = self.request(&Request::Info)?;
        match resp {
            Response::Info { .. } => Ok(resp),
            other => Err(unexpected(other)),
        }
    }

    /// SWAP to the model at a server-side path; returns the new
    /// generation and its cluster count.
    pub fn swap(&mut self, path: &str) -> Result<(u64, u32), ProtoError> {
        match self.request(&Request::Swap { path: path.into() })? {
            Response::Swapped {
                generation,
                clusters,
            } => Ok((generation, clusters)),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ProtoError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> ProtoError {
    match resp {
        Response::Error { .. } => ProtoError::Corrupt("server answered an error frame"),
        _ => ProtoError::Corrupt("server answered the wrong response type"),
    }
}
