//! The frozen, generation-stamped model a serve daemon answers from.
//!
//! A [`ServeModel`] is immutable once built — queries borrow it through an
//! `Arc` pinned for the duration of one scoring batch, which is the whole
//! hot-swap story: installing a new generation is a pointer swap, and
//! every in-flight batch keeps scoring against the generation it pinned.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use cluseq_seq::{SequenceStore, Symbol};

use crate::checkpoint::Checkpoint;
use crate::config::ScanKernel;
use crate::kernel::ClusterAutomaton;
use crate::persist::{SavedCluster, SavedModel};
use crate::serve::protocol::{errcode, ClusterScore, Response};
use crate::similarity::{max_similarity_pst, SegmentSimilarity};

/// One immutable model generation: the persisted classifier, its scan
/// automatons, and the provenance needed to reload it on SIGHUP.
#[derive(Debug)]
pub struct ServeModel {
    /// Monotonic generation id; stamped into every scored response.
    pub generation: u64,
    /// The classifier (clusters + background + threshold).
    pub saved: SavedModel,
    /// Per-cluster scan automatons, slot order; empty when the
    /// interpreted kernel is selected.
    pub automata: Vec<ClusterAutomaton>,
    /// Which kernel [`ServeModel::classify`] dispatches to.
    pub kernel: ScanKernel,
    /// The file this generation was loaded from (SIGHUP reloads it).
    pub source: PathBuf,
}

impl ServeModel {
    /// Loads a model from `path`, sniffing the format from its magic:
    /// `CSEQ` (a [`SavedModel`] snapshot) loads directly; `CCKP` (a
    /// crash-recovery [`Checkpoint`]) additionally needs the training
    /// corpus — checkpoints don't store the background model, so it is
    /// re-derived from `db` after [`Checkpoint::verify_database`] proves
    /// `db` is the corpus the checkpoint was taken on. Any
    /// [`SequenceStore`] works: an in-memory database and a file-backed
    /// store of the same content produce bit-identical background models.
    pub fn load(
        path: &Path,
        db: Option<&dyn SequenceStore>,
        kernel: ScanKernel,
        generation: u64,
    ) -> Result<Self, String> {
        let file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 4];
        reader
            .read_exact(&mut magic)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        reader
            .seek(SeekFrom::Start(0))
            .map_err(|e| format!("seek {}: {e}", path.display()))?;
        let saved = match &magic {
            b"CSEQ" => SavedModel::load(&mut reader)
                .map_err(|e| format!("load model {}: {e:?}", path.display()))?,
            b"CCKP" => {
                let db = db.ok_or_else(|| {
                    format!(
                        "{} is a CCKP checkpoint, which stores no background model; \
                         serving from it requires the training database (--data)",
                        path.display()
                    )
                })?;
                let ckpt = Checkpoint::load(&mut reader)
                    .map_err(|e| format!("load checkpoint {}: {e:?}", path.display()))?;
                ckpt.verify_database(db).map_err(|e| e.to_string())?;
                SavedModel {
                    clusters: ckpt
                        .clusters
                        .iter()
                        .map(|c| SavedCluster {
                            id: c.id as u64,
                            seed: c.seed as u64,
                            pst: c.pst.clone(),
                        })
                        .collect(),
                    background: db.background(),
                    log_t: ckpt.log_t,
                }
            }
            other => {
                return Err(format!(
                    "{}: unrecognized model magic {other:02x?} (expected CSEQ or CCKP)",
                    path.display()
                ))
            }
        };
        let automata = if kernel.uses_automaton() {
            saved
                .clusters
                .iter()
                .map(|c| {
                    ClusterAutomaton::build(&c.pst, &saved.background, kernel)
                        .expect("automaton-backed kernel")
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok(Self {
            generation,
            saved,
            automata,
            kernel,
            source: path.to_path_buf(),
        })
    }

    /// Alphabet size the model scores over.
    pub fn alphabet_size(&self) -> usize {
        self.saved.background.alphabet_size()
    }

    /// Checks every symbol of `seq` against the model's alphabet. Scoring
    /// an out-of-range symbol would index past the automaton tables, so
    /// this is the gate every query passes before reaching a kernel.
    pub fn validate(&self, seq: &[Symbol]) -> Result<(), Response> {
        let alphabet = self.alphabet_size();
        match seq.iter().position(|s| s.index() >= alphabet) {
            None => Ok(()),
            Some(at) => Err(Response::Error {
                code: errcode::SYMBOL_RANGE,
                message: format!(
                    "symbol {} at position {at} is outside the model alphabet (size {alphabet})",
                    seq[at].0
                ),
            }),
        }
    }

    /// Scores `seq` against every cluster, best first — the serve-side
    /// twin of [`SavedModel::classify`], dispatching on the configured
    /// kernel. The exact kernels are bit-identical (the compiled tables
    /// hold the exact f64 values the interpreted walk computes, and the
    /// batched driver shares the per-pair arithmetic); the quantized
    /// kernel is byte-stable within its documented error bound. The sort
    /// is the same stable descending `total_cmp` everywhere, so exact
    /// rankings match offline classification bit for bit.
    pub fn classify(&self, seq: &[Symbol]) -> Vec<(usize, SegmentSimilarity)> {
        let mut scored: Vec<(usize, SegmentSimilarity)> = if self.kernel.uses_automaton() {
            self.automata
                .iter()
                .enumerate()
                .map(|(k, automaton)| (k, automaton.scan(seq)))
                .collect()
        } else {
            self.saved
                .clusters
                .iter()
                .enumerate()
                .map(|(k, c)| (k, max_similarity_pst(&c.pst, &self.saved.background, seq)))
                .collect()
        };
        scored.sort_by(|a, b| b.1.log_sim.total_cmp(&a.1.log_sim));
        scored
    }

    /// Answers an ASSIGN query: clusters at or above the stored threshold.
    pub fn assign(&self, seq: &[Symbol]) -> Response {
        if let Err(e) = self.validate(seq) {
            return e;
        }
        Response::Assign {
            generation: self.generation,
            hits: self
                .classify(seq)
                .into_iter()
                .filter(|(_, s)| s.log_sim >= self.saved.log_t)
                .map(|(k, s)| (k as u32, s.log_sim))
                .collect(),
        }
    }

    /// Answers a SCORE query: full per-cluster similarity, best first.
    pub fn score(&self, seq: &[Symbol]) -> Response {
        if let Err(e) = self.validate(seq) {
            return e;
        }
        Response::Score {
            generation: self.generation,
            scores: self
                .classify(seq)
                .into_iter()
                .map(|(k, s)| ClusterScore {
                    slot: k as u32,
                    log_sim: s.log_sim,
                    start: s.start as u32,
                    end: s.end as u32,
                })
                .collect(),
        }
    }

    /// Answers an ANOMALY query: anomalous iff the best similarity over
    /// all clusters falls below `threshold` (the model's stored `ln t`
    /// when no override is given). A model with zero clusters flags
    /// everything.
    pub fn anomaly(&self, seq: &[Symbol], threshold: Option<f64>) -> Response {
        if let Err(e) = self.validate(seq) {
            return e;
        }
        let threshold = threshold.unwrap_or(self.saved.log_t);
        let ranked = self.classify(seq);
        let best = ranked.first();
        let best_log_sim = best.map_or(f64::NEG_INFINITY, |(_, s)| s.log_sim);
        Response::Anomaly {
            generation: self.generation,
            anomalous: best_log_sim < threshold,
            best_log_sim,
            threshold,
            best_slot: best.map(|(k, _)| *k as u32),
        }
    }

    /// Answers an INFO query.
    pub fn info(&self) -> Response {
        Response::Info {
            generation: self.generation,
            clusters: self.saved.cluster_count() as u32,
            alphabet: self.alphabet_size() as u32,
            log_t: self.saved.log_t,
            kernel: match self.kernel {
                ScanKernel::Interpreted => 0,
                ScanKernel::Compiled => 1,
                ScanKernel::Batched => 2,
                ScanKernel::Quantized => 3,
            },
        }
    }
}
