//! Wire protocol of the serve daemon: length-prefixed binary frames.
//!
//! # Frame layout
//!
//! Every message in either direction is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "CQSV"
//! 4       4     payload length, u32 little-endian (≤ MAX_FRAME_LEN)
//! 8       len   payload
//! ```
//!
//! Request payloads start with an opcode byte, response payloads with a
//! tag byte; every multi-byte integer is little-endian (the same
//! convention as [`cluseq_pst::serial`]). Symbols travel as raw `u16`
//! ids — the model file stores ids, not names, so the wire does too.
//!
//! ```text
//! request   op 0x01 ASSIGN    u32 n | n × u16 symbol
//!           op 0x02 SCORE     u32 n | n × u16 symbol
//!           op 0x03 ANOMALY   u8 has_threshold | f64 threshold (iff 1)
//!                             | u32 n | n × u16 symbol
//!           op 0x04 INFO      (empty)
//!           op 0x05 SWAP      u32 len | utf-8 path
//!           op 0x06 SHUTDOWN  (empty)
//!
//! response  tag 0x81 ASSIGN   u64 generation | u32 k
//!                             | k × (u32 slot, f64 log_sim)
//!           tag 0x82 SCORE    u64 generation | u32 k
//!                             | k × (u32 slot, f64 log_sim,
//!                                    u32 start, u32 end)
//!           tag 0x83 ANOMALY  u64 generation | u8 anomalous
//!                             | f64 best_log_sim | f64 threshold
//!                             | u32 best_slot (u32::MAX = none)
//!           tag 0x84 INFO     u64 generation | u32 clusters
//!                             | u32 alphabet | f64 log_t | u8 kernel
//!           tag 0x85 SWAPPED  u64 generation | u32 clusters
//!           tag 0x86 SHUTTING_DOWN (empty)
//!           tag 0xEE ERROR    u16 code | u32 len | utf-8 message
//! ```
//!
//! # Robustness contract
//!
//! Decoding is total: any byte string either decodes to a message or
//! returns a typed [`ProtoError`] — never a panic. A length prefix above
//! [`MAX_FRAME_LEN`] is rejected from the 8-byte header alone, *before*
//! any payload allocation, so a hostile client cannot make the server
//! reserve memory it never sends. Inside a payload, element counts are
//! validated against the bytes actually present before any
//! count-proportional allocation. `tests/serve_protocol.rs` fuzzes both
//! directions.

use std::io::{self, Read, Write};

use cluseq_pst::serial::{read_f64, read_u32, read_u64, write_f64, write_u32, write_u64};
use cluseq_seq::Symbol;

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"CQSV";

/// Hard cap on a frame's payload length (16 MiB). Oversized length
/// prefixes are rejected without allocating.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Error codes carried by [`Response::Error`] frames.
pub mod errcode {
    /// The payload failed to decode (bad counts, truncated body, …).
    pub const MALFORMED: u16 = 1;
    /// The length prefix exceeded [`super::MAX_FRAME_LEN`].
    pub const OVERSIZED: u16 = 2;
    /// Unknown opcode byte.
    pub const BAD_OP: u16 = 3;
    /// A symbol id is outside the model's alphabet.
    pub const SYMBOL_RANGE: u16 = 4;
    /// A SWAP failed; the previous model generation keeps serving.
    pub const SWAP_FAILED: u16 = 5;
    /// The server is draining and no longer accepts work.
    pub const SHUTTING_DOWN: u16 = 6;
    /// The rest of a started frame did not arrive within the read
    /// timeout (slow-loris defence).
    pub const TIMEOUT: u16 = 7;
    /// The frame opened with bytes that are neither frame magic nor a
    /// recognizable HTTP request.
    pub const BAD_MAGIC: u16 = 8;
}

/// Why a frame or payload failed to decode.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying transport error.
    Io(io::Error),
    /// The 4 magic bytes were wrong (the bytes actually seen).
    BadMagic([u8; 4]),
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// The stream ended mid-frame.
    Truncated,
    /// Unknown opcode / response tag.
    BadTag(u8),
    /// The payload decoded inconsistently.
    Corrupt(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::Oversized(n) => {
                write!(f, "length prefix {n} exceeds cap {MAX_FRAME_LEN}")
            }
            ProtoError::Truncated => write!(f, "stream ended mid-frame"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtoError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e)
        }
    }
}

/// One query or admin command a client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Which clusters would this sequence join under the stored threshold?
    Assign {
        /// The query sequence, as raw symbol ids.
        seq: Vec<Symbol>,
    },
    /// Full similarity of the sequence to every cluster, best first.
    Score {
        /// The query sequence, as raw symbol ids.
        seq: Vec<Symbol>,
    },
    /// Is this sequence anomalous (best similarity below the threshold)?
    Anomaly {
        /// The query sequence, as raw symbol ids.
        seq: Vec<Symbol>,
        /// Decision threshold override, log-space; `None` uses the
        /// model's stored `ln t`.
        threshold: Option<f64>,
    },
    /// Model metadata: generation, cluster count, alphabet, threshold.
    Info,
    /// Atomically hot-swap to the model at this server-side path.
    Swap {
        /// Server-side path of the replacement model (CSEQ or CCKP).
        path: String,
    },
    /// Begin graceful shutdown: drain in-flight requests, then exit.
    Shutdown,
}

/// One per-cluster entry of a [`Response::Score`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterScore {
    /// Cluster slot in the model's order.
    pub slot: u32,
    /// Log-space similarity of the best segment.
    pub log_sim: f64,
    /// Maximizing segment start (inclusive).
    pub start: u32,
    /// Maximizing segment end (exclusive).
    pub end: u32,
}

/// What the server answers. Every scored response carries the generation
/// of the exact model that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Clusters the sequence joins, best first.
    Assign {
        /// Model generation that produced this answer.
        generation: u64,
        /// `(slot, log_sim)` of every cluster at or above the threshold.
        hits: Vec<(u32, f64)>,
    },
    /// Similarity against every cluster, best first.
    Score {
        /// Model generation that produced this answer.
        generation: u64,
        /// Per-cluster similarity, sorted best first.
        scores: Vec<ClusterScore>,
    },
    /// The anomaly verdict.
    Anomaly {
        /// Model generation that produced this answer.
        generation: u64,
        /// Whether the best similarity fell below the threshold.
        anomalous: bool,
        /// Best log-similarity over all clusters (`-inf` when the model
        /// has none).
        best_log_sim: f64,
        /// The threshold the verdict used, log-space.
        threshold: f64,
        /// Slot of the best-scoring cluster, if any.
        best_slot: Option<u32>,
    },
    /// Model metadata.
    Info {
        /// Live model generation.
        generation: u64,
        /// Number of clusters in the model.
        clusters: u32,
        /// Alphabet size the model scores over.
        alphabet: u32,
        /// The decision threshold, log-space.
        log_t: f64,
        /// Scan kernel tag: 0 = interpreted, 1 = compiled, 2 = batched,
        /// 3 = quantized.
        kernel: u8,
    },
    /// A SWAP succeeded; this is the new generation.
    Swapped {
        /// Generation of the freshly installed model.
        generation: u64,
        /// Cluster count of the new model.
        clusters: u32,
    },
    /// The server acknowledged a SHUTDOWN (or refused work while
    /// draining).
    ShuttingDown,
    /// The request could not be served.
    Error {
        /// An [`errcode`] constant.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

const OP_ASSIGN: u8 = 0x01;
const OP_SCORE: u8 = 0x02;
const OP_ANOMALY: u8 = 0x03;
const OP_INFO: u8 = 0x04;
const OP_SWAP: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;

const TAG_ASSIGN: u8 = 0x81;
const TAG_SCORE: u8 = 0x82;
const TAG_ANOMALY: u8 = 0x83;
const TAG_INFO: u8 = 0x84;
const TAG_SWAPPED: u8 = 0x85;
const TAG_SHUTTING_DOWN: u8 = 0x86;
const TAG_ERROR: u8 = 0xEE;

/// Validates an 8-byte frame header, returning the payload length.
/// Rejects before any allocation: this is the oversized-length defence.
pub fn parse_header(header: &[u8; 8]) -> Result<u32, ProtoError> {
    let magic: [u8; 4] = header[..4].try_into().expect("4 bytes");
    if magic != FRAME_MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized(len));
    }
    Ok(len)
}

/// Frames `payload` with magic and length prefix.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one frame to `w` (header + payload, single `write_all`).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame(payload))
}

/// Blocking frame read: header, validation, then exactly the payload.
/// Returns `Ok(None)` on a clean EOF *before* the first header byte
/// (the peer simply closed between frames).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut header = [0u8; 8];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(ProtoError::Truncated)
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = parse_header(&header)? as usize;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn write_symbols(w: &mut impl Write, seq: &[Symbol]) -> io::Result<()> {
    write_u32(w, seq.len() as u32)?;
    for s in seq {
        w.write_all(&s.0.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a `u32`-counted symbol vector, validating the count against the
/// bytes remaining before allocating.
fn read_symbols(r: &mut SliceReader<'_>) -> Result<Vec<Symbol>, ProtoError> {
    let n = read_u32(r).map_err(ProtoError::from)? as usize;
    if n * 2 > r.remaining() {
        return Err(ProtoError::Corrupt("symbol count exceeds payload"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut b = [0u8; 2];
        r.read_exact(&mut b).map_err(ProtoError::from)?;
        out.push(Symbol(u16::from_le_bytes(b)));
    }
    Ok(out)
}

/// A slice cursor that knows how many bytes remain — the count-validation
/// primitive the decoders use before allocating.
struct SliceReader<'a> {
    buf: &'a [u8],
}

impl SliceReader<'_> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }
}

impl Read for SliceReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let n = out.len().min(self.buf.len());
        out[..n].copy_from_slice(&self.buf[..n]);
        self.buf = &self.buf[n..];
        Ok(n)
    }
}

fn read_string(r: &mut SliceReader<'_>, what: &'static str) -> Result<String, ProtoError> {
    let len = read_u32(r).map_err(ProtoError::from)? as usize;
    if len > r.remaining() {
        return Err(ProtoError::Corrupt(what));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes).map_err(ProtoError::from)?;
    String::from_utf8(bytes).map_err(|_| ProtoError::Corrupt(what))
}

fn write_string(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

impl Request {
    /// Encodes the request payload (no frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let w = &mut out;
        let infallible = "Vec write cannot fail";
        match self {
            Request::Assign { seq } => {
                w.push(OP_ASSIGN);
                write_symbols(w, seq).expect(infallible);
            }
            Request::Score { seq } => {
                w.push(OP_SCORE);
                write_symbols(w, seq).expect(infallible);
            }
            Request::Anomaly { seq, threshold } => {
                w.push(OP_ANOMALY);
                match threshold {
                    Some(t) => {
                        w.push(1);
                        write_f64(w, *t).expect(infallible);
                    }
                    None => w.push(0),
                }
                write_symbols(w, seq).expect(infallible);
            }
            Request::Info => w.push(OP_INFO),
            Request::Swap { path } => {
                w.push(OP_SWAP);
                write_string(w, path).expect(infallible);
            }
            Request::Shutdown => w.push(OP_SHUTDOWN),
        }
        out
    }

    /// Encodes the complete frame (header + payload).
    pub fn encode_frame(&self) -> Vec<u8> {
        frame(&self.encode_payload())
    }

    /// Decodes a request payload; total over arbitrary bytes.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = SliceReader { buf: payload };
        let mut op = [0u8; 1];
        r.read_exact(&mut op).map_err(ProtoError::from)?;
        let req = match op[0] {
            OP_ASSIGN => Request::Assign {
                seq: read_symbols(&mut r)?,
            },
            OP_SCORE => Request::Score {
                seq: read_symbols(&mut r)?,
            },
            OP_ANOMALY => {
                let mut has = [0u8; 1];
                r.read_exact(&mut has).map_err(ProtoError::from)?;
                let threshold = match has[0] {
                    0 => None,
                    1 => Some(read_f64(&mut r).map_err(ProtoError::from)?),
                    _ => return Err(ProtoError::Corrupt("anomaly threshold flag")),
                };
                Request::Anomaly {
                    seq: read_symbols(&mut r)?,
                    threshold,
                }
            }
            OP_INFO => Request::Info,
            OP_SWAP => Request::Swap {
                path: read_string(&mut r, "swap path")?,
            },
            OP_SHUTDOWN => Request::Shutdown,
            other => return Err(ProtoError::BadTag(other)),
        };
        if r.remaining() != 0 {
            return Err(ProtoError::Corrupt("trailing bytes"));
        }
        Ok(req)
    }
}

impl Response {
    /// The model generation that produced this answer, when the variant
    /// carries one (errors and the shutdown ack do not). Observability
    /// stamps slow-request records with it.
    pub fn generation(&self) -> Option<u64> {
        match self {
            Response::Assign { generation, .. }
            | Response::Score { generation, .. }
            | Response::Anomaly { generation, .. }
            | Response::Info { generation, .. }
            | Response::Swapped { generation, .. } => Some(*generation),
            Response::ShuttingDown | Response::Error { .. } => None,
        }
    }

    /// Encodes the response payload (no frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let w = &mut out;
        let infallible = "Vec write cannot fail";
        match self {
            Response::Assign { generation, hits } => {
                w.push(TAG_ASSIGN);
                write_u64(w, *generation).expect(infallible);
                write_u32(w, hits.len() as u32).expect(infallible);
                for (slot, sim) in hits {
                    write_u32(w, *slot).expect(infallible);
                    write_f64(w, *sim).expect(infallible);
                }
            }
            Response::Score { generation, scores } => {
                w.push(TAG_SCORE);
                write_u64(w, *generation).expect(infallible);
                write_u32(w, scores.len() as u32).expect(infallible);
                for s in scores {
                    write_u32(w, s.slot).expect(infallible);
                    write_f64(w, s.log_sim).expect(infallible);
                    write_u32(w, s.start).expect(infallible);
                    write_u32(w, s.end).expect(infallible);
                }
            }
            Response::Anomaly {
                generation,
                anomalous,
                best_log_sim,
                threshold,
                best_slot,
            } => {
                w.push(TAG_ANOMALY);
                write_u64(w, *generation).expect(infallible);
                w.push(u8::from(*anomalous));
                write_f64(w, *best_log_sim).expect(infallible);
                write_f64(w, *threshold).expect(infallible);
                write_u32(w, best_slot.unwrap_or(u32::MAX)).expect(infallible);
            }
            Response::Info {
                generation,
                clusters,
                alphabet,
                log_t,
                kernel,
            } => {
                w.push(TAG_INFO);
                write_u64(w, *generation).expect(infallible);
                write_u32(w, *clusters).expect(infallible);
                write_u32(w, *alphabet).expect(infallible);
                write_f64(w, *log_t).expect(infallible);
                w.push(*kernel);
            }
            Response::Swapped {
                generation,
                clusters,
            } => {
                w.push(TAG_SWAPPED);
                write_u64(w, *generation).expect(infallible);
                write_u32(w, *clusters).expect(infallible);
            }
            Response::ShuttingDown => w.push(TAG_SHUTTING_DOWN),
            Response::Error { code, message } => {
                w.push(TAG_ERROR);
                w.extend_from_slice(&code.to_le_bytes());
                write_string(w, message).expect(infallible);
            }
        }
        out
    }

    /// Encodes the complete frame (header + payload).
    pub fn encode_frame(&self) -> Vec<u8> {
        frame(&self.encode_payload())
    }

    /// Decodes a response payload; total over arbitrary bytes.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = SliceReader { buf: payload };
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag).map_err(ProtoError::from)?;
        let resp = match tag[0] {
            TAG_ASSIGN => {
                let generation = read_u64(&mut r).map_err(ProtoError::from)?;
                let k = read_u32(&mut r).map_err(ProtoError::from)? as usize;
                if k * 12 > r.remaining() {
                    return Err(ProtoError::Corrupt("assign count exceeds payload"));
                }
                let mut hits = Vec::with_capacity(k);
                for _ in 0..k {
                    let slot = read_u32(&mut r).map_err(ProtoError::from)?;
                    let sim = read_f64(&mut r).map_err(ProtoError::from)?;
                    hits.push((slot, sim));
                }
                Response::Assign { generation, hits }
            }
            TAG_SCORE => {
                let generation = read_u64(&mut r).map_err(ProtoError::from)?;
                let k = read_u32(&mut r).map_err(ProtoError::from)? as usize;
                if k * 20 > r.remaining() {
                    return Err(ProtoError::Corrupt("score count exceeds payload"));
                }
                let mut scores = Vec::with_capacity(k);
                for _ in 0..k {
                    scores.push(ClusterScore {
                        slot: read_u32(&mut r).map_err(ProtoError::from)?,
                        log_sim: read_f64(&mut r).map_err(ProtoError::from)?,
                        start: read_u32(&mut r).map_err(ProtoError::from)?,
                        end: read_u32(&mut r).map_err(ProtoError::from)?,
                    });
                }
                Response::Score { generation, scores }
            }
            TAG_ANOMALY => {
                let generation = read_u64(&mut r).map_err(ProtoError::from)?;
                let mut flag = [0u8; 1];
                r.read_exact(&mut flag).map_err(ProtoError::from)?;
                if flag[0] > 1 {
                    return Err(ProtoError::Corrupt("anomaly verdict flag"));
                }
                let best_log_sim = read_f64(&mut r).map_err(ProtoError::from)?;
                let threshold = read_f64(&mut r).map_err(ProtoError::from)?;
                let raw_slot = read_u32(&mut r).map_err(ProtoError::from)?;
                Response::Anomaly {
                    generation,
                    anomalous: flag[0] == 1,
                    best_log_sim,
                    threshold,
                    best_slot: (raw_slot != u32::MAX).then_some(raw_slot),
                }
            }
            TAG_INFO => {
                let generation = read_u64(&mut r).map_err(ProtoError::from)?;
                let clusters = read_u32(&mut r).map_err(ProtoError::from)?;
                let alphabet = read_u32(&mut r).map_err(ProtoError::from)?;
                let log_t = read_f64(&mut r).map_err(ProtoError::from)?;
                let mut kernel = [0u8; 1];
                r.read_exact(&mut kernel).map_err(ProtoError::from)?;
                Response::Info {
                    generation,
                    clusters,
                    alphabet,
                    log_t,
                    kernel: kernel[0],
                }
            }
            TAG_SWAPPED => Response::Swapped {
                generation: read_u64(&mut r).map_err(ProtoError::from)?,
                clusters: read_u32(&mut r).map_err(ProtoError::from)?,
            },
            TAG_SHUTTING_DOWN => Response::ShuttingDown,
            TAG_ERROR => {
                let mut code = [0u8; 2];
                r.read_exact(&mut code).map_err(ProtoError::from)?;
                Response::Error {
                    code: u16::from_le_bytes(code),
                    message: read_string(&mut r, "error message")?,
                }
            }
            other => return Err(ProtoError::BadTag(other)),
        };
        if r.remaining() != 0 {
            return Err(ProtoError::Corrupt("trailing bytes"));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) {
        let payload = req.encode_payload();
        let back = Request::decode_payload(&payload).expect("decodes");
        assert_eq!(&back, req);
    }

    fn roundtrip_response(resp: &Response) {
        let payload = resp.encode_payload();
        let back = Response::decode_payload(&payload).expect("decodes");
        assert_eq!(&back, resp);
    }

    #[test]
    fn request_payloads_round_trip() {
        let seq = vec![Symbol(0), Symbol(7), Symbol(65535)];
        roundtrip_request(&Request::Assign { seq: seq.clone() });
        roundtrip_request(&Request::Score { seq: Vec::new() });
        roundtrip_request(&Request::Anomaly {
            seq,
            threshold: Some(-3.25),
        });
        roundtrip_request(&Request::Anomaly {
            seq: Vec::new(),
            threshold: None,
        });
        roundtrip_request(&Request::Info);
        roundtrip_request(&Request::Swap {
            path: "/tmp/model.cseq".into(),
        });
        roundtrip_request(&Request::Shutdown);
    }

    #[test]
    fn response_payloads_round_trip() {
        roundtrip_response(&Response::Assign {
            generation: 3,
            hits: vec![(0, 1.5), (2, f64::NEG_INFINITY)],
        });
        roundtrip_response(&Response::Score {
            generation: 1,
            scores: vec![ClusterScore {
                slot: 1,
                log_sim: -0.25,
                start: 3,
                end: 17,
            }],
        });
        roundtrip_response(&Response::Anomaly {
            generation: 9,
            anomalous: true,
            best_log_sim: -1.0,
            threshold: 0.5,
            best_slot: None,
        });
        roundtrip_response(&Response::Info {
            generation: 2,
            clusters: 5,
            alphabet: 40,
            log_t: 0.125,
            kernel: 1,
        });
        roundtrip_response(&Response::Swapped {
            generation: 4,
            clusters: 7,
        });
        roundtrip_response(&Response::ShuttingDown);
        roundtrip_response(&Response::Error {
            code: errcode::SWAP_FAILED,
            message: "no such file".into(),
        });
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&FRAME_MAGIC);
        header[4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            parse_header(&header),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let header = *b"HTTP\x00\x00\x00\x00";
        assert!(matches!(
            parse_header(&header),
            Err(ProtoError::BadMagic(_))
        ));
    }

    #[test]
    fn lying_symbol_count_is_rejected_without_allocation() {
        // An ASSIGN payload claiming 2^31 symbols in 4 bytes of body.
        let mut payload = vec![OP_ASSIGN];
        payload.extend_from_slice(&(1u32 << 31).to_le_bytes());
        payload.extend_from_slice(&[0, 0]);
        assert!(matches!(
            Request::decode_payload(&payload),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_payloads_never_panic() {
        let full = Request::Anomaly {
            seq: vec![Symbol(3); 9],
            threshold: Some(1.5),
        }
        .encode_payload();
        for cut in 0..full.len() {
            assert!(
                Request::decode_payload(&full[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        assert!(Request::decode_payload(&full).is_ok());
    }

    #[test]
    fn frame_read_round_trips_and_reports_clean_eof() {
        let req = Request::Info;
        let bytes = req.encode_frame();
        let mut cursor = &bytes[..];
        let payload = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(Request::decode_payload(&payload).unwrap(), req);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
        // EOF mid-header is truncation, not clean.
        let mut cut = &bytes[..5];
        assert!(matches!(read_frame(&mut cut), Err(ProtoError::Truncated)));
    }
}
