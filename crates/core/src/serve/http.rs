//! The curl-facing HTTP/1.1 JSON facade of the serve daemon.
//!
//! Any connection whose first byte is not the binary frame magic is
//! treated as one HTTP request (answered with `Connection: close`).
//! Queries go through the same [`ServeEngine`] queue as binary clients,
//! so an HTTP `POST /assign` is batched, generation-stamped, and
//! bit-identical to its binary twin — the facade only translates
//! encodings.
//!
//! Sequences are accepted in two spellings: whitespace/comma-separated
//! numeric symbol ids (`"0 1 0 1"`), or one character per symbol using
//! the CLI's single-character alphabet order (`"abab"`, a–z then A–Z then
//! 0–9).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use cluseq_seq::Symbol;

use crate::serve::engine::{Scored, ServeEngine, Work};
use crate::serve::obs::{RequestRecord, ServeObs, ServeOp, StageNanos};
use crate::serve::protocol::{errcode, Response};
use crate::trace::{self, exporter};

/// The CLI's single-character alphabet order (`single_char_recode`):
/// index in this string = symbol id.
const CHARS: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

const MAX_HEAD: usize = 16 * 1024;
const MAX_BODY: usize = 1024 * 1024;

/// The transport-side half of an HTTP request's timeline: its id plus the
/// accept stage (head + body read). Absent when observability is off.
#[derive(Clone, Copy)]
struct HttpMeta {
    request_id: u64,
    accept_nanos: u64,
}

/// Serves one HTTP request on `stream`; `first` is the already-consumed
/// first byte. The whole request must arrive before `deadline`.
pub(crate) fn handle(
    stream: &mut TcpStream,
    first: u8,
    engine: &Arc<ServeEngine>,
    obs: Option<&Arc<ServeObs>>,
    deadline: Instant,
) {
    let started = obs.map(|o| (o.next_request_id(), Instant::now()));
    let meta_error = |message: &str| {
        if let Some(o) = obs {
            o.record_meta(true);
        }
        let _ = message;
    };
    let mut head = vec![first];
    if !read_head(stream, &mut head, deadline) {
        respond(stream, 408, "text/plain", "request head timed out\n");
        meta_error("head timeout");
        return;
    }
    let head_end = match head.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(at) => at + 4,
        None => {
            respond(stream, 400, "text/plain", "malformed request head\n");
            meta_error("malformed head");
            return;
        }
    };
    let mut body = head.split_off(head_end);
    let head_text = match std::str::from_utf8(&head) {
        Ok(s) => s,
        Err(_) => {
            respond(stream, 400, "text/plain", "request head is not UTF-8\n");
            meta_error("non-utf8 head");
            return;
        }
    };
    let mut lines = head_text.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => {
            respond(stream, 400, "text/plain", "malformed request line\n");
            meta_error("malformed request line");
            return;
        }
    };
    let content_length = lines
        .filter_map(|line| line.split_once(':'))
        .find(|(name, _)| name.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        respond(stream, 413, "text/plain", "body too large\n");
        meta_error("oversized body");
        return;
    }
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        if Instant::now() >= deadline {
            respond(stream, 408, "text/plain", "request body timed out\n");
            meta_error("body timeout");
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
    body.truncate(content_length);

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let meta = started.map(|(request_id, t)| HttpMeta {
        request_id,
        accept_nanos: trace::nanos_since(t),
    });
    route(stream, method, path, query, &body, engine, obs, meta);
}

/// Dispatches one parsed request and records its outcome: scoring and
/// admin endpoints get a full per-opcode request record, facade meta
/// endpoints (`/metrics`, `/healthz`, `/readyz`, unknown paths) feed only
/// the aggregate counters.
#[allow(clippy::too_many_arguments)]
fn route(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    query: &str,
    body: &[u8],
    engine: &Arc<ServeEngine>,
    obs: Option<&Arc<ServeObs>>,
    meta: Option<HttpMeta>,
) {
    let record_meta = |error: bool| {
        if let Some(o) = obs {
            o.record_meta(error);
        }
    };
    match (method, path) {
        ("GET", "/info") => {
            let response = engine.current().info();
            finish(stream, obs, meta, ServeOp::Info, Scored::immediate(response), 0, 0);
        }
        ("GET", "/healthz") => {
            // Liveness: the accept loop handed us this request, so the
            // process is alive by construction.
            respond(stream, 200, "text/plain", "ok\n");
            record_meta(false);
        }
        ("GET", "/readyz") => {
            // Readiness: a model generation is loaded by construction
            // (the daemon cannot start without one); the queue still
            // accepting work is the live half of the probe.
            if engine.is_ready() {
                respond(stream, 200, "text/plain", "ready\n");
            } else {
                respond(stream, 503, "text/plain", "draining\n");
            }
            record_meta(false);
        }
        ("GET", "/metrics") => match obs {
            Some(o) => {
                respond(
                    stream,
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    &exporter::render(o.registry()),
                );
                record_meta(false);
            }
            None => {
                respond(stream, 404, "text/plain", "tracing is not enabled\n");
            }
        },
        ("POST", "/assign") | ("POST", "/score") | ("POST", "/anomaly") => {
            let op = match path {
                "/assign" => ServeOp::Assign,
                "/score" => ServeOp::Score,
                _ => ServeOp::Anomaly,
            };
            let decode_start = meta.map(|_| Instant::now());
            let seq = match parse_sequence(body) {
                Ok(seq) => seq,
                Err(e) => {
                    respond(stream, 400, "text/plain", &format!("{e}\n"));
                    record_op_error(obs, meta, op, decode_start.map_or(0, trace::nanos_since));
                    return;
                }
            };
            let work = match op {
                ServeOp::Assign => Work::Assign(seq),
                ServeOp::Score => Work::Score(seq),
                _ => {
                    let threshold = match query_threshold(query) {
                        Ok(t) => t,
                        Err(e) => {
                            respond(stream, 400, "text/plain", &format!("{e}\n"));
                            record_op_error(
                                obs,
                                meta,
                                op,
                                decode_start.map_or(0, trace::nanos_since),
                            );
                            return;
                        }
                    };
                    Work::Anomaly(seq, threshold)
                }
            };
            let seq_len = match &work {
                Work::Assign(s) | Work::Score(s) | Work::Anomaly(s, _) => s.len(),
            };
            let decode_nanos = decode_start.map_or(0, trace::nanos_since);
            let scored = engine
                .submit(work)
                .recv()
                .unwrap_or_else(|_| Scored::draining());
            finish(stream, obs, meta, op, scored, seq_len, decode_nanos);
        }
        ("POST", "/swap") => {
            let path_text = String::from_utf8_lossy(body).trim().to_string();
            match engine.swap(Path::new(&path_text)) {
                Ok((generation, clusters)) => {
                    finish(
                        stream,
                        obs,
                        meta,
                        ServeOp::Swap,
                        Scored::immediate(Response::Swapped {
                            generation,
                            clusters,
                        }),
                        0,
                        0,
                    );
                }
                Err(e) => {
                    respond(stream, 409, "text/plain", &format!("swap failed: {e}\n"));
                    record_op_error(obs, meta, ServeOp::Swap, 0);
                }
            }
        }
        _ => {
            respond(
                stream,
                404,
                "text/plain",
                "endpoints: GET /info /metrics /healthz /readyz, \
                 POST /assign /score /anomaly /swap\n",
            );
            record_meta(true);
        }
    }
}

/// Encodes and writes the JSON answer; with observability on, times the
/// encode and write-back stages and records the full request timeline.
fn finish(
    stream: &mut TcpStream,
    obs: Option<&Arc<ServeObs>>,
    meta: Option<HttpMeta>,
    op: ServeOp,
    scored: Scored,
    seq_len: usize,
    decode_nanos: u64,
) {
    let Scored {
        response,
        enqueued: _,
        queue_wait_nanos,
        batch_form_nanos,
        scan_nanos,
    } = scored;
    match (obs, meta) {
        (Some(obs), Some(meta)) => {
            let encode_start = Instant::now();
            let (status, body) = to_json(&response);
            let write_start = Instant::now();
            respond(stream, status, "application/json", &body);
            let stages = StageNanos {
                accept: meta.accept_nanos,
                decode: decode_nanos,
                queue_wait: queue_wait_nanos,
                batch_form: batch_form_nanos,
                scan: scan_nanos,
                encode: trace::saturating_nanos(write_start.duration_since(encode_start)),
                write_back: trace::nanos_since(write_start),
            };
            obs.record(&RequestRecord {
                request_id: meta.request_id,
                op,
                transport: "http",
                generation: response.generation(),
                seq_len,
                error: matches!(response, Response::Error { .. }),
                stages,
            });
        }
        _ => send_response(stream, &response),
    }
}

/// Records a request that failed before reaching the queue but whose
/// opcode is known from the path (parse errors, failed swaps).
fn record_op_error(
    obs: Option<&Arc<ServeObs>>,
    meta: Option<HttpMeta>,
    op: ServeOp,
    decode_nanos: u64,
) {
    if let (Some(obs), Some(meta)) = (obs, meta) {
        obs.record(&RequestRecord {
            request_id: meta.request_id,
            op,
            transport: "http",
            generation: None,
            seq_len: 0,
            error: true,
            stages: StageNanos {
                accept: meta.accept_nanos,
                decode: decode_nanos,
                ..Default::default()
            },
        });
    }
}

fn read_head(stream: &mut TcpStream, head: &mut Vec<u8>, deadline: Instant) -> bool {
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_HEAD || Instant::now() >= deadline {
            return false;
        }
        match stream.read(&mut buf) {
            Ok(0) => return true, // clean end; caller validates
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return false,
        }
    }
    true
}

/// Parses a query sequence: numeric symbol ids if every token is a
/// number, otherwise one character per symbol via [`CHARS`].
fn parse_sequence(body: &[u8]) -> Result<Vec<Symbol>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "sequence body is not UTF-8".to_string())?;
    let text = text.trim();
    if text.is_empty() {
        return Ok(Vec::new());
    }
    let tokens: Vec<&str> = text
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|t| !t.is_empty())
        .collect();
    if tokens.iter().all(|t| t.bytes().all(|b| b.is_ascii_digit())) {
        return tokens
            .iter()
            .map(|t| {
                t.parse::<u16>()
                    .map(Symbol)
                    .map_err(|_| format!("symbol id {t} does not fit u16"))
            })
            .collect();
    }
    text.chars()
        .filter(|c| !c.is_whitespace())
        .map(|c| {
            CHARS
                .find(c)
                .map(|i| Symbol(i as u16))
                .ok_or_else(|| format!("character {c:?} is not a single-char alphabet symbol"))
        })
        .collect()
}

fn query_threshold(query: &str) -> Result<Option<f64>, String> {
    for pair in query.split('&') {
        if let Some((key, value)) = pair.split_once('=') {
            if key == "threshold" {
                return value
                    .parse::<f64>()
                    .map(Some)
                    .map_err(|_| format!("threshold {value:?} is not a number"));
            }
        }
    }
    Ok(None)
}

/// A JSON number, with non-finite values mapped to `null` (JSON has no
/// infinities; `-inf` is the score of an empty sequence).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn to_json(response: &Response) -> (u16, String) {
    match response {
        Response::Assign { generation, hits } => {
            let items: Vec<String> = hits
                .iter()
                .map(|(slot, sim)| format!("{{\"slot\":{slot},\"log_sim\":{}}}", json_f64(*sim)))
                .collect();
            (
                200,
                format!(
                    "{{\"generation\":{generation},\"hits\":[{}]}}",
                    items.join(",")
                ),
            )
        }
        Response::Score { generation, scores } => {
            let items: Vec<String> = scores
                .iter()
                .map(|s| {
                    format!(
                        "{{\"slot\":{},\"log_sim\":{},\"start\":{},\"end\":{}}}",
                        s.slot,
                        json_f64(s.log_sim),
                        s.start,
                        s.end
                    )
                })
                .collect();
            (
                200,
                format!(
                    "{{\"generation\":{generation},\"scores\":[{}]}}",
                    items.join(",")
                ),
            )
        }
        Response::Anomaly {
            generation,
            anomalous,
            best_log_sim,
            threshold,
            best_slot,
        } => (
            200,
            format!(
                "{{\"generation\":{generation},\"anomalous\":{anomalous},\
                 \"best_log_sim\":{},\"threshold\":{},\"best_slot\":{}}}",
                json_f64(*best_log_sim),
                json_f64(*threshold),
                best_slot.map_or("null".into(), |s| s.to_string()),
            ),
        ),
        Response::Info {
            generation,
            clusters,
            alphabet,
            log_t,
            kernel,
        } => (
            200,
            format!(
                "{{\"generation\":{generation},\"clusters\":{clusters},\
                 \"alphabet\":{alphabet},\"log_t\":{},\"kernel\":\"{}\"}}",
                json_f64(*log_t),
                match kernel {
                    1 => "compiled",
                    2 => "batched",
                    3 => "quantized",
                    _ => "interpreted",
                },
            ),
        ),
        Response::Swapped {
            generation,
            clusters,
        } => (
            200,
            format!("{{\"generation\":{generation},\"clusters\":{clusters}}}"),
        ),
        Response::ShuttingDown => (503, "{\"error\":\"shutting down\"}".into()),
        Response::Error { code, message } => {
            let status = match *code {
                errcode::SHUTTING_DOWN => 503,
                errcode::SWAP_FAILED => 409,
                _ => 400,
            };
            (
                status,
                format!(
                    "{{\"error\":{:?},\"code\":{code}}}",
                    message.replace('"', "'")
                ),
            )
        }
    }
}

fn send_response(stream: &mut TcpStream, response: &Response) {
    let (status, body) = to_json(response);
    respond(stream, status, "application/json", &body);
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_bodies_parse_both_spellings() {
        assert_eq!(
            parse_sequence(b"0, 1 2").unwrap(),
            vec![Symbol(0), Symbol(1), Symbol(2)]
        );
        assert_eq!(
            parse_sequence(b"aba").unwrap(),
            vec![Symbol(0), Symbol(1), Symbol(0)]
        );
        assert_eq!(parse_sequence(b"Z9").unwrap(), vec![Symbol(51), Symbol(61)]);
        assert_eq!(parse_sequence(b"  ").unwrap(), Vec::new());
        assert!(parse_sequence(b"~").is_err());
        assert!(parse_sequence(b"99999").is_err());
        assert!(parse_sequence(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn threshold_query_parses() {
        assert_eq!(query_threshold("threshold=0.5").unwrap(), Some(0.5));
        assert_eq!(query_threshold("a=b&threshold=-2").unwrap(), Some(-2.0));
        assert_eq!(query_threshold("").unwrap(), None);
        assert!(query_threshold("threshold=x").is_err());
    }

    #[test]
    fn non_finite_scores_become_null() {
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
        let (status, body) = to_json(&Response::Anomaly {
            generation: 1,
            anomalous: true,
            best_log_sim: f64::NEG_INFINITY,
            threshold: 0.0,
            best_slot: None,
        });
        assert_eq!(status, 200);
        assert!(body.contains("\"best_log_sim\":null"));
        assert!(body.contains("\"best_slot\":null"));
    }
}
