//! The batching dispatcher: concurrent requests in, deterministic
//! batched scoring out.
//!
//! # Design
//!
//! Connection handlers enqueue [`Work`] items into a single mutex-guarded
//! queue and block on a per-job reply channel. One dispatcher thread
//! drains the queue in arrival order, up to `max_batch` jobs at a time,
//! pins the live model `Arc` **once per batch**, and evaluates the batch
//! through [`parallel_map`] — the same contiguous-chunk deterministic map
//! the offline scan uses. Each job's answer is therefore the exact bytes
//! a single-request server would produce: scoring is a pure function of
//! (model generation, query), and batching only changes *when* it runs,
//! never *what* it computes.
//!
//! # Observability
//!
//! When an observability bundle is attached, every reply travels back as
//! a [`Scored`] carrying the dispatcher-side stage timings — queue wait
//! (enqueue → drained), batch formation (drained → scan start), and the
//! scan itself — so the connection handler that owns the request can
//! record its full timeline in one place. The dispatcher also maintains
//! the queue-depth and in-flight gauges and observes the per-batch job
//! count; per-request counting happens in the handlers, never here, so
//! each request is counted exactly once.
//!
//! # Hot swap
//!
//! [`ServeEngine::swap`] builds the replacement generation entirely
//! outside the model lock, then installs it with a single `RwLock` write.
//! Batches already holding the old `Arc` finish against the old
//! generation; the next batch pins the new one. No request is ever
//! dropped or scored against a half-installed model, and every response
//! carries the generation that actually scored it. A failed load leaves
//! the old generation serving untouched.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};

use cluseq_seq::{SequenceStore, Symbol};

use crate::score::parallel_map;
use crate::serve::model::ServeModel;
use crate::serve::obs::ServeObs;
use crate::serve::protocol::{errcode, Response};
use crate::trace::stamp::Stamp;
use crate::trace::{Counter, Gauge, HistKind};

/// One scoring query, decoded and validated off the wire.
#[derive(Debug, Clone)]
pub enum Work {
    /// ASSIGN: clusters the sequence joins under the stored threshold.
    Assign(Vec<Symbol>),
    /// SCORE: full per-cluster similarity.
    Score(Vec<Symbol>),
    /// ANOMALY: verdict against the stored or overridden threshold.
    Anomaly(Vec<Symbol>, Option<f64>),
}

/// A batched answer plus the dispatcher-side stage timings (all zero when
/// the engine runs without observability, or when the queue was already
/// closed).
#[derive(Debug)]
pub struct Scored {
    /// The response the batch produced for this job.
    pub response: Response,
    /// When the job entered the queue — the transport handler reads it
    /// as the end of its decode stage, so the decode/queue seam costs no
    /// extra clock read. `None` for responses that never queued.
    pub enqueued: Option<Stamp>,
    /// Enqueue until the dispatcher drained the job into a batch.
    pub queue_wait_nanos: u64,
    /// Batch drain until batch scoring began (model pinning).
    pub batch_form_nanos: u64,
    /// The batched scoring pass this job rode in.
    pub scan_nanos: u64,
}

impl Scored {
    /// Wraps a response produced outside the queue (admin opcodes):
    /// queue-stage timings are zero by definition.
    pub fn immediate(response: Response) -> Self {
        Scored {
            response,
            enqueued: None,
            queue_wait_nanos: 0,
            batch_form_nanos: 0,
            scan_nanos: 0,
        }
    }

    /// The immediate answer for work submitted after the queue closed.
    pub fn draining() -> Self {
        Scored::immediate(Response::Error {
            code: errcode::SHUTTING_DOWN,
            message: "server is draining".into(),
        })
    }
}

struct Job {
    work: Work,
    enqueued: Stamp,
    reply: mpsc::Sender<Scored>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The serving core: live model slot, request queue, dispatcher thread.
pub struct ServeEngine {
    model: RwLock<Arc<ServeModel>>,
    queue: Mutex<QueueState>,
    ready: Condvar,
    /// Serializes swaps so two concurrent SWAPs cannot both load against
    /// the same predecessor generation.
    swap_gate: Mutex<()>,
    next_generation: AtomicU64,
    threads: usize,
    max_batch: usize,
    db: Option<Box<dyn SequenceStore + Send>>,
    obs: Option<Arc<ServeObs>>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("generation", &self.generation())
            .field("threads", &self.threads)
            .field("max_batch", &self.max_batch)
            .finish_non_exhaustive()
    }
}

/// Joins the dispatcher thread when the engine shuts down; returned by
/// [`ServeEngine::start`] so the owner controls teardown order.
pub struct EngineHandle {
    engine: Arc<ServeEngine>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHandle").finish_non_exhaustive()
    }
}

impl EngineHandle {
    /// The engine this handle owns the dispatcher of.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// Marks the queue closed and joins the dispatcher. The dispatcher
    /// only exits once the queue is *empty*, so every job submitted
    /// before this call still receives its real scored answer — this is
    /// the drain half of the zero-drop guarantee.
    pub fn shutdown(mut self) {
        self.engine.close_queue();
        if let Some(handle) = self.dispatcher.take() {
            handle.join().expect("serve dispatcher panicked");
        }
    }
}

impl ServeEngine {
    /// Builds an engine around an initial model and starts its dispatcher.
    ///
    /// `db` is retained for hot-swapping to CCKP checkpoints (which need
    /// the training corpus to re-derive the background model); swaps to
    /// CSEQ snapshots work without it. Any [`SequenceStore`] serves — a
    /// file-backed store keeps the daemon's footprint bounded by the
    /// model, not the corpus.
    ///
    /// `threads` is clamped to the host's available parallelism: scoring
    /// is CPU-bound, so fanning out past the core count only adds spawn
    /// and scheduling overhead. [`parallel_map`] produces bit-identical
    /// output at every thread count, so the clamp never changes answers.
    pub fn start(
        initial: ServeModel,
        threads: usize,
        max_batch: usize,
        db: Option<Box<dyn SequenceStore + Send>>,
        obs: Option<Arc<ServeObs>>,
    ) -> EngineHandle {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let generation = initial.generation;
        let engine = Arc::new(ServeEngine {
            model: RwLock::new(Arc::new(initial)),
            queue: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            swap_gate: Mutex::new(()),
            next_generation: AtomicU64::new(generation + 1),
            threads: threads.clamp(1, cores),
            max_batch: max_batch.max(1),
            db,
            obs,
        });
        if let Some(o) = &engine.obs {
            o.registry().gauge_set(Gauge::ServeGeneration, generation);
        }
        let worker = Arc::clone(&engine);
        let dispatcher = std::thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || worker.dispatch_loop())
            .expect("spawn serve dispatcher");
        EngineHandle {
            engine,
            dispatcher: Some(dispatcher),
        }
    }

    /// The live model generation.
    pub fn generation(&self) -> u64 {
        self.model.read().expect("model lock poisoned").generation
    }

    /// A pinned handle to the live model (INFO queries bypass the queue).
    pub fn current(&self) -> Arc<ServeModel> {
        Arc::clone(&self.model.read().expect("model lock poisoned"))
    }

    /// Whether the engine still accepts work: the readiness probe.
    /// `false` once the queue has closed — the daemon is draining.
    pub fn is_ready(&self) -> bool {
        !self.queue.lock().expect("queue lock poisoned").shutdown
    }

    /// Enqueues one query. The returned receiver yields exactly one
    /// [`Scored`] — immediately a shutting-down error if the queue has
    /// already closed, otherwise the batched scoring answer with its
    /// dispatcher timings.
    pub fn submit(&self, work: Work) -> mpsc::Receiver<Scored> {
        let (tx, rx) = mpsc::channel();
        // Stamped before the queue lock: time spent waiting for the lock
        // is queue time, not decode time.
        let enqueued = Stamp::now();
        let mut q = self.queue.lock().expect("queue lock poisoned");
        if q.shutdown {
            drop(q);
            let _ = tx.send(Scored::draining());
            return rx;
        }
        q.jobs.push_back(Job {
            work,
            enqueued,
            reply: tx,
        });
        // The depth gauge is last-write-wins, so every write happens
        // under the queue lock (here and in the dispatcher's drain) —
        // writes then serialize in queue order and the final value always
        // matches the final queue state.
        if let Some(o) = &self.obs {
            let t = o.registry();
            t.gauge_set(Gauge::ServeQueueDepth, q.jobs.len() as u64);
            t.gauge_add(Gauge::ServeInFlight, 1);
        }
        drop(q);
        self.ready.notify_one();
        rx
    }

    /// Atomically replaces the live model with the one at `path`,
    /// returning the new generation and cluster count. On any failure the
    /// previous generation keeps serving, untouched.
    pub fn swap(&self, path: &Path) -> Result<(u64, u32), String> {
        let _gate = self.swap_gate.lock().expect("swap gate poisoned");
        let current = self.current();
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        // The expensive part — file read, deserialize, PST compilation —
        // happens here, before the write lock, so readers never wait on it.
        let fresh = ServeModel::load(
            path,
            self.db.as_deref().map(|d| d as &dyn SequenceStore),
            current.kernel,
            generation,
        )?;
        let clusters = fresh.saved.cluster_count() as u32;
        *self.model.write().expect("model lock poisoned") = Arc::new(fresh);
        if let Some(o) = &self.obs {
            let t = o.registry();
            t.add(Counter::ServeSwaps, 1);
            t.gauge_set(Gauge::ServeGeneration, generation);
            o.event_serve_swap(generation, clusters);
        }
        Ok((generation, clusters))
    }

    /// Reloads the live model from the file it was originally loaded from
    /// (the SIGHUP action).
    pub fn reload(&self) -> Result<(u64, u32), String> {
        let source = self.current().source.clone();
        self.swap(&source)
    }

    fn close_queue(&self) {
        let mut q = self.queue.lock().expect("queue lock poisoned");
        q.shutdown = true;
        drop(q);
        self.ready.notify_all();
    }

    fn dispatch_loop(&self) {
        loop {
            let batch: Vec<Job> = {
                let mut q = self.queue.lock().expect("queue lock poisoned");
                loop {
                    if !q.jobs.is_empty() {
                        let n = q.jobs.len().min(self.max_batch);
                        let batch: Vec<Job> = q.jobs.drain(..n).collect();
                        if let Some(o) = &self.obs {
                            o.registry()
                                .gauge_set(Gauge::ServeQueueDepth, q.jobs.len() as u64);
                        }
                        break batch;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.ready.wait(q).expect("queue lock poisoned");
                }
            };
            // Stage stamps are only taken when someone will read them:
            // untraced serving pays zero clock reads here.
            let drained_at = self.obs.as_ref().map(|_| Stamp::now());
            // Pin the model once: every job in this batch is answered by
            // the same generation, and a concurrent swap cannot free it
            // out from under the workers.
            let model = self.current();
            let scan_start = self.obs.as_ref().map(|_| Stamp::now());
            let responses = parallel_map(batch.len(), self.threads, |i| match &batch[i].work {
                Work::Assign(seq) => model.assign(seq),
                Work::Score(seq) => model.score(seq),
                Work::Anomaly(seq, threshold) => model.anomaly(seq, *threshold),
            });
            let scan_end = scan_start.map(|_| Stamp::now());
            let scan_nanos = match (scan_start, scan_end) {
                (Some(s), Some(e)) => e.nanos_since(s),
                _ => 0,
            };
            let batch_form_nanos = match (drained_at, scan_start) {
                (Some(d), Some(s)) => s.nanos_since(d),
                _ => 0,
            };
            // Replies go out before any registry bookkeeping: a blocked
            // connection handler wakes as early as possible (on one core
            // it may still be inside its recv spin-wait), and the metrics
            // writes below happen while the handlers are busy encoding.
            let batch_len = batch.len();
            for (job, response) in batch.into_iter().zip(responses) {
                let queue_wait_nanos = drained_at.map_or(0, |d| d.nanos_since(job.enqueued));
                // A vanished client (dropped receiver) is not an error.
                // The whole-lifetime `serve_request` histogram is fed by
                // the handler's `record` from these stage values.
                let _ = job.reply.send(Scored {
                    response,
                    enqueued: Some(job.enqueued),
                    queue_wait_nanos,
                    batch_form_nanos,
                    scan_nanos,
                });
            }
            if let Some(o) = &self.obs {
                let t = o.registry();
                t.add(Counter::ServeBatches, 1);
                // Jobs-per-batch rides the nanosecond histogram machinery
                // in "micro-jobs": n jobs stored as n·1000 so bucket b
                // covers [2^(b-1), 2^b) jobs; the exporter divides back.
                t.observe(HistKind::ServeBatchJobs, 0, batch_len as u64 * 1000);
                t.gauge_add(Gauge::ServeInFlight, -(batch_len as i64));
            }
        }
    }
}
