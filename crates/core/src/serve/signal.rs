//! SIGHUP (hot model reload) and SIGTERM (graceful drain) plumbing, with
//! no libc crate.
//!
//! std already links the platform C library on unix, so a one-line
//! `extern "C"` binding to `signal(2)` is all the daemon needs: the
//! handlers just flip an `AtomicBool` each (the only thing that is
//! async-signal-safe here), and the serve loop polls [`take`] /
//! [`take_term`] from a normal thread. On non-unix targets the module
//! compiles to inert stubs — [`install`] / [`install_term`] report
//! unsupported and the flags never fire.

use std::sync::atomic::{AtomicBool, Ordering};

static HUP_PENDING: AtomicBool = AtomicBool::new(false);
static TERM_PENDING: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{HUP_PENDING, TERM_PENDING};
    use std::sync::atomic::Ordering;

    /// `SIGHUP` from `<signal.h>`; value 1 on every unix Rust targets.
    pub const SIGHUP: i32 = 1;
    /// `SIGTERM` from `<signal.h>`; value 15 on every unix Rust targets.
    pub const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn raise(signum: i32) -> i32;
    }

    extern "C" fn on_hup(_sig: i32) {
        HUP_PENDING.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_term(_sig: i32) {
        TERM_PENDING.store(true, Ordering::SeqCst);
    }

    pub fn install() -> bool {
        // SIG_ERR is -1 cast to a handler pointer.
        unsafe { signal(SIGHUP, on_hup as *const () as usize) != usize::MAX }
    }

    pub fn install_term() -> bool {
        unsafe { signal(SIGTERM, on_term as *const () as usize) != usize::MAX }
    }

    pub fn raise_hup() {
        unsafe {
            raise(SIGHUP);
        }
    }

    pub fn raise_term() {
        unsafe {
            raise(SIGTERM);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }

    pub fn install_term() -> bool {
        false
    }

    pub fn raise_hup() {}

    pub fn raise_term() {}
}

/// Installs the SIGHUP handler. Returns `false` where unsupported (non-unix
/// targets, or `signal(2)` refusing the registration); the caller then
/// simply serves without signal-triggered reload.
pub fn install() -> bool {
    imp::install()
}

/// Installs the SIGTERM handler for graceful drain. Returns `false` where
/// unsupported; the process then falls back to the default (abrupt)
/// termination behavior.
pub fn install_term() -> bool {
    imp::install_term()
}

/// Consumes a pending SIGHUP, if one arrived since the last call.
pub fn take() -> bool {
    HUP_PENDING.swap(false, Ordering::SeqCst)
}

/// Consumes a pending SIGTERM, if one arrived since the last call.
pub fn take_term() -> bool {
    TERM_PENDING.swap(false, Ordering::SeqCst)
}

/// Sends the process a SIGHUP (test hook; no-op on non-unix targets).
pub fn raise_hup() {
    imp::raise_hup()
}

/// Sends the process a SIGTERM (test hook; no-op on non-unix targets).
pub fn raise_term() {
    imp::raise_term()
}
