//! SIGHUP plumbing for hot model reload, with no libc crate.
//!
//! std already links the platform C library on unix, so a one-line
//! `extern "C"` binding to `signal(2)` is all the daemon needs: the
//! handler just flips an `AtomicBool` (the only thing that is
//! async-signal-safe here), and the serve loop polls [`take`] from a
//! normal thread. On non-unix targets the module compiles to inert
//! stubs — [`install`] reports unsupported and [`take`] never fires.

use std::sync::atomic::{AtomicBool, Ordering};

static HUP_PENDING: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::HUP_PENDING;
    use std::sync::atomic::Ordering;

    /// `SIGHUP` from `<signal.h>`; value 1 on every unix Rust targets.
    pub const SIGHUP: i32 = 1;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn raise(signum: i32) -> i32;
    }

    extern "C" fn on_hup(_sig: i32) {
        HUP_PENDING.store(true, Ordering::SeqCst);
    }

    pub fn install() -> bool {
        // SIG_ERR is -1 cast to a handler pointer.
        unsafe { signal(SIGHUP, on_hup as *const () as usize) != usize::MAX }
    }

    pub fn raise_hup() {
        unsafe {
            raise(SIGHUP);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }

    pub fn raise_hup() {}
}

/// Installs the SIGHUP handler. Returns `false` where unsupported (non-unix
/// targets, or `signal(2)` refusing the registration); the caller then
/// simply serves without signal-triggered reload.
pub fn install() -> bool {
    imp::install()
}

/// Consumes a pending SIGHUP, if one arrived since the last call.
pub fn take() -> bool {
    HUP_PENDING.swap(false, Ordering::SeqCst)
}

/// Sends the process a SIGHUP (test hook; no-op on non-unix targets).
pub fn raise_hup() {
    imp::raise_hup()
}
