//! Request observability for the serve daemon: request ids, per-stage
//! timelines, per-opcode counters and latency histograms, the crash-safe
//! slow-request log, and the serve JSONL trace stream.
//!
//! One [`ServeObs`] bundle is shared by the accept loop, every connection
//! handler, and the dispatcher. All hot-path state lives in the sharded
//! [`TraceShared`] registry (relaxed atomics, no locks), so recording a
//! request never blocks another; the two JSONL sinks (slow log and serve
//! trace) are mutex-guarded but off the common path — the slow log is
//! only touched by outliers and the trace stream only by lifecycle
//! events (start, swap, end).
//!
//! # Request lifecycle
//!
//! Every accepted request is assigned a process-unique id and timed
//! through seven stages:
//!
//! ```text
//! accept → decode → queue_wait → batch_form → scan → encode → write_back
//! ```
//!
//! `accept`/`decode`/`encode`/`write_back` are measured by the transport
//! handler (binary framing or the HTTP facade); `queue_wait`,
//! `batch_form`, and `scan` are stamped by the dispatcher and travel back
//! with the response. Admin opcodes (INFO, SWAP, SHUTDOWN) never enter
//! the queue, so their queue stages are zero and they are excluded from
//! the queue-stage histograms.
//!
//! # Determinism
//!
//! Counter totals (per-opcode and aggregate) and histogram *observation
//! counts* are bit-identical across `--threads` for the same request
//! sequence — every completed request is recorded exactly once, from the
//! one handler that owns it. Bucket placement is wall-clock and therefore
//! not part of the contract; nor is [`Counter::ServeSlow`], which depends
//! on measured latency. `tests/serve_obs.rs` enforces the deterministic
//! half.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::telemetry::JsonWriter;
use crate::trace::sink::JsonlSink;
use crate::trace::{Counter, HistKind, TraceShared, HIST_BUCKETS, SHARDS};

/// The serve opcodes, as observability sees them (one label per opcode,
/// both transports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOp {
    /// ASSIGN / `POST /assign`.
    Assign,
    /// SCORE / `POST /score`.
    Score,
    /// ANOMALY / `POST /anomaly`.
    Anomaly,
    /// INFO / `GET /info`.
    Info,
    /// SWAP / `POST /swap`.
    Swap,
    /// SHUTDOWN.
    Shutdown,
}

impl ServeOp {
    /// Every opcode, in display order.
    pub const ALL: [ServeOp; 6] = [
        ServeOp::Assign,
        ServeOp::Score,
        ServeOp::Anomaly,
        ServeOp::Info,
        ServeOp::Swap,
        ServeOp::Shutdown,
    ];

    /// The opcode's stable snake_case label.
    pub fn as_str(self) -> &'static str {
        match self {
            ServeOp::Assign => "assign",
            ServeOp::Score => "score",
            ServeOp::Anomaly => "anomaly",
            ServeOp::Info => "info",
            ServeOp::Swap => "swap",
            ServeOp::Shutdown => "shutdown",
        }
    }

    /// The per-opcode completion counter.
    pub fn counter(self) -> Counter {
        match self {
            ServeOp::Assign => Counter::ServeAssign,
            ServeOp::Score => Counter::ServeScore,
            ServeOp::Anomaly => Counter::ServeAnomaly,
            ServeOp::Info => Counter::ServeInfo,
            ServeOp::Swap => Counter::ServeSwapRequests,
            ServeOp::Shutdown => Counter::ServeShutdown,
        }
    }

    /// The per-opcode end-to-end latency histogram (admin opcodes share
    /// one).
    pub fn hist(self) -> HistKind {
        match self {
            ServeOp::Assign => HistKind::ServeAssign,
            ServeOp::Score => HistKind::ServeScore,
            ServeOp::Anomaly => HistKind::ServeAnomaly,
            ServeOp::Info | ServeOp::Swap | ServeOp::Shutdown => HistKind::ServeAdmin,
        }
    }

    /// Whether this opcode goes through the dispatcher queue (and hence
    /// has meaningful queue/batch/scan stages).
    pub fn is_queued(self) -> bool {
        matches!(self, ServeOp::Assign | ServeOp::Score | ServeOp::Anomaly)
    }
}

/// One request's per-stage wall time, nanoseconds. Stages a request never
/// entered stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Reading the rest of the request off the socket after its first
    /// byte.
    pub accept: u64,
    /// Decoding and validating the payload.
    pub decode: u64,
    /// Enqueue until the dispatcher drained the job into a batch.
    pub queue_wait: u64,
    /// Batch drain until batch scoring began.
    pub batch_form: u64,
    /// The batched scoring pass.
    pub scan: u64,
    /// Encoding the response.
    pub encode: u64,
    /// Writing the response back to the socket.
    pub write_back: u64,
}

impl StageNanos {
    /// The summed end-to-end latency.
    pub fn total(&self) -> u64 {
        self.accept
            .saturating_add(self.decode)
            .saturating_add(self.queue_wait)
            .saturating_add(self.batch_form)
            .saturating_add(self.scan)
            .saturating_add(self.encode)
            .saturating_add(self.write_back)
    }

    /// `(name, nanos)` pairs in lifecycle order.
    pub fn named(&self) -> [(&'static str, u64); 7] {
        [
            ("accept", self.accept),
            ("decode", self.decode),
            ("queue_wait", self.queue_wait),
            ("batch_form", self.batch_form),
            ("scan", self.scan),
            ("encode", self.encode),
            ("write_back", self.write_back),
        ]
    }
}

/// Everything [`ServeObs::record`] needs about one completed request.
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    /// The id assigned when the request's first byte arrived.
    pub request_id: u64,
    /// Which opcode this was.
    pub op: ServeOp,
    /// `"binary"` or `"http"`.
    pub transport: &'static str,
    /// The generation that answered, when the response carries one.
    pub generation: Option<u64>,
    /// Query length in symbols (0 for admin opcodes).
    pub seq_len: usize,
    /// Whether the request ended in an error response.
    pub error: bool,
    /// The stage timeline.
    pub stages: StageNanos,
}

/// A connection-local buffer of pending histogram observations (see
/// [`ServeObs::record_buffered`]). Bucket counts and sums accumulate in
/// plain memory and merge into the sharded registry in batches, cutting
/// the hot path's atomic RMW count by roughly ten per request.
#[derive(Debug)]
pub struct ObsLocal {
    counts: [[u32; HIST_BUCKETS]; HistKind::ALL.len()],
    sums: [u64; HistKind::ALL.len()],
    /// Bit `h` set when histogram `h` holds unflushed observations (a
    /// zero-valued observation leaves the sum at zero, so the sums alone
    /// can't tell).
    dirty: u32,
    /// Records buffered since the last flush.
    pending: u32,
}

impl ObsLocal {
    /// Flush after this many buffered records: small enough that a
    /// scrape mid-burst lags each open connection by at most a few dozen
    /// observations, large enough to amortize the merge to noise.
    pub const FLUSH_EVERY: u32 = 32;

    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            counts: [[0; HIST_BUCKETS]; HistKind::ALL.len()],
            sums: [0; HistKind::ALL.len()],
            dirty: 0,
            pending: 0,
        }
    }

    fn observe(&mut self, hist: HistKind, nanos: u64) {
        let h = hist.index();
        self.counts[h][crate::trace::bucket_index(nanos)] += 1;
        self.sums[h] = self.sums[h].wrapping_add(nanos);
        self.dirty |= 1 << h;
    }

    fn flush_into(&mut self, trace: &TraceShared, shard: usize) {
        let mut dirty = self.dirty;
        while dirty != 0 {
            let h = dirty.trailing_zeros() as usize;
            dirty &= dirty - 1;
            trace.hist_merge(HistKind::ALL[h], shard, &self.counts[h], self.sums[h]);
            self.counts[h] = [0; HIST_BUCKETS];
            self.sums[h] = 0;
        }
        self.dirty = 0;
        self.pending = 0;
    }
}

impl Default for ObsLocal {
    fn default() -> Self {
        Self::new()
    }
}

/// Configuration for [`ServeObs::new`]; all parts optional.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Append slow-request JSONL records here (torn-tail repaired on
    /// open, like every trace stream).
    pub slow_log: Option<PathBuf>,
    /// A request whose end-to-end latency reaches this duration is
    /// counted slow (and logged when `slow_log` is set).
    pub slow_threshold: Duration,
    /// Append serve lifecycle events (`serve_start`, `serve_swap`,
    /// `serve_end` with a full registry snapshot) here, for offline
    /// `trace-summary` inspection.
    pub trace_jsonl: Option<PathBuf>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            slow_log: None,
            slow_threshold: Duration::from_millis(100),
            trace_jsonl: None,
        }
    }
}

/// The serve daemon's observability bundle: registry plus the optional
/// slow-request log and serve trace stream.
pub struct ServeObs {
    trace: Arc<TraceShared>,
    slow: Option<Mutex<JsonlSink>>,
    slow_threshold_nanos: u64,
    sink: Option<Mutex<JsonlSink>>,
    next_request_id: AtomicU64,
    next_conn_shard: AtomicU64,
}

impl std::fmt::Debug for ServeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeObs")
            .field("slow_threshold_nanos", &self.slow_threshold_nanos)
            .finish_non_exhaustive()
    }
}

impl ServeObs {
    /// Builds the bundle around a shared registry, opening (or
    /// continuing, torn tail repaired) the configured JSONL files.
    pub fn new(trace: Arc<TraceShared>, config: &ObsConfig) -> io::Result<Self> {
        let slow = match &config.slow_log {
            Some(path) => Some(Mutex::new(JsonlSink::open_append(path)?)),
            None => None,
        };
        let sink = match &config.trace_jsonl {
            Some(path) => Some(Mutex::new(JsonlSink::open_append(path)?)),
            None => None,
        };
        Ok(Self {
            trace,
            slow,
            slow_threshold_nanos: crate::trace::saturating_nanos(config.slow_threshold),
            sink,
            next_request_id: AtomicU64::new(0),
            next_conn_shard: AtomicU64::new(0),
        })
    }

    /// A registry-only bundle (no files): what the overhead bench and
    /// most tests use.
    pub fn in_memory(trace: Arc<TraceShared>) -> Self {
        Self::new(trace, &ObsConfig::default()).expect("no I/O in a file-less ObsConfig")
    }

    /// The shared registry (what `/metrics` renders).
    pub fn registry(&self) -> &Arc<TraceShared> {
        &self.trace
    }

    /// The slow-request threshold, nanoseconds.
    pub fn slow_threshold_nanos(&self) -> u64 {
        self.slow_threshold_nanos
    }

    /// Assigns the next request id (process-unique, monotonically
    /// increasing from 0).
    pub fn next_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Assigns a registry shard to a long-lived connection. Spreading by
    /// connection rather than by request keeps each handler's counter and
    /// histogram cache lines hot across its requests while still
    /// splitting concurrent handlers onto different shards.
    pub fn conn_shard(&self) -> usize {
        (self.next_conn_shard.fetch_add(1, Ordering::Relaxed) as usize) % SHARDS
    }

    /// Records one completed request: per-opcode and aggregate counters,
    /// the end-to-end and stage histograms, and the slow-request check.
    /// Called exactly once per request by the handler that owns it.
    pub fn record(&self, record: &RequestRecord) {
        self.record_at((record.request_id as usize) % SHARDS, record);
    }

    /// [`Self::record`] onto an explicit registry shard — connection
    /// handlers pass their [`Self::conn_shard`] for cache locality. Shard
    /// choice never changes any total: the registry sums shards on read.
    pub fn record_at(&self, shard: usize, record: &RequestRecord) {
        let t = &self.trace;
        self.record_with(shard, record, &mut |hist, nanos| {
            t.observe(hist, shard, nanos);
        });
    }

    /// [`Self::record_at`], but with the histogram observations buffered
    /// in `local` instead of hitting the registry — the per-request cost
    /// drops from ~10 atomic RMWs to plain stores. Counters (and the
    /// slow-request check) stay direct, so `/metrics` totals are exact
    /// the instant a request completes; histogram totals lag by at most
    /// [`ObsLocal::FLUSH_EVERY`] requests per open connection and catch
    /// up when the connection flushes (every `FLUSH_EVERY` records and on
    /// close).
    pub fn record_buffered(&self, shard: usize, local: &mut ObsLocal, record: &RequestRecord) {
        self.record_with(shard, record, &mut |hist, nanos| {
            local.observe(hist, nanos);
        });
        local.pending += 1;
        if local.pending >= ObsLocal::FLUSH_EVERY {
            self.flush_local(shard, local);
        }
    }

    /// Drains a connection's buffered histogram observations into the
    /// registry. Connection handlers call this when they close; totals
    /// are complete once every handler has exited.
    pub fn flush_local(&self, shard: usize, local: &mut ObsLocal) {
        local.flush_into(&self.trace, shard);
    }

    /// The one recording body: counters and the slow check go straight to
    /// the registry; histogram observations go wherever `observe` points
    /// (the registry for [`Self::record_at`], a connection-local buffer
    /// for [`Self::record_buffered`]).
    fn record_with(
        &self,
        shard: usize,
        record: &RequestRecord,
        observe: &mut impl FnMut(HistKind, u64),
    ) {
        let t = &self.trace;
        t.add_at(shard, record.op.counter(), 1);
        t.add_at(
            shard,
            if record.error {
                Counter::ServeErrors
            } else {
                Counter::ServeRequests
            },
            1,
        );
        let total = record.stages.total();
        observe(record.op.hist(), total);
        observe(HistKind::ServeAccept, record.stages.accept);
        observe(HistKind::ServeDecode, record.stages.decode);
        if record.op.is_queued() {
            observe(HistKind::ServeQueueWait, record.stages.queue_wait);
            observe(HistKind::ServeBatchForm, record.stages.batch_form);
            observe(HistKind::ServeScan, record.stages.scan);
            // The legacy whole-lifetime histogram (enqueue to scored) is
            // exactly the three queue stages end to end.
            observe(
                HistKind::ServeRequest,
                record
                    .stages
                    .queue_wait
                    .saturating_add(record.stages.batch_form)
                    .saturating_add(record.stages.scan),
            );
        }
        observe(HistKind::ServeEncode, record.stages.encode);
        observe(HistKind::ServeWriteBack, record.stages.write_back);
        if total >= self.slow_threshold_nanos {
            t.add_at(shard, Counter::ServeSlow, 1);
            self.log_slow(record, total);
        }
    }

    /// Records a request that never reached an opcode: facade meta
    /// endpoints (`/metrics`, `/healthz`, `/readyz`) and protocol-level
    /// error frames. Feeds only the aggregate counters.
    pub fn record_meta(&self, error: bool) {
        self.trace.add(
            if error {
                Counter::ServeErrors
            } else {
                Counter::ServeRequests
            },
            1,
        );
    }

    /// Appends one slow-request record and syncs it to disk immediately:
    /// outliers are rare, so per-record durability costs nothing
    /// measurable, and a crash right after a tail-latency spike — the
    /// moment an operator most wants the evidence — cannot lose it.
    fn log_slow(&self, record: &RequestRecord, total: u64) {
        let Some(slow) = &self.slow else { return };
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("event", "slow_request");
        w.field_u64("request_id", record.request_id);
        w.field_str("op", record.op.as_str());
        w.field_str("transport", record.transport);
        match record.generation {
            Some(g) => w.field_u64("generation", g),
            None => w.field_null("generation"),
        }
        w.field_usize("seq_len", record.seq_len);
        w.field_bool("error", record.error);
        w.field_u64("total_nanos", total);
        w.field_u64("threshold_nanos", self.slow_threshold_nanos);
        w.key("stage_nanos");
        w.begin_obj();
        for (name, nanos) in record.stages.named() {
            w.field_u64(name, nanos);
        }
        w.end_obj();
        w.end_obj();
        let body = w.finish();
        if let Ok(mut sink) = slow.lock() {
            let _ = sink.write_event(&body);
            let _ = sink.sync();
        }
    }

    fn emit(&self, build: impl FnOnce(&mut JsonWriter)) {
        let Some(sink) = &self.sink else { return };
        let mut w = JsonWriter::new();
        w.begin_obj();
        build(&mut w);
        w.end_obj();
        let body = w.finish();
        if let Ok(mut sink) = sink.lock() {
            let _ = sink.write_event(&body);
            let _ = sink.sync();
        }
    }

    /// Emits the `serve_start` lifecycle event.
    pub fn event_serve_start(
        &self,
        addr: &str,
        threads: usize,
        max_batch: usize,
        kernel: &str,
        generation: u64,
        clusters: u32,
    ) {
        self.emit(|w| {
            w.field_str("event", "serve_start");
            w.field_str("addr", addr);
            w.field_usize("threads", threads);
            w.field_usize("max_batch", max_batch);
            w.field_str("kernel", kernel);
            w.field_u64("generation", generation);
            w.field_u64("clusters", u64::from(clusters));
        });
    }

    /// Emits the `serve_swap` lifecycle event (after a successful swap).
    pub fn event_serve_swap(&self, generation: u64, clusters: u32) {
        self.emit(|w| {
            w.field_str("event", "serve_swap");
            w.field_u64("generation", generation);
            w.field_u64("clusters", u64::from(clusters));
        });
    }

    /// The registry snapshot `serve_end` carries and `trace-summary`
    /// renders: every serve counter, and bucket counts plus sums for
    /// every serve histogram.
    const SNAPSHOT_COUNTERS: [Counter; 11] = [
        Counter::ServeRequests,
        Counter::ServeErrors,
        Counter::ServeBatches,
        Counter::ServeSwaps,
        Counter::ServeAssign,
        Counter::ServeScore,
        Counter::ServeAnomaly,
        Counter::ServeInfo,
        Counter::ServeSwapRequests,
        Counter::ServeShutdown,
        Counter::ServeSlow,
    ];

    /// The histograms snapshotted into `serve_end`.
    const SNAPSHOT_HISTS: [HistKind; 12] = [
        HistKind::ServeAssign,
        HistKind::ServeScore,
        HistKind::ServeAnomaly,
        HistKind::ServeAdmin,
        HistKind::ServeAccept,
        HistKind::ServeDecode,
        HistKind::ServeQueueWait,
        HistKind::ServeBatchForm,
        HistKind::ServeScan,
        HistKind::ServeEncode,
        HistKind::ServeWriteBack,
        HistKind::ServeBatchJobs,
    ];

    /// Emits the `serve_end` lifecycle event: a full snapshot of the
    /// serve counters and histograms, so a trace file is a complete
    /// offline record of the daemon's run.
    pub fn event_serve_end(&self) {
        if self.sink.is_none() {
            return;
        }
        // Snapshot outside the emit closure so the sink lock is not held
        // while summing shards.
        let counters: Vec<(&'static str, u64)> = Self::SNAPSHOT_COUNTERS
            .iter()
            .map(|&c| (c.as_str(), self.trace.counter(c)))
            .collect();
        let hists: Vec<(&'static str, [u64; HIST_BUCKETS], u64)> = Self::SNAPSHOT_HISTS
            .iter()
            .map(|&h| (h.as_str(), self.trace.hist_counts(h), self.trace.hist_sum(h)))
            .collect();
        self.emit(|w| {
            w.field_str("event", "serve_end");
            w.key("counters");
            w.begin_obj();
            for (name, v) in &counters {
                w.field_u64(name, *v);
            }
            w.end_obj();
            w.key("hists");
            w.begin_obj();
            for (name, counts, sum) in &hists {
                w.key(name);
                w.begin_obj();
                w.field_u64("sum_nanos", *sum);
                w.key("counts");
                w.begin_arr();
                for c in counts {
                    w.raw_value(&c.to_string());
                }
                w.end_arr();
                w.end_obj();
            }
            w.end_obj();
        });
    }

    /// Fsyncs both sinks (a no-op without files).
    pub fn sync(&self) {
        for sink in [&self.slow, &self.sink].into_iter().flatten() {
            if let Ok(mut sink) = sink.lock() {
                let _ = sink.sync();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSession;

    fn registry() -> Arc<TraceShared> {
        TraceSession::in_memory().shared_arc()
    }

    #[test]
    fn record_feeds_per_op_and_aggregate_counters() {
        let obs = ServeObs::in_memory(registry());
        let stages = StageNanos {
            accept: 10,
            decode: 20,
            queue_wait: 30,
            batch_form: 5,
            scan: 100,
            encode: 7,
            write_back: 8,
            ..Default::default()
        };
        obs.record(&RequestRecord {
            request_id: obs.next_request_id(),
            op: ServeOp::Assign,
            transport: "binary",
            generation: Some(1),
            seq_len: 12,
            error: false,
            stages,
        });
        obs.record(&RequestRecord {
            request_id: obs.next_request_id(),
            op: ServeOp::Info,
            transport: "http",
            generation: Some(1),
            seq_len: 0,
            error: false,
            stages: StageNanos::default(),
        });
        obs.record_meta(true);
        let t = obs.registry();
        assert_eq!(t.counter(Counter::ServeAssign), 1);
        assert_eq!(t.counter(Counter::ServeInfo), 1);
        assert_eq!(t.counter(Counter::ServeRequests), 2);
        assert_eq!(t.counter(Counter::ServeErrors), 1);
        assert_eq!(
            t.hist_counts(HistKind::ServeAssign).iter().sum::<u64>(),
            1
        );
        assert_eq!(t.hist_counts(HistKind::ServeAdmin).iter().sum::<u64>(), 1);
        // Admin ops stay out of the queue-stage histograms.
        assert_eq!(
            t.hist_counts(HistKind::ServeQueueWait).iter().sum::<u64>(),
            1
        );
        assert_eq!(t.hist_sum(HistKind::ServeAssign), stages.total());
    }

    #[test]
    fn stage_total_saturates() {
        let stages = StageNanos {
            accept: u64::MAX,
            scan: u64::MAX,
            ..Default::default()
        };
        assert_eq!(stages.total(), u64::MAX);
    }

    #[test]
    fn request_ids_are_unique_and_monotonic() {
        let obs = ServeObs::in_memory(registry());
        let a = obs.next_request_id();
        let b = obs.next_request_id();
        assert_eq!((a, b), (0, 1));
    }

    #[test]
    fn buffered_recording_matches_direct_after_flush() {
        let direct = ServeObs::in_memory(registry());
        let buffered = ServeObs::in_memory(registry());
        let mut local = ObsLocal::new();
        // Mix of ops, errors, and zero-valued stages (the error record's
        // queue stages are all zero — the dirty bitmask must still flush
        // those pure-zero observations).
        let records = [
            (ServeOp::Assign, false, 1_234u64),
            (ServeOp::Score, false, 987_654),
            (ServeOp::Assign, true, 0),
            (ServeOp::Info, false, 55),
        ];
        for (i, &(op, error, scale)) in records.iter().enumerate() {
            let rec = RequestRecord {
                request_id: i as u64,
                op,
                transport: "binary",
                generation: None,
                seq_len: 3,
                error,
                stages: StageNanos {
                    accept: scale,
                    decode: scale / 2,
                    queue_wait: scale * 2,
                    scan: scale * 3,
                    ..Default::default()
                },
            };
            direct.record_at(7, &rec);
            buffered.record_buffered(7, &mut local, &rec);
        }
        buffered.flush_local(7, &mut local);
        for counter in Counter::ALL {
            assert_eq!(
                direct.registry().counter(counter),
                buffered.registry().counter(counter),
                "counter {counter:?}"
            );
        }
        for hist in HistKind::ALL {
            assert_eq!(
                direct.registry().hist_counts(hist),
                buffered.registry().hist_counts(hist),
                "hist counts {hist:?}"
            );
            assert_eq!(
                direct.registry().hist_sum(hist),
                buffered.registry().hist_sum(hist),
                "hist sum {hist:?}"
            );
        }
    }

    #[test]
    fn buffer_flushes_itself_every_flush_every_records() {
        let obs = ServeObs::in_memory(registry());
        let mut local = ObsLocal::new();
        let rec = RequestRecord {
            request_id: 0,
            op: ServeOp::Score,
            transport: "binary",
            generation: None,
            seq_len: 1,
            error: false,
            stages: StageNanos::default(),
        };
        for _ in 0..ObsLocal::FLUSH_EVERY - 1 {
            obs.record_buffered(0, &mut local, &rec);
        }
        // Counters are exact immediately; histograms lag in the buffer.
        let t = obs.registry();
        assert_eq!(t.counter(Counter::ServeScore), u64::from(ObsLocal::FLUSH_EVERY) - 1);
        assert_eq!(t.hist_counts(HistKind::ServeScore).iter().sum::<u64>(), 0);
        // The FLUSH_EVERY-th record drains the buffer on its own.
        obs.record_buffered(0, &mut local, &rec);
        assert_eq!(
            t.hist_counts(HistKind::ServeScore).iter().sum::<u64>(),
            u64::from(ObsLocal::FLUSH_EVERY)
        );
        assert_eq!(local.pending, 0);
    }
}
