//! Persistence of trained clustering models.
//!
//! A [`SavedModel`] captures everything needed to classify new sequences
//! with a finished clustering — the per-cluster PSTs, the background
//! model, and the final similarity threshold — in the same hand-rolled
//! little-endian binary framing as [`cluseq_pst::serial`]. Member lists
//! and run history are deliberately *not* stored: they describe the
//! training set, not the model.
//!
//! ```no_run
//! use cluseq_core::{Cluseq, CluseqParams};
//! use cluseq_core::persist::SavedModel;
//! use cluseq_seq::SequenceDatabase;
//!
//! let db = SequenceDatabase::from_strs(["abab", "cdcd"]);
//! let outcome = Cluseq::new(CluseqParams::default().with_significance(1)).run(&db);
//!
//! // Train once, save…
//! let mut file = std::fs::File::create("model.cseq").unwrap();
//! SavedModel::from_outcome(&outcome).save(&mut file).unwrap();
//!
//! // …classify forever.
//! let mut file = std::fs::File::open("model.cseq").unwrap();
//! let model = SavedModel::load(&mut file).unwrap();
//! let hits = model.assign(db.sequence(0).symbols());
//! ```

use std::io::{Read, Write};

use cluseq_pst::serial::{
    decode_capacity, read_f64, read_u32, read_u64, write_f64, write_u32, write_u64,
};
use cluseq_pst::{Pst, SerialError};
use cluseq_seq::{BackgroundModel, Symbol};

use crate::outcome::CluseqOutcome;
use crate::similarity::{max_similarity_pst, LogSim, SegmentSimilarity};

const MAGIC: &[u8; 4] = b"CSEQ";
const VERSION: u32 = 1;

/// One persisted cluster: its stable id, seed sequence id, and model.
#[derive(Debug)]
pub struct SavedCluster {
    /// The cluster's id from the producing run.
    pub id: u64,
    /// The sequence id the cluster was seeded from (training-set relative;
    /// informational only).
    pub seed: u64,
    /// The conditional probability model.
    pub pst: Pst,
}

/// A self-contained classifier: cluster models + background + threshold.
#[derive(Debug)]
pub struct SavedModel {
    /// The persisted clusters, in the producing run's order.
    pub clusters: Vec<SavedCluster>,
    /// Background symbol probabilities (denominator of the similarity).
    pub background: BackgroundModel,
    /// The final similarity threshold, log-space.
    pub log_t: f64,
}

impl SavedModel {
    /// Captures the model part of a finished run.
    pub fn from_outcome(outcome: &CluseqOutcome) -> Self {
        Self {
            clusters: outcome
                .clusters
                .iter()
                .map(|c| SavedCluster {
                    id: c.id as u64,
                    seed: c.seed as u64,
                    pst: c.pst.clone(),
                })
                .collect(),
            background: outcome.background.clone(),
            log_t: outcome.final_log_t,
        }
    }

    /// Number of clusters in the model.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Scores `seq` against every cluster, best first.
    pub fn classify(&self, seq: &[Symbol]) -> Vec<(usize, SegmentSimilarity)> {
        let mut scored: Vec<(usize, SegmentSimilarity)> = self
            .clusters
            .iter()
            .enumerate()
            .map(|(k, c)| (k, max_similarity_pst(&c.pst, &self.background, seq)))
            .collect();
        scored.sort_by(|a, b| b.1.log_sim.total_cmp(&a.1.log_sim));
        scored
    }

    /// The clusters `seq` would join under the stored threshold.
    pub fn assign(&self, seq: &[Symbol]) -> Vec<(usize, LogSim)> {
        self.classify(seq)
            .into_iter()
            .filter(|(_, s)| s.log_sim >= self.log_t)
            .map(|(k, s)| (k, s.log_sim))
            .collect()
    }

    /// Serializes the model.
    pub fn save(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(w, VERSION)?;
        write_f64(w, self.log_t)?;
        // Background probabilities.
        write_u32(w, self.background.alphabet_size() as u32)?;
        for i in 0..self.background.alphabet_size() {
            write_f64(w, self.background.prob(Symbol(i as u16)))?;
        }
        write_u32(w, self.clusters.len() as u32)?;
        for c in &self.clusters {
            write_u64(w, c.id)?;
            write_u64(w, c.seed)?;
            c.pst.save(w)?;
        }
        Ok(())
    }

    /// Deserializes a model.
    pub fn load(r: &mut impl Read) -> Result<Self, SerialError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SerialError::BadMagic);
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(SerialError::BadVersion(version));
        }
        let log_t = read_f64(r)?;
        let n_sym = read_u32(r)? as usize;
        if n_sym == 0 {
            return Err(SerialError::Corrupt("empty background model"));
        }
        let mut probs = Vec::with_capacity(decode_capacity(n_sym));
        for _ in 0..n_sym {
            let p = read_f64(r)?;
            if !(p > 0.0 && p <= 1.0) {
                return Err(SerialError::Corrupt("background probability range"));
            }
            probs.push(p);
        }
        let total: f64 = probs.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(SerialError::Corrupt("background does not normalize"));
        }
        let background = BackgroundModel::from_probs(probs);
        let n_clusters = read_u32(r)? as usize;
        let mut clusters = Vec::with_capacity(decode_capacity(n_clusters));
        for _ in 0..n_clusters {
            let id = read_u64(r)?;
            let seed = read_u64(r)?;
            let pst = Pst::load(r)?;
            clusters.push(SavedCluster { id, seed, pst });
        }
        Ok(Self {
            clusters,
            background,
            log_t,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Cluseq;
    use crate::config::CluseqParams;
    use cluseq_seq::SequenceDatabase;

    fn trained() -> (SequenceDatabase, CluseqOutcome) {
        let mut texts: Vec<String> = Vec::new();
        for _ in 0..15 {
            texts.push("abababababababab".into());
            texts.push("cdcdcdcdcdcdcdcd".into());
        }
        let db = SequenceDatabase::from_strs(texts.iter().map(|s| s.as_str()));
        let outcome = Cluseq::new(
            CluseqParams::default()
                .with_initial_clusters(2)
                .with_significance(4)
                .with_max_depth(5)
                .with_seed(3),
        )
        .run(&db);
        (db, outcome)
    }

    #[test]
    fn round_trip_preserves_classification() {
        let (db, outcome) = trained();
        let model = SavedModel::from_outcome(&outcome);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = SavedModel::load(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.cluster_count(), outcome.cluster_count());
        assert_eq!(loaded.log_t, outcome.final_log_t);
        for i in 0..db.len() {
            let seq = db.sequence(i).symbols();
            let orig = outcome.classify(seq);
            let redo = loaded.classify(seq);
            assert_eq!(orig.len(), redo.len());
            for (a, b) in orig.iter().zip(&redo) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.log_sim.to_bits(), b.1.log_sim.to_bits());
            }
        }
    }

    #[test]
    fn assign_applies_the_stored_threshold() {
        let (db, outcome) = trained();
        let model = SavedModel::from_outcome(&outcome);
        let joined = model.assign(db.sequence(0).symbols());
        assert!(!joined.is_empty(), "a training member must pass");
        for &(_, sim) in &joined {
            assert!(sim >= model.log_t);
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert!(matches!(
            SavedModel::load(&mut &b"XXXX"[..]).unwrap_err(),
            SerialError::BadMagic
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            SavedModel::load(&mut buf.as_slice()).unwrap_err(),
            SerialError::BadVersion(7)
        ));
    }

    #[test]
    fn corrupt_background_is_rejected() {
        let (_, outcome) = trained();
        let mut buf = Vec::new();
        SavedModel::from_outcome(&outcome).save(&mut buf).unwrap();
        // The background probs start right after magic+version+log_t+len.
        let offset = 4 + 4 + 8 + 4;
        buf[offset..offset + 8].copy_from_slice(&2.5f64.to_le_bytes());
        assert!(matches!(
            SavedModel::load(&mut buf.as_slice()).unwrap_err(),
            SerialError::Corrupt(_)
        ));
    }
}
