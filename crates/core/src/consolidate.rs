//! Cluster consolidation (paper §4.5).
//!
//! Heavily-overlapped clusters arise when multiple seeds land in the same
//! true cluster. Consolidation walks the clusters in ascending size order
//! and dismisses any cluster whose *exclusive* membership — members that
//! belong to no other retained cluster — is below a threshold (the paper
//! uses the significance threshold `c`).

use crate::cluster::Cluster;
use crate::config::ConsolidationMode;
use crate::trace::{Counter, Phase, TraceSession};

/// Dismisses covered clusters in ascending size order (the paper's rule).
/// Returns the number of clusters removed. See [`consolidate_with_mode`]
/// for the merge extension.
///
/// `min_exclusive` is the smallest exclusive-member count a cluster must
/// keep to survive (the paper's `< c` rule).
///
/// A sequence's "coverage" is the number of retained clusters containing
/// it; a member is exclusive to a cluster when its coverage is exactly 1.
/// Removing a cluster immediately returns its members' coverage to the
/// pool, so a larger duplicate examined later is *not* also removed.
pub fn consolidate(
    clusters: &mut Vec<Cluster>,
    min_exclusive: usize,
    total_sequences: usize,
) -> usize {
    consolidate_with_mode(
        clusters,
        min_exclusive,
        total_sequences,
        ConsolidationMode::Dismiss,
    )
}

/// What [`consolidate_detailed`] did: how many clusters were dismissed,
/// and how many of those had their models merged into a covering cluster
/// (always 0 under [`ConsolidationMode::Dismiss`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConsolidationOutcome {
    /// Clusters removed from the pool.
    pub dismissed: usize,
    /// Removed clusters whose PST was folded into an overlapping survivor.
    pub merged: usize,
}

/// [`consolidate`] with an explicit failure mode: dismissed clusters can
/// instead have their models merged into the retained cluster they overlap
/// most (an extension — the paper always dismisses).
pub fn consolidate_with_mode(
    clusters: &mut Vec<Cluster>,
    min_exclusive: usize,
    total_sequences: usize,
    mode: ConsolidationMode,
) -> usize {
    consolidate_detailed(clusters, min_exclusive, total_sequences, mode).dismissed
}

/// Per-cluster exclusive-member counts: for each cluster, how many of its
/// members belong to no *other* cluster in `clusters`. This is the quantity
/// consolidation tests against `min_exclusive`, exposed separately for
/// telemetry snapshots.
pub fn exclusive_member_counts(clusters: &[Cluster], total_sequences: usize) -> Vec<usize> {
    let mut coverage = vec![0u32; total_sequences];
    for c in clusters {
        for &m in &c.members {
            coverage[m] += 1;
        }
    }
    clusters
        .iter()
        .map(|c| c.members.iter().filter(|&&m| coverage[m] == 1).count())
        .collect()
}

/// [`consolidate_detailed`] under a `consolidate` span, recording the
/// dismissed/merged counts into the tracing registry. The consolidation
/// itself is identical with or without a session.
pub fn consolidate_traced(
    clusters: &mut Vec<Cluster>,
    min_exclusive: usize,
    total_sequences: usize,
    mode: ConsolidationMode,
    trace: Option<&TraceSession>,
    merge_targets: &mut Vec<usize>,
) -> ConsolidationOutcome {
    let _span = trace.map(|t| t.span(Phase::Consolidate));
    let outcome = consolidate_tracked(
        clusters,
        min_exclusive,
        total_sequences,
        mode,
        merge_targets,
    );
    if let Some(trace) = trace {
        trace.add(Counter::ClustersDismissed, outcome.dismissed as u64);
        trace.add(Counter::ClustersMerged, outcome.merged as u64);
    }
    outcome
}

/// [`consolidate_with_mode`], additionally reporting how many of the
/// dismissed clusters were merged (see [`ConsolidationOutcome`]).
pub fn consolidate_detailed(
    clusters: &mut Vec<Cluster>,
    min_exclusive: usize,
    total_sequences: usize,
    mode: ConsolidationMode,
) -> ConsolidationOutcome {
    let mut merge_targets = Vec::new();
    consolidate_tracked(
        clusters,
        min_exclusive,
        total_sequences,
        mode,
        &mut merge_targets,
    )
}

/// [`consolidate_detailed`] that also appends to `merge_targets` the id of
/// every surviving cluster a dismissed model was merged *into*. Those
/// clusters' models changed without any scan activity, so the incremental
/// engine must treat them as dirty (see [`crate::incremental`]).
pub fn consolidate_tracked(
    clusters: &mut Vec<Cluster>,
    min_exclusive: usize,
    total_sequences: usize,
    mode: ConsolidationMode,
    merge_targets: &mut Vec<usize>,
) -> ConsolidationOutcome {
    if clusters.is_empty() {
        return ConsolidationOutcome::default();
    }
    // coverage[i] = how many retained clusters currently contain seq i.
    let mut coverage = vec![0u32; total_sequences];
    for c in clusters.iter() {
        for &m in &c.members {
            coverage[m] += 1;
        }
    }

    // Examine smallest first; ties broken by higher id first (newest
    // clusters are the most likely duplicates).
    let mut order: Vec<usize> = (0..clusters.len()).collect();
    order.sort_by(|&a, &b| {
        clusters[a]
            .size()
            .cmp(&clusters[b].size())
            .then(clusters[b].id.cmp(&clusters[a].id))
    });

    let mut retain = vec![true; clusters.len()];
    let mut removed = 0usize;
    let mut merged = 0usize;
    for &idx in &order {
        let exclusive = clusters[idx]
            .members
            .iter()
            .filter(|&&m| coverage[m] == 1)
            .count();
        if exclusive < min_exclusive {
            retain[idx] = false;
            removed += 1;
            for &m in &clusters[idx].members {
                coverage[m] -= 1;
            }
            if mode == ConsolidationMode::MergeIntoCovering {
                // Fold the dismissed model into the retained cluster it
                // overlaps most (by shared members).
                let best = (0..clusters.len())
                    .filter(|&j| j != idx && retain[j])
                    .max_by_key(|&j| shared_members(&clusters[idx].members, &clusters[j].members));
                if let Some(target) = best {
                    if shared_members(&clusters[idx].members, &clusters[target].members) > 0 {
                        let source = clusters[idx].pst.clone();
                        clusters[target].pst.merge(&source);
                        merged += 1;
                        merge_targets.push(clusters[target].id);
                    }
                }
            }
        }
    }

    let mut keep_iter = retain.into_iter();
    clusters.retain(|_| keep_iter.next().unwrap());
    ConsolidationOutcome {
        dismissed: removed,
        merged,
    }
}

/// |A ∩ B| for two ascending member lists.
fn shared_members(a: &[usize], b: &[usize]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut shared = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    shared
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_pst::PstParams;
    use cluseq_seq::{Alphabet, Sequence};

    fn make_cluster(id: usize, members: Vec<usize>) -> Cluster {
        let alphabet = Alphabet::from_chars("ab".chars());
        let seq = Sequence::parse_str(&alphabet, "ab").unwrap();
        let mut c = Cluster::from_seed(
            id,
            members.first().copied().unwrap_or(0),
            &seq,
            2,
            PstParams::default().with_significance(1),
        );
        c.members = members;
        c
    }

    #[test]
    fn duplicate_cluster_is_dismissed() {
        // Two clusters over the same members: the smaller/newer one dies.
        let mut clusters = vec![
            make_cluster(0, vec![0, 1, 2, 3, 4]),
            make_cluster(1, vec![0, 1, 2, 3]),
        ];
        let removed = consolidate(&mut clusters, 2, 10);
        assert_eq!(removed, 1);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].id, 0);
    }

    #[test]
    fn distinct_clusters_survive() {
        let mut clusters = vec![
            make_cluster(0, vec![0, 1, 2]),
            make_cluster(1, vec![3, 4, 5]),
        ];
        let removed = consolidate(&mut clusters, 2, 10);
        assert_eq!(removed, 0);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn partial_overlap_below_threshold_dies() {
        // Cluster 1 has only one exclusive member (5); threshold 2 kills it.
        let mut clusters = vec![
            make_cluster(0, vec![0, 1, 2, 3, 4]),
            make_cluster(1, vec![3, 4, 5]),
        ];
        let removed = consolidate(&mut clusters, 2, 10);
        assert_eq!(removed, 1);
        assert_eq!(clusters[0].id, 0);
    }

    #[test]
    fn partial_overlap_above_threshold_survives() {
        let mut clusters = vec![
            make_cluster(0, vec![0, 1, 2, 3, 4]),
            make_cluster(1, vec![3, 4, 5, 6]),
        ];
        let removed = consolidate(&mut clusters, 2, 10);
        assert_eq!(removed, 0, "two exclusive members (5, 6) suffice");
    }

    #[test]
    fn removing_a_duplicate_rescues_the_survivor() {
        // Three identical clusters: exactly two die, one survives (its
        // members become exclusive again as the duplicates vanish).
        let mut clusters = vec![
            make_cluster(0, vec![0, 1, 2, 3]),
            make_cluster(1, vec![0, 1, 2, 3]),
            make_cluster(2, vec![0, 1, 2, 3]),
        ];
        let removed = consolidate(&mut clusters, 2, 10);
        assert_eq!(removed, 2);
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn empty_cluster_is_always_dismissed() {
        let mut clusters = vec![make_cluster(0, vec![0, 1, 2]), make_cluster(1, vec![])];
        let removed = consolidate(&mut clusters, 1, 10);
        assert_eq!(removed, 1);
        assert_eq!(clusters[0].id, 0);
    }

    #[test]
    fn no_clusters_is_a_noop() {
        let mut clusters: Vec<Cluster> = Vec::new();
        assert_eq!(consolidate(&mut clusters, 2, 10), 0);
    }

    #[test]
    fn merge_mode_folds_the_dismissed_model_into_the_survivor() {
        let mut clusters = vec![
            make_cluster(0, vec![0, 1, 2, 3, 4]),
            make_cluster(1, vec![0, 1, 2, 3]),
        ];
        // Give the doomed duplicate distinctive statistics.
        let alphabet = Alphabet::from_chars("ab".chars());
        let distinctive = Sequence::parse_str(&alphabet, "bbbbbbbb").unwrap();
        clusters[1].pst.add_sequence(&distinctive);
        let survivor_count_before = clusters[0].pst.total_count();
        let doomed_count = clusters[1].pst.total_count();

        let removed =
            consolidate_with_mode(&mut clusters, 2, 10, ConsolidationMode::MergeIntoCovering);
        assert_eq!(removed, 1);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].id, 0);
        assert_eq!(
            clusters[0].pst.total_count(),
            survivor_count_before + doomed_count,
            "the dismissed model's evidence must survive in the merge"
        );
    }

    #[test]
    fn dismiss_mode_discards_the_model() {
        let mut clusters = vec![
            make_cluster(0, vec![0, 1, 2, 3, 4]),
            make_cluster(1, vec![0, 1, 2, 3]),
        ];
        let survivor_count_before = clusters[0].pst.total_count();
        consolidate_with_mode(&mut clusters, 2, 10, ConsolidationMode::Dismiss);
        assert_eq!(clusters[0].pst.total_count(), survivor_count_before);
    }

    #[test]
    fn merge_mode_skips_clusters_with_no_overlap() {
        // An empty failing cluster shares nothing; nothing to merge into.
        let mut clusters = vec![make_cluster(0, vec![0, 1, 2]), make_cluster(1, vec![])];
        let before = clusters[0].pst.total_count();
        let removed =
            consolidate_with_mode(&mut clusters, 1, 10, ConsolidationMode::MergeIntoCovering);
        assert_eq!(removed, 1);
        assert_eq!(clusters[0].pst.total_count(), before);
    }

    #[test]
    fn detailed_outcome_counts_merges() {
        let mut clusters = vec![
            make_cluster(0, vec![0, 1, 2, 3, 4]),
            make_cluster(1, vec![0, 1, 2, 3]),
        ];
        let out = consolidate_detailed(&mut clusters, 2, 10, ConsolidationMode::MergeIntoCovering);
        assert_eq!(out.dismissed, 1);
        assert_eq!(out.merged, 1);

        // The tracked variant reports the surviving cluster that received
        // the dismissed model.
        let mut clusters = vec![
            make_cluster(0, vec![0, 1, 2, 3, 4]),
            make_cluster(1, vec![0, 1, 2, 3]),
        ];
        let mut merge_targets = Vec::new();
        let out = consolidate_tracked(
            &mut clusters,
            2,
            10,
            ConsolidationMode::MergeIntoCovering,
            &mut merge_targets,
        );
        assert_eq!(out.merged, 1);
        assert_eq!(merge_targets, vec![0]);

        // Dismiss mode never merges.
        let mut clusters = vec![
            make_cluster(0, vec![0, 1, 2, 3, 4]),
            make_cluster(1, vec![0, 1, 2, 3]),
        ];
        let out = consolidate_detailed(&mut clusters, 2, 10, ConsolidationMode::Dismiss);
        assert_eq!(out.dismissed, 1);
        assert_eq!(out.merged, 0);

        // No overlap: dismissed but not merged.
        let mut clusters = vec![make_cluster(0, vec![0, 1, 2]), make_cluster(1, vec![])];
        let out = consolidate_detailed(&mut clusters, 1, 10, ConsolidationMode::MergeIntoCovering);
        assert_eq!(out.dismissed, 1);
        assert_eq!(out.merged, 0);
    }

    #[test]
    fn traced_consolidation_matches_and_counts() {
        use crate::trace::{Counter, TraceSession};
        let make = || {
            vec![
                make_cluster(0, vec![0, 1, 2, 3, 4]),
                make_cluster(1, vec![0, 1, 2, 3]),
            ]
        };
        let mut plain = make();
        let expected = consolidate_detailed(&mut plain, 2, 10, ConsolidationMode::Dismiss);
        let session = TraceSession::in_memory();
        let mut traced = make();
        let mut merge_targets = Vec::new();
        let out = consolidate_traced(
            &mut traced,
            2,
            10,
            ConsolidationMode::Dismiss,
            Some(&session),
            &mut merge_targets,
        );
        assert_eq!(out, expected);
        assert!(merge_targets.is_empty(), "dismiss mode never merges");
        assert_eq!(traced.len(), plain.len());
        assert_eq!(session.counter(Counter::ClustersDismissed), 1);
        assert_eq!(session.counter(Counter::ClustersMerged), 0);
        assert_eq!(
            session.phase_stats(crate::trace::Phase::Consolidate).count,
            1
        );
    }

    #[test]
    fn exclusive_member_counts_match_the_consolidation_rule() {
        let clusters = vec![
            make_cluster(0, vec![0, 1, 2, 3, 4]),
            make_cluster(1, vec![3, 4, 5]),
        ];
        assert_eq!(exclusive_member_counts(&clusters, 10), vec![3, 1]);
        assert_eq!(exclusive_member_counts(&[], 10), Vec::<usize>::new());
    }

    #[test]
    fn smallest_first_order_prefers_large_clusters() {
        // A big cluster and a small one fully inside it: the small one is
        // examined first and dies; the big one keeps all members.
        let mut clusters = vec![
            make_cluster(0, vec![0, 1]),
            make_cluster(1, vec![0, 1, 2, 3, 4, 5]),
        ];
        let removed = consolidate(&mut clusters, 2, 10);
        assert_eq!(removed, 1);
        assert_eq!(clusters[0].id, 1);
    }
}
