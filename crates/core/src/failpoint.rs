//! Deterministic I/O fault injection for the crash-safety test suite.
//!
//! The checkpoint writer promises that **no partial file is ever visible
//! at the final path** (see [`crate::checkpoint`]). That promise cannot be
//! tested by waiting for a real disk to fail, so this module provides
//! byte-exact failure injection: a [`FailPlan`] describes where the I/O
//! stream breaks, and [`FailingWriter`] / [`FailingReader`] wrap any
//! `Write` / `Read` to enact it. The plans are plain data — a test can
//! sweep `error_after(k)` over every byte offset of a checkpoint and prove
//! the atomicity invariant holds at every single crash point.
//!
//! The wrappers live in the library (not the test tree) because
//! [`crate::checkpoint::Checkpoint::write_atomic_with`] threads a plan
//! through its real production code path: the bytes the tests see failing
//! are exactly the bytes a healthy run writes.

use std::io::{self, Read, Write};

/// Where and how an I/O stream should fail. The default plan never fails.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailPlan {
    /// Fail with [`io::ErrorKind::Other`] once this many bytes have been
    /// transferred. Bytes up to the limit are transferred normally — a
    /// write straddling the limit is shortened to reach it exactly, and
    /// the *next* call errors, mimicking a device that dies mid-stream.
    pub fail_after: Option<u64>,
    /// Transfer at most this many bytes per call (short reads/writes).
    /// Exercises every `read_exact`/`write_all` retry loop in the framing.
    pub max_chunk: Option<usize>,
    /// Simulate a crash *between* the temp-file write and the rename:
    /// [`crate::checkpoint::Checkpoint::write_atomic_with`] returns an
    /// error after the temp file is fully written and synced, leaving it
    /// on disk exactly as `kill -9` would.
    pub fail_rename: bool,
}

impl FailPlan {
    /// A plan that never fails (the production path).
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail after exactly `bytes` bytes have been transferred.
    pub fn error_after(bytes: u64) -> Self {
        Self {
            fail_after: Some(bytes),
            ..Self::default()
        }
    }

    /// Transfer at most `chunk` bytes per call, never failing outright.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is 0 (a zero-byte write signals end-of-medium to
    /// `write_all` and would turn every save into an error).
    pub fn short_writes(chunk: usize) -> Self {
        assert!(chunk >= 1, "a zero-byte chunk cannot make progress");
        Self {
            max_chunk: Some(chunk),
            ..Self::default()
        }
    }

    /// Crash after the temp file is durable but before the rename.
    pub fn torn_rename() -> Self {
        Self {
            fail_rename: true,
            ..Self::default()
        }
    }

    fn injected_error() -> io::Error {
        io::Error::other("injected failpoint")
    }

    /// How many bytes of a `len`-byte request may proceed, or the injected
    /// error if the stream is already past its failure point.
    fn admit(&self, transferred: u64, len: usize) -> io::Result<usize> {
        let mut n = len;
        if let Some(limit) = self.fail_after {
            if transferred >= limit && len > 0 {
                return Err(Self::injected_error());
            }
            n = n.min((limit - transferred) as usize);
        }
        if let Some(chunk) = self.max_chunk {
            n = n.min(chunk);
        }
        Ok(n)
    }
}

/// A `Write` adapter enacting a [`FailPlan`], counting accepted bytes.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    plan: FailPlan,
    written: u64,
}

impl<W: Write> FailingWriter<W> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: W, plan: FailPlan) -> Self {
        Self {
            inner,
            plan,
            written: 0,
        }
    }

    /// Bytes accepted so far (the logical stream position).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let admitted = self.plan.admit(self.written, buf.len())?;
        if admitted == 0 && !buf.is_empty() {
            // fail_after == written and the limit is not yet tripped: the
            // admitted slice is empty only when the failure point is
            // exactly here, which `admit` already turned into an error.
            return Err(FailPlan::injected_error());
        }
        let n = self.inner.write(&buf[..admitted])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter enacting a [`FailPlan`], counting delivered bytes.
#[derive(Debug)]
pub struct FailingReader<R> {
    inner: R,
    plan: FailPlan,
    delivered: u64,
}

impl<R: Read> FailingReader<R> {
    /// Wraps `inner` under `plan` (`fail_rename` is meaningless here).
    pub fn new(inner: R, plan: FailPlan) -> Self {
        Self {
            inner,
            plan,
            delivered: 0,
        }
    }

    /// Bytes delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

impl<R: Read> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let admitted = self.plan.admit(self.delivered, buf.len())?;
        let n = self.inner.read(&mut buf[..admitted])?;
        self.delivered += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_all_survives_short_writes() {
        let mut w = FailingWriter::new(Vec::new(), FailPlan::short_writes(3));
        w.write_all(&[7u8; 100]).unwrap();
        assert_eq!(w.written(), 100);
        assert_eq!(w.into_inner(), vec![7u8; 100]);
    }

    #[test]
    fn error_after_cuts_the_stream_at_the_exact_byte() {
        for k in 0..20u64 {
            let mut w = FailingWriter::new(Vec::new(), FailPlan::error_after(k));
            let err = w.write_all(&[1u8; 20]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Other);
            assert_eq!(w.written(), k, "accepted exactly k bytes");
            assert_eq!(w.into_inner().len(), k as usize);
        }
    }

    #[test]
    fn reader_fails_after_the_configured_byte() {
        let data = vec![9u8; 50];
        let mut r = FailingReader::new(data.as_slice(), FailPlan::error_after(32));
        let mut out = vec![0u8; 50];
        let err = r.read_exact(&mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(r.delivered(), 32);
    }

    #[test]
    fn short_reads_still_complete_read_exact() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut r = FailingReader::new(data.as_slice(), FailPlan::short_writes(7));
        let mut out = vec![0u8; 100];
        r.read_exact(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn none_plan_is_transparent() {
        let mut w = FailingWriter::new(Vec::new(), FailPlan::none());
        w.write_all(b"hello").unwrap();
        w.flush().unwrap();
        assert_eq!(w.written(), 5);
    }

    #[test]
    #[should_panic(expected = "zero-byte chunk")]
    fn zero_chunk_is_rejected() {
        FailPlan::short_writes(0);
    }
}
