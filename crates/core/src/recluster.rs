//! The per-iteration sequence scan (paper §4.2).
//!
//! Every sequence is examined against every cluster; it joins each cluster
//! whose similarity reaches the threshold, and for each *new* join the
//! similarity-maximizing segment is inserted into that cluster's PST. The
//! similarities of all sequence–cluster combinations are collected for the
//! threshold-adjustment histogram (the paper notes they "need to be
//! calculated anyway").

use cluseq_seq::{BackgroundModel, SequenceDatabase};

use crate::cluster::Cluster;
use crate::similarity::{max_similarity_pst, LogSim};

/// The result of one re-clustering scan.
#[derive(Debug)]
pub struct ReclusterOutcome {
    /// All finite sequence–cluster log-similarities observed in the scan
    /// (feed for the §4.6 histogram).
    pub similarities: Vec<LogSim>,
    /// Number of (sequence, cluster) membership flips relative to the
    /// memberships at the start of the scan.
    pub changes: usize,
    /// For each sequence, the cluster *slot* (index into the `clusters`
    /// argument) with the highest similarity among those it joined.
    pub best_cluster: Vec<Option<usize>>,
}

/// Scans sequences in `order`, rebuilding every cluster's member list and
/// updating cluster models with the maximizing segments of new joins.
///
/// When `rebuild_psts` is set, models are instead rebuilt from scratch at
/// the end of the scan from all current members' maximizing segments (an
/// ablation variant; the paper only ever inserts incrementally).
pub fn recluster(
    db: &SequenceDatabase,
    clusters: &mut [Cluster],
    log_t: f64,
    order: &[usize],
    background: &BackgroundModel,
    rebuild_psts: bool,
) -> ReclusterOutcome {
    let n = db.len();
    let mut similarities = Vec::with_capacity(n * clusters.len());
    let mut best_cluster = vec![None::<usize>; n];
    let mut best_score = vec![f64::NEG_INFINITY; n];

    // Snapshot starting memberships, then clear member lists for rebuild.
    let old_members: Vec<Vec<usize>> = clusters.iter().map(|c| c.members.clone()).collect();
    let mut new_members: Vec<Vec<usize>> = vec![Vec::new(); clusters.len()];
    // Per-cluster (seq, start, end) join records for the rebuild ablation.
    let mut join_segments: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); clusters.len()];

    for &seq_id in order {
        let seq = db.sequence(seq_id).symbols();
        for (slot, cluster) in clusters.iter_mut().enumerate() {
            let sim = max_similarity_pst(&cluster.pst, background, seq);
            if sim.log_sim.is_finite() {
                similarities.push(sim.log_sim);
            }
            if sim.log_sim >= log_t && !seq.is_empty() {
                new_members[slot].push(seq_id);
                if sim.log_sim > best_score[seq_id] {
                    best_score[seq_id] = sim.log_sim;
                    best_cluster[seq_id] = Some(slot);
                }
                let was_member = old_members[slot].binary_search(&seq_id).is_ok();
                if rebuild_psts {
                    join_segments[slot].push((seq_id, sim.start, sim.end));
                } else if !was_member {
                    // New join: feed the maximizing segment to the model
                    // immediately (order-dependent, per the paper).
                    cluster.absorb_segment(&seq[sim.start..sim.end]);
                }
            }
        }
    }

    // Install the rebuilt member lists and count flips.
    let mut changes = 0usize;
    for (slot, cluster) in clusters.iter_mut().enumerate() {
        new_members[slot].sort_unstable();
        changes += symmetric_difference(&old_members[slot], &new_members[slot]);
        cluster.members = std::mem::take(&mut new_members[slot]);
    }

    if rebuild_psts {
        let alphabet_size = db.alphabet().len();
        for (slot, cluster) in clusters.iter_mut().enumerate() {
            let params = *cluster.pst.params();
            let mut fresh = cluseq_pst::Pst::new(alphabet_size, params);
            // Seed sequence first (a cluster always models its seed), then
            // each member's maximizing segment.
            fresh.add_sequence(db.sequence(cluster.seed));
            for &(member, start, end) in &join_segments[slot] {
                fresh.add_segment(&db.sequence(member).symbols()[start..end]);
            }
            cluster.pst = fresh;
        }
    }

    ReclusterOutcome {
        similarities,
        changes,
        best_cluster,
    }
}

/// |A Δ B| for two ascending id lists.
fn symmetric_difference(a: &[usize], b: &[usize]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut diff = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                diff += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                diff += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    diff + (a.len() - i) + (b.len() - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_pst::PstParams;

    fn fixture() -> (SequenceDatabase, BackgroundModel) {
        let texts = [
            "abababababababab",
            "abababababababab",
            "abababababababab",
            "cccccccccccccccc",
            "cccccccccccccccc",
        ];
        let db = SequenceDatabase::from_strs(texts);
        let bg = db.background();
        (db, bg)
    }

    fn params() -> PstParams {
        PstParams::default().with_significance(2)
    }

    fn make_clusters(db: &SequenceDatabase, seeds: &[usize]) -> Vec<Cluster> {
        seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| Cluster::from_seed(i, s, db.sequence(s), db.alphabet().len(), params()))
            .collect()
    }

    #[test]
    fn sequences_join_their_generating_cluster() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0, 3]);
        let order: Vec<usize> = (0..db.len()).collect();
        let out = recluster(&db, &mut clusters, 0.05, &order, &bg, false);
        assert_eq!(clusters[0].members, vec![0, 1, 2]);
        assert_eq!(clusters[1].members, vec![3, 4]);
        assert_eq!(out.best_cluster[1], Some(0));
        assert_eq!(out.best_cluster[4], Some(1));
    }

    #[test]
    fn similarities_cover_every_pair() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0, 3]);
        let order: Vec<usize> = (0..db.len()).collect();
        let out = recluster(&db, &mut clusters, 0.05, &order, &bg, false);
        assert_eq!(out.similarities.len(), db.len() * 2);
    }

    #[test]
    fn impossible_threshold_unclusters_everything() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0]);
        let order: Vec<usize> = (0..db.len()).collect();
        let out = recluster(&db, &mut clusters, 1e9, &order, &bg, false);
        assert!(clusters[0].members.is_empty());
        // The seed itself left the cluster: one membership change.
        assert_eq!(out.changes, 1);
        assert!(out.best_cluster.iter().all(|b| b.is_none()));
    }

    #[test]
    fn changes_count_joins_and_leaves() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0]);
        let order: Vec<usize> = (0..db.len()).collect();
        // First scan: ids 1, 2 join (changes = 2; id 0 stays).
        let out1 = recluster(&db, &mut clusters, 0.05, &order, &bg, false);
        assert_eq!(out1.changes, 2);
        // Second scan: stable clustering, no changes.
        let out2 = recluster(&db, &mut clusters, 0.05, &order, &bg, false);
        assert_eq!(out2.changes, 0);
    }

    #[test]
    fn new_joins_grow_the_model() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0]);
        let before = clusters[0].pst.total_count();
        let order: Vec<usize> = (0..db.len()).collect();
        recluster(&db, &mut clusters, 0.05, &order, &bg, false);
        assert!(
            clusters[0].pst.total_count() > before,
            "absorbing segments must increase the root count"
        );
    }

    #[test]
    fn repeat_members_do_not_reinflate_the_model() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0]);
        let order: Vec<usize> = (0..db.len()).collect();
        recluster(&db, &mut clusters, 0.05, &order, &bg, false);
        let after_first = clusters[0].pst.total_count();
        recluster(&db, &mut clusters, 0.05, &order, &bg, false);
        assert_eq!(
            clusters[0].pst.total_count(),
            after_first,
            "stable members are not re-absorbed"
        );
    }

    #[test]
    fn rebuild_mode_keeps_model_size_bounded() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0]);
        let order: Vec<usize> = (0..db.len()).collect();
        recluster(&db, &mut clusters, 0.05, &order, &bg, true);
        let after_first = clusters[0].pst.total_count();
        recluster(&db, &mut clusters, 0.05, &order, &bg, true);
        let after_second = clusters[0].pst.total_count();
        assert_eq!(after_first, after_second, "rebuild is idempotent at a fixpoint");
    }

    #[test]
    fn symmetric_difference_counts_flips() {
        assert_eq!(symmetric_difference(&[], &[]), 0);
        assert_eq!(symmetric_difference(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(symmetric_difference(&[1, 2], &[2, 3]), 2);
        assert_eq!(symmetric_difference(&[1], &[]), 1);
        assert_eq!(symmetric_difference(&[], &[5, 6, 7]), 3);
    }
}
