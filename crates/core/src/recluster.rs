//! The per-iteration sequence scan (paper §4.2).
//!
//! Every sequence is examined against every cluster; it joins each cluster
//! whose similarity reaches the threshold, and for each *new* join the
//! similarity-maximizing segment is inserted into that cluster's PST. The
//! similarities of all sequence–cluster combinations are collected for the
//! threshold-adjustment histogram (the paper notes they "need to be
//! calculated anyway").
//!
//! Two scan modes are supported (see [`ScanMode`]). The paper's
//! [`ScanMode::Incremental`] rule absorbs each new join's segment
//! mid-scan, so later scores observe the updated models — inherently
//! serial. [`ScanMode::Snapshot`] splits the scan into a *score phase*
//! (every pair evaluated against the models as of the start of the
//! iteration, parallelized by [`crate::score`]) and a sequential *absorb
//! phase* that applies the same membership and model updates in
//! examination order. Snapshot results are bit-identical for any thread
//! count.
//!
//! # Out-of-core sharding
//!
//! The snapshot scan's verdict matrix is `order.len() × clusters.len()`
//! rows — the memory bottleneck at 10⁷ sequences. With
//! [`ScanOptions::scan_shard`] the scan splits the examination order into
//! fixed contiguous position ranges and runs score-then-absorb per shard,
//! bounding the resident matrix to `shard × clusters.len()`. Every shard
//! scores against the *iteration-start* models (automata are frozen
//! before the first shard; the interpreted kernel freezes PST clones), so
//! shard boundaries are invisible: the absorb order is the examination
//! order regardless of shard size, and results are bit-identical to the
//! single-shard scan — `tests/out_of_core.rs` enforces this across store
//! × kernel × threads × shard.

use std::sync::Arc;

use cluseq_seq::{BackgroundModel, SequenceStore};

use crate::cluster::Cluster;
use crate::config::{ScanKernel, ScanMode};
use crate::incremental::{ColumnBuilder, SimilarityCache};
use crate::kernel::ClusterAutomaton;
use crate::models::ModelCache;
use crate::score::ScoreEngine;
use crate::similarity::{max_similarity_pst_with_scratch, BoundedSimilarity, LogSim};
use crate::telemetry::ScanMetrics;
use crate::trace::{Counter, Phase, TraceSession};

/// Options controlling one re-clustering scan.
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions<'a> {
    /// Score against evolving models (the paper) or an iteration-start
    /// snapshot (parallel variant).
    pub mode: ScanMode,
    /// Rebuild every cluster's PST from scratch at the end of the scan
    /// from all current members' maximizing segments (an ablation variant;
    /// the paper only ever inserts incrementally).
    pub rebuild_psts: bool,
    /// Worker threads for the snapshot score phase (ignored by the
    /// incremental mode, whose scoring is order-dependent).
    pub threads: usize,
    /// Which similarity-DP implementation scores each pair. The exact
    /// kernels are bit-identical (see [`ScanKernel`]); quantized is
    /// byte-stable within a documented error bound of exact. Automaton
    /// kernels additionally honour `prune_below`.
    pub kernel: ScanKernel,
    /// With an automaton kernel (any but [`ScanKernel::Interpreted`]),
    /// abandon a pair early once it provably cannot reach this
    /// log-threshold. Pruning forfeits the pair's similarity sample, so
    /// the caller must only set this when the histogram feed is not
    /// consumed (threshold frozen, no records kept); a pruned pair is
    /// always a non-join, so memberships and models are unaffected.
    /// Ignored by the interpreted kernel.
    pub prune_below: Option<f64>,
    /// Live tracing session. When set, the scan opens `scan_score` /
    /// `scan_absorb` spans and records its [`ScanMetrics`] into the
    /// registry — snapshot workers write `pairs_scored`/`pairs_pruned`
    /// into their own shards as they go, everything else merges at the
    /// end-of-scan barrier. The scan's outputs are identical either way.
    pub trace: Option<&'a TraceSession>,
    /// Split the snapshot scan into fixed shards of this many examination
    /// positions, bounding the resident verdict matrix (see the
    /// [module docs](self)). `None` (or a size ≥ the order length) scans
    /// in one shard. Ignored by [`ScanMode::Incremental`] (already O(1)
    /// resident) and by scans driven through a [`SimilarityCache`] (the
    /// cache is O(n·k) resident, so sharding would bound nothing).
    pub scan_shard: Option<usize>,
    /// Collect the per-pair similarity samples that feed the §4.6
    /// threshold histogram (`true`, the default). The driver sets this to
    /// `false` once the threshold is frozen and no iteration record is
    /// kept — nothing reads the samples then, and skipping them bounds
    /// the scan's O(n·k) sample buffer. Memberships, models, and
    /// `best_cluster` are unaffected.
    pub collect_similarities: bool,
}

impl Default for ScanOptions<'_> {
    fn default() -> Self {
        Self {
            mode: ScanMode::Incremental,
            rebuild_psts: false,
            threads: 1,
            kernel: ScanKernel::default(),
            prune_below: None,
            trace: None,
            scan_shard: None,
            collect_similarities: true,
        }
    }
}

/// The result of one re-clustering scan.
#[derive(Debug)]
pub struct ReclusterOutcome {
    /// All finite sequence–cluster log-similarities observed in the scan
    /// (feed for the §4.6 histogram).
    pub similarities: Vec<LogSim>,
    /// Number of (sequence, cluster) membership flips relative to the
    /// memberships at the start of the scan.
    pub changes: usize,
    /// For each sequence, the cluster *slot* (index into the `clusters`
    /// argument) with the highest similarity among those it joined.
    pub best_cluster: Vec<Option<usize>>,
    /// Scan activity counters (deterministic; `metrics.membership_changes`
    /// equals `changes`).
    pub metrics: ScanMetrics,
    /// Wall time of the score work, nanoseconds. Under
    /// [`ScanMode::Incremental`] this covers the whole interleaved scan
    /// (scoring and model updates are inseparable there).
    pub score_nanos: u64,
    /// Wall time of the snapshot absorb phase, nanoseconds (0 under
    /// [`ScanMode::Incremental`]).
    pub absorb_nanos: u64,
    /// Ids of clusters whose membership or model changed during the scan
    /// (every live cluster under `rebuild_psts`). The driver uses this to
    /// delta-encode checkpoints; always computed, cheap either way.
    pub changed_clusters: Vec<usize>,
}

/// Bookkeeping shared by both scan modes: member lists being rebuilt,
/// per-sequence best cluster, histogram feed, and the join records the
/// rebuild ablation replays at the end.
struct ScanState {
    log_t: f64,
    rebuild_psts: bool,
    /// Whether finite similarities are pushed into `similarities`.
    collect: bool,
    similarities: Vec<LogSim>,
    best_cluster: Vec<Option<usize>>,
    best_score: Vec<f64>,
    old_members: Vec<Vec<usize>>,
    new_members: Vec<Vec<usize>>,
    join_segments: Vec<Vec<(usize, usize, usize)>>,
    /// Per slot: whether the cluster's model was mutated during this scan.
    mutated: Vec<bool>,
    metrics: ScanMetrics,
}

impl ScanState {
    fn new(n: usize, clusters: &[Cluster], log_t: f64, rebuild_psts: bool, collect: bool) -> Self {
        Self {
            log_t,
            rebuild_psts,
            collect,
            similarities: Vec::with_capacity(if collect { n * clusters.len() } else { 0 }),
            best_cluster: vec![None; n],
            best_score: vec![f64::NEG_INFINITY; n],
            old_members: clusters.iter().map(|c| c.members.clone()).collect(),
            new_members: vec![Vec::new(); clusters.len()],
            join_segments: vec![Vec::new(); clusters.len()],
            mutated: vec![false; clusters.len()],
            metrics: ScanMetrics::default(),
        }
    }

    /// Applies one (sequence, cluster) score: records the similarity,
    /// membership, and — for a *new* join under the incremental rule —
    /// feeds the maximizing segment to the model. Shared verbatim by both
    /// modes so they cannot drift apart in bookkeeping.
    ///
    /// A [`BoundedSimilarity::Pruned`] verdict (compiled kernel, early
    /// exit) is a proven non-join: it counts in `pairs_scored` and
    /// `pairs_pruned` and touches nothing else — in particular it yields
    /// no histogram sample, which is why pruning is only enabled when the
    /// histogram feed goes unread.
    ///
    /// `reused` says the verdict came from the incremental cache instead
    /// of a fresh evaluation: the pair then counts in `pairs_reused`
    /// rather than `pairs_scored`/`pairs_pruned`. All join, membership,
    /// and model bookkeeping is identical — a cached verdict is by
    /// construction the value a fresh evaluation would have produced.
    ///
    /// Returns whether the cluster's model was mutated (so a compiled
    /// caller knows its automaton for this slot is stale).
    fn apply(
        &mut self,
        seq_id: usize,
        slot: usize,
        verdict: BoundedSimilarity,
        seq: &[cluseq_seq::Symbol],
        cluster: &mut Cluster,
        reused: bool,
    ) -> bool {
        if reused {
            self.metrics.pairs_reused += 1;
        } else {
            self.metrics.pairs_scored += 1;
        }
        let sim = match verdict {
            BoundedSimilarity::Exact(sim) => sim,
            BoundedSimilarity::Pruned => {
                if !reused {
                    self.metrics.pairs_pruned += 1;
                }
                return false;
            }
        };
        if self.collect && sim.log_sim.is_finite() {
            self.similarities.push(sim.log_sim);
        }
        let mut mutated = false;
        if sim.log_sim >= self.log_t && !seq.is_empty() {
            self.metrics.joins += 1;
            self.new_members[slot].push(seq_id);
            if sim.log_sim > self.best_score[seq_id] {
                self.best_score[seq_id] = sim.log_sim;
                self.best_cluster[seq_id] = Some(slot);
            }
            let was_member = self.old_members[slot].binary_search(&seq_id).is_ok();
            if !was_member {
                self.metrics.new_joins += 1;
            }
            if self.rebuild_psts {
                self.join_segments[slot].push((seq_id, sim.start, sim.end));
            } else if !was_member {
                // New join: feed the maximizing segment to the model
                // (immediately under the incremental rule; in the absorb
                // phase under snapshot).
                cluster.absorb_segment(&seq[sim.start..sim.end]);
                mutated = true;
                self.mutated[slot] = true;
            }
        }
        mutated
    }
}

/// Per-scan reuse bookkeeping for the serial (incremental-mode) arms: a
/// snapshot of each slot's valid column, plus the fresh columns being
/// accumulated for slots that had none.
///
/// A slot's column stops being reused at the slot's first model mutation
/// this scan (the cached values no longer match the evolving model); a
/// fresh column under construction is poisoned by any mutation of its
/// slot, because entries recorded before the mutation were computed
/// against a model that no longer exists.
struct SerialReuse {
    cols: Vec<Option<Vec<BoundedSimilarity>>>,
    builders: Vec<Option<ColumnBuilder>>,
    dirty_at_start: u64,
}

impl SerialReuse {
    fn new(cache: &SimilarityCache, clusters: &[Cluster], n: usize) -> Self {
        let cols: Vec<Option<Vec<BoundedSimilarity>>> = clusters
            .iter()
            .map(|c| cache.column(c.id).map(<[_]>::to_vec))
            .collect();
        let builders = cols
            .iter()
            .map(|col| col.is_none().then(|| ColumnBuilder::new(n)))
            .collect();
        let dirty_at_start = cols.iter().filter(|col| col.is_none()).count() as u64;
        Self {
            cols,
            builders,
            dirty_at_start,
        }
    }

    /// The reusable verdict for this pair, if the slot's column is still
    /// valid at this point of the scan.
    fn lookup(&self, slot: usize, seq_id: usize) -> Option<BoundedSimilarity> {
        self.cols[slot].as_ref().map(|col| col[seq_id])
    }

    /// Bookkeeping after one pair: record fresh verdicts into the slot's
    /// column under construction, and react to a model mutation by
    /// stopping reuse and poisoning the builder.
    fn after_pair(
        &mut self,
        slot: usize,
        seq_id: usize,
        verdict: BoundedSimilarity,
        reused: bool,
        mutated: bool,
    ) {
        if !reused {
            if let Some(builder) = self.builders[slot].as_mut() {
                builder.record(seq_id, verdict);
            }
        }
        if mutated {
            self.cols[slot] = None;
            if let Some(builder) = self.builders[slot].as_mut() {
                builder.poison();
            }
        }
    }

    /// Writes the scan's outcome back to the cache: mutated slots lose
    /// their columns, dirty slots that stayed constant gain the column
    /// just scored.
    fn commit(self, cache: &mut SimilarityCache, clusters: &[Cluster], mutated: &[bool]) {
        for (slot, builder) in self.builders.into_iter().enumerate() {
            let id = clusters[slot].id;
            if mutated[slot] {
                cache.invalidate(id);
            } else if let Some(col) = builder.and_then(ColumnBuilder::finish) {
                cache.install(id, col);
            }
        }
    }
}

/// Scans sequences in `order`, rebuilding every cluster's member list and
/// updating cluster models with the maximizing segments of new joins.
pub fn recluster(
    store: &dyn SequenceStore,
    clusters: &mut [Cluster],
    log_t: f64,
    order: &[usize],
    background: &BackgroundModel,
    options: ScanOptions<'_>,
) -> ReclusterOutcome {
    recluster_full(
        store, clusters, log_t, order, background, options, None, None,
    )
}

/// [`recluster`] with an optional incremental similarity cache (see
/// [`crate::incremental`]).
///
/// With `cache = None` this *is* [`recluster`]. With a cache, pairs whose
/// cluster has a valid column are answered from it instead of being
/// re-scored, and the cache is updated in place to reflect the scan:
/// clusters whose model mutated lose their column, clusters scored fresh
/// whose model stayed constant gain one. Every clustering observable —
/// similarities, joins, memberships, models, `best_cluster` — is
/// bit-identical with or without the cache; only the work skipped (and the
/// `pairs_reused` / `clusters_dirty` / `pst_recompiles` metrics) changes.
///
/// `order` must visit every store sequence (it always does in the
/// driver); a partial order would leave fresh columns incomplete, which is
/// detected and the column simply not cached.
#[allow(clippy::too_many_arguments)]
pub fn recluster_cached(
    store: &dyn SequenceStore,
    clusters: &mut [Cluster],
    log_t: f64,
    order: &[usize],
    background: &BackgroundModel,
    options: ScanOptions<'_>,
    cache: Option<&mut SimilarityCache>,
) -> ReclusterOutcome {
    recluster_full(
        store, clusters, log_t, order, background, options, cache, None,
    )
}

/// [`recluster_cached`] with an optional paged model cache (see
/// [`crate::models`]).
///
/// With a [`ModelCache`], the automaton-backed kernels fetch each
/// cluster's scan automaton through the cache instead of compiling every
/// automaton every scan: untouched clusters reuse the retained build,
/// mutated clusters are invalidated here (the scan knows exactly which
/// models it changed), and the cache's byte budget bounds what survives
/// between iterations. Because automaton builds are pure, every clustering
/// observable is bit-identical with or without the cache. Under
/// [`ScanMode::Snapshot`] with a [`SimilarityCache`], the model cache is
/// unused (dirty-slot automata are built inside the cached score pass).
#[allow(clippy::too_many_arguments)]
pub fn recluster_full(
    store: &dyn SequenceStore,
    clusters: &mut [Cluster],
    log_t: f64,
    order: &[usize],
    background: &BackgroundModel,
    options: ScanOptions<'_>,
    mut cache: Option<&mut SimilarityCache>,
    mut models: Option<&mut ModelCache>,
) -> ReclusterOutcome {
    let n = store.len();
    let mut state = ScanState::new(
        n,
        clusters,
        log_t,
        options.rebuild_psts,
        options.collect_similarities,
    );
    let mut score_nanos: u64 = 0;
    let mut absorb_nanos = 0u64;

    // The rebuild ablation replaces every model at the end of the scan, so
    // nothing cached can survive and nothing fresh is worth caching.
    if options.rebuild_psts {
        if let Some(cache) = cache.as_deref_mut() {
            cache.clear();
        }
        cache = None;
    }

    // Only an automaton kernel can prove a pair hopeless mid-scan.
    let prune_below = if options.kernel.uses_automaton() {
        options.prune_below
    } else {
        None
    };

    match (options.mode, options.kernel) {
        (ScanMode::Incremental, ScanKernel::Interpreted) => {
            // Scoring and model updates interleave here, so the whole scan
            // is attributed to the score phase (absorb stays 0).
            let _span = options.trace.map(|t| t.span(Phase::ScanScore));
            let start = std::time::Instant::now();
            let mut reuse = cache
                .as_deref()
                .map(|cache| SerialReuse::new(cache, clusters, n));
            let mut scratch: Vec<cluseq_seq::Symbol> = Vec::new();
            let mut reader = store.reader();
            for &seq_id in order {
                let seq = reader.symbols(seq_id);
                for (slot, cluster) in clusters.iter_mut().enumerate() {
                    let (verdict, reused) =
                        match reuse.as_ref().and_then(|r| r.lookup(slot, seq_id)) {
                            Some(verdict) => (verdict, true),
                            None => {
                                let sim = max_similarity_pst_with_scratch(
                                    &cluster.pst,
                                    background,
                                    seq,
                                    &mut scratch,
                                );
                                (BoundedSimilarity::Exact(sim), false)
                            }
                        };
                    let mutated = state.apply(seq_id, slot, verdict, seq, cluster, reused);
                    if let Some(reuse) = reuse.as_mut() {
                        reuse.after_pair(slot, seq_id, verdict, reused, mutated);
                    }
                }
            }
            if let (Some(reuse), Some(cache)) = (reuse, cache.as_deref_mut()) {
                state.metrics.clusters_dirty = reuse.dirty_at_start;
                reuse.commit(cache, clusters, &state.mutated);
            }
            score_nanos = start.elapsed().as_nanos() as u64;
        }
        (ScanMode::Incremental, kernel) => {
            // The incremental rule mutates a cluster's model mid-scan on
            // every new join, so each slot's automaton is built lazily and
            // rebuilt after a mutation. Joins are rare relative to scored
            // pairs once the clustering settles, so the automatons live
            // long enough to pay for themselves. With a cache, a clean
            // slot's automaton is never built at all — reuse needs no
            // automaton — so a converged scan compiles nothing.
            //
            // Sequences are scanned one at a time here (the mid-scan
            // mutations forbid batching), which is still exactly the
            // batched kernel's arithmetic: the batch driver is
            // bit-identical to the per-pair scan by construction.
            let _span = options.trace.map(|t| t.span(Phase::ScanScore));
            let start = std::time::Instant::now();
            let mut reuse = cache
                .as_deref()
                .map(|cache| SerialReuse::new(cache, clusters, n));
            let mut automata: Vec<Option<ClusterAutomaton>> = vec![None; clusters.len()];
            let mut compiles = 0u64;
            let mut reader = store.reader();
            for &seq_id in order {
                let seq = reader.symbols(seq_id);
                for (slot, cluster) in clusters.iter_mut().enumerate() {
                    let (verdict, reused) =
                        match reuse.as_ref().and_then(|r| r.lookup(slot, seq_id)) {
                            Some(verdict) => (verdict, true),
                            // With a model cache, the slot's automaton is
                            // fetched through it — retained builds survive
                            // across scans within the cache's byte budget.
                            None => match models.as_deref_mut() {
                                Some(mc) => {
                                    if !mc.contains(cluster.id) {
                                        compiles += 1;
                                    }
                                    let automaton = mc
                                        .get_or_build(cluster, background, kernel)
                                        .expect("automaton-backed kernel");
                                    (automaton.scan_pruned(seq, prune_below), false)
                                }
                                None => {
                                    let automaton = automata[slot].get_or_insert_with(|| {
                                        compiles += 1;
                                        ClusterAutomaton::build(&cluster.pst, background, kernel)
                                            .expect("automaton-backed kernel")
                                    });
                                    (automaton.scan_pruned(seq, prune_below), false)
                                }
                            },
                        };
                    let mutated = state.apply(seq_id, slot, verdict, seq, cluster, reused);
                    if mutated {
                        automata[slot] = None;
                        if let Some(mc) = models.as_deref_mut() {
                            mc.invalidate(cluster.id);
                        }
                    }
                    if let Some(reuse) = reuse.as_mut() {
                        reuse.after_pair(slot, seq_id, verdict, reused, mutated);
                    }
                }
            }
            if let (Some(reuse), Some(cache)) = (reuse, cache.as_deref_mut()) {
                state.metrics.clusters_dirty = reuse.dirty_at_start;
                state.metrics.pst_recompiles = compiles;
                reuse.commit(cache, clusters, &state.mutated);
            }
            score_nanos = start.elapsed().as_nanos() as u64;
        }
        (ScanMode::Snapshot, kernel) if cache.is_some() => {
            // Cached snapshot scan: whole-corpus scoring. The similarity
            // cache is O(n·k) resident by design, so sharding the verdict
            // matrix would bound nothing — `scan_shard` is ignored here.
            let engine = ScoreEngine::new(options.threads);
            let (rows, had_column) = {
                let cache_ref = cache.as_deref().expect("guarded by cache.is_some()");
                let _span = options.trace.map(|t| t.span(Phase::ScanScore));
                let had_column: Vec<bool> =
                    clusters.iter().map(|c| cache_ref.is_clean(c.id)).collect();
                let pass = engine.score_sequences_cached(
                    store,
                    clusters,
                    background,
                    order,
                    kernel,
                    prune_below,
                    cache_ref,
                    options.trace,
                );
                state.metrics.clusters_dirty = pass.dirty_slots.len() as u64;
                state.metrics.pst_recompiles = pass.compiles;
                score_nanos = pass.nanos;
                (pass.rows, had_column)
            };
            // Absorb phase: sequential, in examination order.
            let _span = options.trace.map(|t| t.span(Phase::ScanAbsorb));
            let start = std::time::Instant::now();
            let mut reader = store.reader();
            for (pos, &seq_id) in order.iter().enumerate() {
                let seq = reader.symbols(seq_id);
                for (slot, &verdict) in rows[pos].iter().enumerate() {
                    state.apply(
                        seq_id,
                        slot,
                        verdict,
                        seq,
                        &mut clusters[slot],
                        had_column[slot],
                    );
                }
            }
            // Cache write-back: a slot whose model mutated during absorb —
            // clean slots *can* mutate, a threshold move can turn a reused
            // verdict into a new join — loses its column; a dirty slot
            // that stayed constant gains the column just scored.
            if let Some(cache) = cache.as_mut() {
                for (slot, cluster) in clusters.iter().enumerate() {
                    if state.mutated[slot] {
                        cache.invalidate(cluster.id);
                    } else if !had_column[slot] {
                        let mut builder = ColumnBuilder::new(n);
                        for (pos, &seq_id) in order.iter().enumerate() {
                            builder.record(seq_id, rows[pos][slot]);
                        }
                        if let Some(col) = builder.finish() {
                            cache.install(cluster.id, col);
                        }
                    }
                }
            }
            absorb_nanos = start.elapsed().as_nanos() as u64;
        }
        (ScanMode::Snapshot, kernel) => {
            // Uncached snapshot scan, shardable. The iteration-start
            // models are frozen once, before the first shard: automaton
            // kernels freeze their compiled tables, the interpreted
            // kernel freezes PST clones when (and only when) a later
            // shard could observe an earlier shard's absorb. Each shard
            // then runs score (parallel) → absorb (sequential); shards
            // run in order, so the overall absorb order is exactly the
            // examination order and results are bit-identical to the
            // single-shard scan.
            let engine = ScoreEngine::new(options.threads);
            let n_order = order.len();
            let shard_len = match options.scan_shard {
                Some(s) if s > 0 => s.min(n_order.max(1)),
                _ => n_order.max(1),
            };
            let mut mc_misses_before = 0u64;
            let automata: Option<Vec<Arc<ClusterAutomaton>>> = if kernel.uses_automaton() {
                // Automaton builds are part of the score phase's bill:
                // they only exist to serve this pass.
                let start = std::time::Instant::now();
                let built: Vec<Arc<ClusterAutomaton>> = match models.as_deref_mut() {
                    Some(mc) => {
                        mc_misses_before = mc.stats().1;
                        clusters
                            .iter()
                            .map(|c| {
                                mc.get_or_build(c, background, kernel)
                                    .expect("automaton-backed kernel")
                            })
                            .collect()
                    }
                    None => engine
                        .compile_cluster_automata(clusters, background, kernel)
                        .into_iter()
                        .map(Arc::new)
                        .collect(),
                };
                score_nanos += start.elapsed().as_nanos() as u64;
                Some(built)
            } else {
                None
            };
            let frozen: Option<Vec<Cluster>> =
                (!kernel.uses_automaton() && shard_len < n_order).then(|| clusters.to_vec());
            let mut reader = store.reader();
            for shard in order.chunks(shard_len) {
                // Score phase: every shard pair against the frozen
                // iteration-start models, in parallel. Row `pos` holds
                // sequence `shard[pos]`'s scores in slot order, so the
                // absorb below visits pairs in exactly the incremental
                // scan's (sequence, slot) order.
                let rows: Vec<Vec<BoundedSimilarity>> = match &automata {
                    Some(automata) => {
                        let _span = options.trace.map(|t| t.span(Phase::ScanScore));
                        let (rows, nanos) = engine.score_sequences_automata_metered(
                            store,
                            automata,
                            shard,
                            prune_below,
                            kernel,
                            options.trace,
                        );
                        score_nanos += nanos;
                        rows
                    }
                    None => {
                        let _span = options.trace.map(|t| t.span(Phase::ScanScore));
                        let src: &[Cluster] = frozen.as_deref().unwrap_or(clusters);
                        let (rows, nanos) = engine.score_sequences_metered(
                            store,
                            src,
                            background,
                            shard,
                            options.trace,
                        );
                        score_nanos += nanos;
                        rows.into_iter()
                            .map(|row| row.into_iter().map(BoundedSimilarity::Exact).collect())
                            .collect()
                    }
                };
                // Absorb phase: sequential, in examination order.
                let _span = options.trace.map(|t| t.span(Phase::ScanAbsorb));
                let start = std::time::Instant::now();
                for (pos, &seq_id) in shard.iter().enumerate() {
                    let seq = reader.symbols(seq_id);
                    for (slot, &verdict) in rows[pos].iter().enumerate() {
                        state.apply(seq_id, slot, verdict, seq, &mut clusters[slot], false);
                    }
                }
                absorb_nanos += start.elapsed().as_nanos() as u64;
            }
            if let Some(mc) = models.as_deref_mut() {
                state.metrics.pst_recompiles += mc.stats().1 - mc_misses_before;
            }
        }
    }

    // Model-cache invalidation: the scan knows exactly which models it
    // mutated. (The serial arms invalidate inline at each mutation; doing
    // it again here is a harmless no-op. Under `rebuild_psts` every model
    // is replaced below, so everything cached dies.)
    if let Some(mc) = models {
        if options.rebuild_psts {
            mc.clear();
        } else {
            for (slot, cluster) in clusters.iter().enumerate() {
                if state.mutated[slot] {
                    mc.invalidate(cluster.id);
                }
            }
        }
    }

    // Install the rebuilt member lists, count flips, and collect the ids
    // of clusters the scan changed (for delta checkpoints).
    let mut changes = 0usize;
    let mut changed_clusters = Vec::new();
    for (slot, cluster) in clusters.iter_mut().enumerate() {
        state.new_members[slot].sort_unstable();
        let flips = symmetric_difference(&state.old_members[slot], &state.new_members[slot]);
        changes += flips;
        if flips > 0 || state.mutated[slot] || options.rebuild_psts {
            changed_clusters.push(cluster.id);
        }
        cluster.members = std::mem::take(&mut state.new_members[slot]);
    }

    if options.rebuild_psts {
        let alphabet_size = store.alphabet().len();
        let mut reader = store.reader();
        for (slot, cluster) in clusters.iter_mut().enumerate() {
            let params = *cluster.pst.params();
            let mut fresh = cluseq_pst::Pst::new(alphabet_size, params);
            // Seed sequence first (a cluster always models its seed), then
            // each member's maximizing segment.
            fresh.add_sequence(&reader.sequence(cluster.seed));
            for &(member, start, end) in &state.join_segments[slot] {
                fresh.add_segment(&reader.sequence(member).symbols()[start..end]);
            }
            cluster.pst = fresh;
        }
    }

    let mut metrics = state.metrics;
    metrics.membership_changes = changes;

    if let Some(trace) = options.trace {
        // End-of-scan barrier merge. Pair counts were already written per
        // worker shard by the snapshot score phase; the serial modes
        // record theirs here. Everything merges as u64 sums, so registry
        // totals are bit-identical across thread counts and equal to
        // `metrics` — `tests/trace_stream.rs` enforces both.
        if !matches!(options.mode, ScanMode::Snapshot) {
            trace.add(Counter::PairsScored, metrics.pairs_scored);
            trace.add(Counter::PairsPruned, metrics.pairs_pruned);
            trace.add(Counter::PairsReused, metrics.pairs_reused);
        }
        trace.add(Counter::Joins, metrics.joins);
        trace.add(Counter::NewJoins, metrics.new_joins);
        trace.add(
            Counter::MembershipChanges,
            metrics.membership_changes as u64,
        );
        trace.add(Counter::ClustersDirty, metrics.clusters_dirty);
        trace.add(Counter::PstRecompiles, metrics.pst_recompiles);
    }

    ReclusterOutcome {
        similarities: state.similarities,
        changes,
        best_cluster: state.best_cluster,
        metrics,
        score_nanos,
        absorb_nanos,
        changed_clusters,
    }
}

/// |A Δ B| for two ascending id lists.
fn symmetric_difference(a: &[usize], b: &[usize]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut diff = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                diff += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                diff += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    diff + (a.len() - i) + (b.len() - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_pst::PstParams;
    use cluseq_seq::SequenceDatabase;

    fn fixture() -> (SequenceDatabase, BackgroundModel) {
        let texts = [
            "abababababababab",
            "abababababababab",
            "abababababababab",
            "cccccccccccccccc",
            "cccccccccccccccc",
        ];
        let db = SequenceDatabase::from_strs(texts);
        let bg = db.background();
        (db, bg)
    }

    fn params() -> PstParams {
        PstParams::default().with_significance(2)
    }

    fn make_clusters(db: &SequenceDatabase, seeds: &[usize]) -> Vec<Cluster> {
        seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| Cluster::from_seed(i, s, db.sequence(s), db.alphabet().len(), params()))
            .collect()
    }

    fn incremental() -> ScanOptions<'static> {
        ScanOptions::default()
    }

    fn rebuild() -> ScanOptions<'static> {
        ScanOptions {
            rebuild_psts: true,
            ..ScanOptions::default()
        }
    }

    fn snapshot(threads: usize) -> ScanOptions<'static> {
        ScanOptions {
            mode: ScanMode::Snapshot,
            threads,
            ..ScanOptions::default()
        }
    }

    #[test]
    fn sequences_join_their_generating_cluster() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0, 3]);
        let order: Vec<usize> = (0..db.len()).collect();
        let out = recluster(&db, &mut clusters, 0.05, &order, &bg, incremental());
        assert_eq!(clusters[0].members, vec![0, 1, 2]);
        assert_eq!(clusters[1].members, vec![3, 4]);
        assert_eq!(out.best_cluster[1], Some(0));
        assert_eq!(out.best_cluster[4], Some(1));
    }

    #[test]
    fn similarities_cover_every_pair() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0, 3]);
        let order: Vec<usize> = (0..db.len()).collect();
        let out = recluster(&db, &mut clusters, 0.05, &order, &bg, incremental());
        assert_eq!(out.similarities.len(), db.len() * 2);
    }

    #[test]
    fn impossible_threshold_unclusters_everything() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0]);
        let order: Vec<usize> = (0..db.len()).collect();
        let out = recluster(&db, &mut clusters, 1e9, &order, &bg, incremental());
        assert!(clusters[0].members.is_empty());
        // The seed itself left the cluster: one membership change.
        assert_eq!(out.changes, 1);
        assert!(out.best_cluster.iter().all(|b| b.is_none()));
    }

    #[test]
    fn changes_count_joins_and_leaves() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0]);
        let order: Vec<usize> = (0..db.len()).collect();
        // First scan: ids 1, 2 join (changes = 2; id 0 stays).
        let out1 = recluster(&db, &mut clusters, 0.05, &order, &bg, incremental());
        assert_eq!(out1.changes, 2);
        // Second scan: stable clustering, no changes.
        let out2 = recluster(&db, &mut clusters, 0.05, &order, &bg, incremental());
        assert_eq!(out2.changes, 0);
    }

    #[test]
    fn new_joins_grow_the_model() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0]);
        let before = clusters[0].pst.total_count();
        let order: Vec<usize> = (0..db.len()).collect();
        recluster(&db, &mut clusters, 0.05, &order, &bg, incremental());
        assert!(
            clusters[0].pst.total_count() > before,
            "absorbing segments must increase the root count"
        );
    }

    #[test]
    fn repeat_members_do_not_reinflate_the_model() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0]);
        let order: Vec<usize> = (0..db.len()).collect();
        recluster(&db, &mut clusters, 0.05, &order, &bg, incremental());
        let after_first = clusters[0].pst.total_count();
        recluster(&db, &mut clusters, 0.05, &order, &bg, incremental());
        assert_eq!(
            clusters[0].pst.total_count(),
            after_first,
            "stable members are not re-absorbed"
        );
    }

    #[test]
    fn rebuild_mode_keeps_model_size_bounded() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0]);
        let order: Vec<usize> = (0..db.len()).collect();
        recluster(&db, &mut clusters, 0.05, &order, &bg, rebuild());
        let after_first = clusters[0].pst.total_count();
        recluster(&db, &mut clusters, 0.05, &order, &bg, rebuild());
        let after_second = clusters[0].pst.total_count();
        assert_eq!(
            after_first, after_second,
            "rebuild is idempotent at a fixpoint"
        );
    }

    #[test]
    fn snapshot_mode_recovers_the_same_clusters() {
        let (db, bg) = fixture();
        let mut clusters = make_clusters(&db, &[0, 3]);
        let order: Vec<usize> = (0..db.len()).collect();
        let out = recluster(&db, &mut clusters, 0.05, &order, &bg, snapshot(1));
        assert_eq!(clusters[0].members, vec![0, 1, 2]);
        assert_eq!(clusters[1].members, vec![3, 4]);
        assert_eq!(out.similarities.len(), db.len() * 2);
    }

    /// The tentpole invariant at the single-scan level: a snapshot scan is
    /// one deterministic function of its inputs, so every thread count
    /// must reproduce the threads = 1 run bit for bit — similarities,
    /// flips, memberships, and the models themselves.
    #[test]
    fn snapshot_scan_is_bit_identical_for_any_thread_count() {
        let (db, bg) = fixture();
        let order: Vec<usize> = vec![4, 1, 3, 0, 2];
        let run = |threads: usize| {
            let mut clusters = make_clusters(&db, &[0, 3]);
            let out = recluster(&db, &mut clusters, 0.05, &order, &bg, snapshot(threads));
            let members: Vec<Vec<usize>> = clusters.iter().map(|c| c.members.clone()).collect();
            let counts: Vec<u64> = clusters.iter().map(|c| c.pst.total_count()).collect();
            let sims: Vec<u64> = out.similarities.iter().map(|s| s.to_bits()).collect();
            (sims, out.changes, out.best_cluster, members, counts)
        };
        let reference = run(1);
        for threads in [2usize, 4, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    /// Snapshot scoring happens against iteration-start models: a scan
    /// from a fixpoint (no new joins) therefore produces exactly the
    /// incremental scan's numbers.
    #[test]
    fn snapshot_equals_incremental_at_a_fixpoint() {
        let (db, bg) = fixture();
        let order: Vec<usize> = (0..db.len()).collect();
        let mut inc = make_clusters(&db, &[0, 3]);
        recluster(&db, &mut inc, 0.05, &order, &bg, incremental());
        let mut snap = inc.clone();

        let out_inc = recluster(&db, &mut inc, 0.05, &order, &bg, incremental());
        let out_snap = recluster(&db, &mut snap, 0.05, &order, &bg, snapshot(4));
        assert_eq!(out_inc.changes, 0);
        assert_eq!(out_snap.changes, 0);
        let bits = |sims: &[f64]| sims.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&out_inc.similarities), bits(&out_snap.similarities));
        assert_eq!(out_inc.best_cluster, out_snap.best_cluster);
        for (a, b) in inc.iter().zip(&snap) {
            assert_eq!(a.members, b.members);
            assert_eq!(a.pst.total_count(), b.pst.total_count());
        }
    }

    #[test]
    fn scan_metrics_count_pairs_and_joins() {
        let (db, bg) = fixture();
        let order: Vec<usize> = (0..db.len()).collect();
        for opts in [incremental(), snapshot(2)] {
            let mut clusters = make_clusters(&db, &[0, 3]);
            let out = recluster(&db, &mut clusters, 0.05, &order, &bg, opts);
            assert_eq!(out.metrics.pairs_scored, (db.len() * 2) as u64);
            // Joins = final membership entries (3 in cluster 0, 2 in 1).
            assert_eq!(out.metrics.joins, 5);
            // The seeds were already members; 3 sequences joined anew.
            assert_eq!(out.metrics.new_joins, 3);
            assert_eq!(out.metrics.membership_changes, out.changes);
        }
    }

    fn with_kernel<'a>(mut opts: ScanOptions<'a>, kernel: ScanKernel) -> ScanOptions<'a> {
        opts.kernel = kernel;
        opts
    }

    /// The tentpole invariant: the compiled and batched kernels reproduce
    /// the interpreted kernel bit for bit — similarities, flips,
    /// memberships, models — in every scan mode and at every thread count.
    #[test]
    fn compiled_kernel_scan_is_bit_identical_to_interpreted() {
        let (db, bg) = fixture();
        let order: Vec<usize> = vec![4, 1, 3, 0, 2];
        let run = |opts: ScanOptions| {
            let mut clusters = make_clusters(&db, &[0, 3]);
            let out = recluster(&db, &mut clusters, 0.05, &order, &bg, opts);
            let members: Vec<Vec<usize>> = clusters.iter().map(|c| c.members.clone()).collect();
            let counts: Vec<u64> = clusters.iter().map(|c| c.pst.total_count()).collect();
            let sims: Vec<u64> = out.similarities.iter().map(|s| s.to_bits()).collect();
            (sims, out.changes, out.best_cluster, members, counts)
        };
        for base in [incremental(), rebuild(), snapshot(1), snapshot(4)] {
            let reference = run(with_kernel(base, ScanKernel::Interpreted));
            for kernel in [ScanKernel::Compiled, ScanKernel::Batched] {
                assert_eq!(
                    run(with_kernel(base, kernel)),
                    reference,
                    "kernel {kernel} mode {:?} rebuild {}",
                    base.mode,
                    base.rebuild_psts,
                );
            }
        }
    }

    /// The quantized kernel is approximate but *deterministic*: the same
    /// scan yields byte-identical results in every mode and at every
    /// thread count, and every similarity it reports sits within the
    /// per-automaton error bound of the exact kernel's value.
    #[test]
    fn quantized_kernel_scan_is_deterministic_and_near_exact() {
        let (db, bg) = fixture();
        let order: Vec<usize> = vec![4, 1, 3, 0, 2];
        let run = |opts: ScanOptions| {
            let mut clusters = make_clusters(&db, &[0, 3]);
            let out = recluster(&db, &mut clusters, 0.05, &order, &bg, opts);
            let members: Vec<Vec<usize>> = clusters.iter().map(|c| c.members.clone()).collect();
            let counts: Vec<u64> = clusters.iter().map(|c| c.pst.total_count()).collect();
            let sims: Vec<u64> = out.similarities.iter().map(|s| s.to_bits()).collect();
            (sims, out.changes, out.best_cluster, members, counts)
        };
        // Snapshot scans are one deterministic function of their inputs:
        // every thread count reproduces threads = 1 byte for byte.
        let reference = run(with_kernel(snapshot(1), ScanKernel::Quantized));
        for threads in [2usize, 4, 8] {
            assert_eq!(
                run(with_kernel(snapshot(threads), ScanKernel::Quantized)),
                reference,
                "threads={threads}"
            );
        }
        // And repeating the identical incremental scan is a no-op diff.
        assert_eq!(
            run(with_kernel(incremental(), ScanKernel::Quantized)),
            run(with_kernel(incremental(), ScanKernel::Quantized)),
        );
        // Near-exactness on a fixed model: every quantized similarity of
        // the first scored row is within the automaton's error bound.
        let clusters = make_clusters(&db, &[0, 3]);
        for cluster in &clusters {
            let exact = ClusterAutomaton::build(&cluster.pst, &bg, ScanKernel::Compiled).unwrap();
            let quant = ClusterAutomaton::build(&cluster.pst, &bg, ScanKernel::Quantized).unwrap();
            let ClusterAutomaton::Quantized(ref q) = quant else {
                unreachable!()
            };
            for id in 0..db.len() {
                let seq = db.sequence(id).symbols();
                let e = exact.scan(seq).log_sim;
                let a = quant.scan(seq).log_sim;
                assert!(
                    (e - a).abs() <= q.error_bound(seq.len()),
                    "cluster {} seq {id}: exact {e} quantized {a} bound {}",
                    cluster.id,
                    q.error_bound(seq.len())
                );
            }
        }
    }

    /// With pruning enabled, hopeless pairs are counted — not silently
    /// skipped — and every observable outcome matches the unpruned scan.
    #[test]
    fn scan_pruning_counts_pairs_and_preserves_outcomes() {
        // Long sequences (≥ several prune-check intervals) in two sharply
        // separated groups, so cross-group pairs are provably hopeless.
        let texts: Vec<String> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    "ab".repeat(100)
                } else {
                    "c".repeat(200)
                }
            })
            .collect();
        let db = SequenceDatabase::from_strs(texts.iter().map(|s| s.as_str()));
        let bg = db.background();
        let order: Vec<usize> = (0..db.len()).collect();
        // High enough that a cross-group pair is provably hopeless well
        // before its sequence ends, low enough that same-group pairs
        // still join (they score ~140+ in log space here).
        let log_t = 100.0f64;

        let run = |opts: ScanOptions| {
            let mut clusters = make_clusters(&db, &[0, 1]);
            let out = recluster(&db, &mut clusters, log_t, &order, &bg, opts);
            let members: Vec<Vec<usize>> = clusters.iter().map(|c| c.members.clone()).collect();
            let counts: Vec<u64> = clusters.iter().map(|c| c.pst.total_count()).collect();
            (out, members, counts)
        };

        for base in [incremental(), snapshot(2)] {
            for kernel in [
                ScanKernel::Compiled,
                ScanKernel::Batched,
                ScanKernel::Quantized,
            ] {
                let mut pruned_opts = with_kernel(base, kernel);
                pruned_opts.prune_below = Some(log_t);
                let (out_p, members_p, counts_p) = run(pruned_opts);
                let (out_x, members_x, counts_x) = run(with_kernel(base, kernel));

                assert!(
                    out_p.metrics.pairs_pruned > 0,
                    "mode {:?} kernel {kernel}: cross-group pairs should be prunable",
                    base.mode
                );
                assert_eq!(out_x.metrics.pairs_pruned, 0, "no pruning when disabled");
                assert!(out_x.metrics.joins > 0, "the threshold must stay reachable");
                assert_eq!(out_p.metrics.pairs_scored, out_x.metrics.pairs_scored);
                assert_eq!(out_p.metrics.joins, out_x.metrics.joins);
                assert_eq!(out_p.metrics.new_joins, out_x.metrics.new_joins);
                assert_eq!(out_p.changes, out_x.changes);
                assert_eq!(out_p.best_cluster, out_x.best_cluster);
                assert_eq!(members_p, members_x);
                assert_eq!(counts_p, counts_x);
                // A pruned pair forfeits its histogram sample — the only
                // observable difference.
                assert_eq!(
                    out_p.similarities.len() + out_p.metrics.pairs_pruned as usize,
                    out_x.similarities.len() + out_x.metrics.pairs_pruned as usize
                );
            }
        }
    }

    /// The interpreted kernel cannot prune: a stray `prune_below` must be
    /// ignored rather than half-applied.
    #[test]
    fn interpreted_kernel_ignores_prune_below() {
        let (db, bg) = fixture();
        let order: Vec<usize> = (0..db.len()).collect();
        let mut clusters = make_clusters(&db, &[0, 3]);
        let mut opts = with_kernel(incremental(), ScanKernel::Interpreted);
        opts.prune_below = Some(1e9);
        let out = recluster(&db, &mut clusters, 0.05, &order, &bg, opts);
        assert_eq!(out.metrics.pairs_pruned, 0);
        assert_eq!(out.similarities.len(), db.len() * 2);
    }

    /// A traced scan leaves its outputs untouched and lands exactly the
    /// scan's [`ScanMetrics`] in the registry — regardless of mode,
    /// kernel, or thread count (the per-shard vs barrier-merge split must
    /// never double- or under-count).
    #[test]
    fn traced_scan_registry_equals_scan_metrics() {
        use crate::trace::{Counter, TraceSession};
        let (db, bg) = fixture();
        let order: Vec<usize> = vec![4, 1, 3, 0, 2];
        for base in [incremental(), snapshot(1), snapshot(4)] {
            for kernel in ScanKernel::ALL {
                let opts = with_kernel(base, kernel);
                let mut plain_clusters = make_clusters(&db, &[0, 3]);
                let plain = recluster(&db, &mut plain_clusters, 0.05, &order, &bg, opts);

                let session = TraceSession::in_memory();
                let mut traced_clusters = make_clusters(&db, &[0, 3]);
                let traced_opts = ScanOptions {
                    trace: Some(&session),
                    ..opts
                };
                let traced = recluster(&db, &mut traced_clusters, 0.05, &order, &bg, traced_opts);

                let ctx = format!("mode {:?} kernel {:?}", base.mode, kernel);
                let bits = |sims: &[f64]| sims.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&plain.similarities),
                    bits(&traced.similarities),
                    "{ctx}"
                );
                assert_eq!(plain.changes, traced.changes, "{ctx}");
                for (a, b) in plain_clusters.iter().zip(&traced_clusters) {
                    assert_eq!(a.members, b.members, "{ctx}");
                    assert_eq!(a.pst.total_count(), b.pst.total_count(), "{ctx}");
                }
                let m = traced.metrics;
                assert_eq!(
                    session.counter(Counter::PairsScored),
                    m.pairs_scored,
                    "{ctx}"
                );
                assert_eq!(
                    session.counter(Counter::PairsPruned),
                    m.pairs_pruned,
                    "{ctx}"
                );
                assert_eq!(session.counter(Counter::Joins), m.joins, "{ctx}");
                assert_eq!(session.counter(Counter::NewJoins), m.new_joins, "{ctx}");
                assert_eq!(
                    session.counter(Counter::MembershipChanges),
                    m.membership_changes as u64,
                    "{ctx}"
                );
            }
        }
    }

    /// The incremental-engine invariant at the single-scan level: scans
    /// driven through a similarity cache are bit-identical to uncached
    /// scans in every observable, and a stable clustering converges to
    /// full reuse — zero pairs scored, zero compiles.
    #[test]
    fn cached_scans_are_bit_identical_and_converge_to_full_reuse() {
        let (db, bg) = fixture();
        let order: Vec<usize> = (0..db.len()).collect();
        let observe = |out: &ReclusterOutcome, clusters: &[Cluster]| {
            (
                out.similarities
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
                out.changes,
                out.best_cluster.clone(),
                out.changed_clusters.clone(),
                clusters
                    .iter()
                    .map(|c| c.members.clone())
                    .collect::<Vec<_>>(),
                clusters
                    .iter()
                    .map(|c| c.pst.total_count())
                    .collect::<Vec<_>>(),
            )
        };
        for base in [incremental(), snapshot(1), snapshot(4)] {
            for kernel in ScanKernel::ALL {
                let opts = with_kernel(base, kernel);
                let mut plain_clusters = make_clusters(&db, &[0, 3]);
                let mut cached_clusters = make_clusters(&db, &[0, 3]);
                let mut cache = SimilarityCache::new(db.len());
                for round in 0..3 {
                    let plain = recluster(&db, &mut plain_clusters, 0.05, &order, &bg, opts);
                    let cached = recluster_cached(
                        &db,
                        &mut cached_clusters,
                        0.05,
                        &order,
                        &bg,
                        opts,
                        Some(&mut cache),
                    );
                    let ctx = format!("mode {:?} kernel {:?} round {round}", base.mode, kernel);
                    assert_eq!(
                        observe(&plain, &plain_clusters),
                        observe(&cached, &cached_clusters),
                        "{ctx}"
                    );
                    assert_eq!(cached.metrics.joins, plain.metrics.joins, "{ctx}");
                    // Reuse replaces scoring one for one.
                    assert_eq!(
                        cached.metrics.pairs_scored + cached.metrics.pairs_reused,
                        plain.metrics.pairs_scored,
                        "{ctx}"
                    );
                    if round == 2 {
                        // Round 0 mutates both models (new joins), so no
                        // columns survive it; round 1 rescores and caches;
                        // round 2 must reuse everything.
                        assert_eq!(cached.metrics.pairs_reused, (db.len() * 2) as u64, "{ctx}");
                        assert_eq!(cached.metrics.pairs_scored, 0, "{ctx}");
                        assert_eq!(cached.metrics.clusters_dirty, 0, "{ctx}");
                        assert_eq!(cached.metrics.pst_recompiles, 0, "{ctx}");
                    }
                }
            }
        }
    }

    /// Traced cached scans land exactly their [`ScanMetrics`] in the
    /// registry, including the three incremental counters, at every
    /// mode × kernel × round point.
    #[test]
    fn traced_cached_scan_registry_equals_scan_metrics() {
        use crate::trace::{Counter, TraceSession};
        let (db, bg) = fixture();
        let order: Vec<usize> = (0..db.len()).collect();
        for base in [incremental(), snapshot(1), snapshot(4)] {
            for kernel in ScanKernel::ALL {
                let mut clusters = make_clusters(&db, &[0, 3]);
                let mut cache = SimilarityCache::new(db.len());
                for round in 0..3 {
                    let session = TraceSession::in_memory();
                    let opts = ScanOptions {
                        trace: Some(&session),
                        ..with_kernel(base, kernel)
                    };
                    let out = recluster_cached(
                        &db,
                        &mut clusters,
                        0.05,
                        &order,
                        &bg,
                        opts,
                        Some(&mut cache),
                    );
                    let m = out.metrics;
                    let ctx = format!("mode {:?} kernel {:?} round {round}", base.mode, kernel);
                    assert_eq!(
                        session.counter(Counter::PairsScored),
                        m.pairs_scored,
                        "{ctx}"
                    );
                    assert_eq!(
                        session.counter(Counter::PairsPruned),
                        m.pairs_pruned,
                        "{ctx}"
                    );
                    assert_eq!(
                        session.counter(Counter::PairsReused),
                        m.pairs_reused,
                        "{ctx}"
                    );
                    assert_eq!(
                        session.counter(Counter::ClustersDirty),
                        m.clusters_dirty,
                        "{ctx}"
                    );
                    assert_eq!(
                        session.counter(Counter::PstRecompiles),
                        m.pst_recompiles,
                        "{ctx}"
                    );
                    if round == 2 {
                        assert!(m.pairs_reused > 0, "{ctx}");
                    }
                }
            }
        }
    }

    #[test]
    fn symmetric_difference_counts_flips() {
        assert_eq!(symmetric_difference(&[], &[]), 0);
        assert_eq!(symmetric_difference(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(symmetric_difference(&[1, 2], &[2, 3]), 2);
        assert_eq!(symmetric_difference(&[1], &[]), 1);
        assert_eq!(symmetric_difference(&[], &[5, 6, 7]), 3);
    }
}
