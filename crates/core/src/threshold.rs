//! Automatic adjustment of the similarity threshold `t` (paper §4.6).
//!
//! Each iteration builds a histogram of the similarities of all
//! sequence–cluster combinations. The *valley* is the histogram point where
//! the curve turns most sharply — formalized as the bucket `i` maximizing
//! the absolute difference between the slopes of the least-squares
//! regression lines fitted to the left part (buckets `1..=i`) and the right
//! part (buckets `i..=n`). The threshold then moves half-way toward the
//! valley: `t ← (t + t̂) / 2`, and stops moving once within 1%.
//!
//! Similarities here are log-space ([`crate::LogSim`]); the valley analysis
//! is performed on the log axis, which preserves the turn structure (a
//! monotone reparameterization of the x-axis) and keeps the huge dynamic
//! range of raw similarities tractable.

use cluseq_eval::Histogram;

/// Least-squares slope of the regression line through `points`
/// (the paper's `bᵢ` formula; returns 0 for degenerate inputs such as a
/// single point or zero x-variance).
pub fn regression_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let sum_x: f64 = points.iter().map(|p| p.0).sum();
    let sum_y: f64 = points.iter().map(|p| p.1).sum();
    let sum_xy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let sum_x2: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let denom = sum_x2 - sum_x * sum_x / n;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    (sum_xy - sum_x * sum_y / n) / denom
}

/// Finds the valley `t̂`: the bucket center maximizing
/// `|bᵢˡ − bᵢʳ|` over interior buckets `i = 2 … n−1` (1-indexed as in the
/// paper). Returns `None` when the histogram is too small or empty.
pub fn find_valley(hist: &Histogram) -> Option<f64> {
    let points = hist.points();
    let n = points.len();
    if n < 3 || hist.total() == 0 {
        return None;
    }
    let mut best_diff = f64::NEG_INFINITY;
    let mut best_x = None;
    // Interior buckets only: both sides need >= 2 points for a slope.
    for i in 1..n - 1 {
        let left = regression_slope(&points[..=i]);
        let right = regression_slope(&points[i..]);
        let diff = (left - right).abs();
        if diff > best_diff {
            best_diff = diff;
            best_x = Some(points[i].0);
        }
    }
    best_x
}

/// The outcome of one threshold-adjustment step, with the intermediate
/// valley exposed for telemetry ([`crate::telemetry::IterationRecord`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdDecision {
    /// The valley `t̂` the regression analysis found, if any (log-space).
    pub valley: Option<f64>,
    /// The threshold after the step (log-space; unchanged when `moved` is
    /// false).
    pub log_t: f64,
    /// Whether the threshold actually moved.
    pub moved: bool,
}

/// One threshold-adjustment step: moves `t` (log-space) half-way toward the
/// valley of `hist`, unless already within `tolerance` (relative, on the
/// log scale — the paper uses 1%). Exposes the valley it found; use
/// [`adjust_threshold`] when only the resulting threshold matters.
pub fn decide_threshold(log_t: f64, hist: &Histogram, tolerance: f64) -> ThresholdDecision {
    let Some(valley) = find_valley(hist) else {
        return ThresholdDecision {
            valley: None,
            log_t,
            moved: false,
        };
    };
    // "Virtually the same": relative distance under the tolerance.
    let scale = log_t.abs().max(valley.abs()).max(1e-9);
    let moved = (valley - log_t).abs() / scale >= tolerance;
    ThresholdDecision {
        valley: Some(valley),
        log_t: if moved { (log_t + valley) / 2.0 } else { log_t },
        moved,
    }
}

/// One threshold-adjustment step; see [`decide_threshold`] for the variant
/// that also reports the valley. Returns the new threshold and whether it
/// actually moved.
pub fn adjust_threshold(log_t: f64, hist: &Histogram, tolerance: f64) -> (f64, bool) {
    let d = decide_threshold(log_t, hist, tolerance);
    (d.log_t, d.moved)
}

/// [`decide_threshold`], additionally counting a `threshold_moves` event
/// in the tracing registry when the step moved the threshold. The caller
/// holds the surrounding `threshold` span (which also covers building the
/// histogram this function receives). The decision itself is unchanged.
pub fn decide_threshold_traced(
    log_t: f64,
    hist: &Histogram,
    tolerance: f64,
    trace: Option<&crate::trace::TraceSession>,
) -> ThresholdDecision {
    let decision = decide_threshold(log_t, hist, tolerance);
    if let Some(trace) = trace {
        if decision.moved {
            trace.add(crate::trace::Counter::ThresholdMoves, 1);
        }
    }
    decision
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_a_line_is_exact() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((regression_slope(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_degenerate_inputs_is_zero() {
        assert_eq!(regression_slope(&[]), 0.0);
        assert_eq!(regression_slope(&[(1.0, 5.0)]), 0.0);
        assert_eq!(regression_slope(&[(2.0, 1.0), (2.0, 9.0)]), 0.0);
    }

    /// A histogram shaped like the paper's Figure 3: steep decline on the
    /// left, flat tail on the right, with the valley at the elbow.
    fn figure3_histogram() -> Histogram {
        let mut h = Histogram::new(0.0, 10.0, 20);
        for bucket in 0..20 {
            let x = h.bucket_center(bucket);
            // Steep line until x = 4, flat low tail after.
            let count = if x < 4.0 {
                (1000.0 - 240.0 * x) as u64
            } else {
                30
            };
            for _ in 0..count {
                h.add(x);
            }
        }
        h
    }

    #[test]
    fn valley_lands_at_the_elbow() {
        let h = figure3_histogram();
        let valley = find_valley(&h).unwrap();
        assert!(
            (3.0..=5.0).contains(&valley),
            "valley {valley} should be near the elbow at 4"
        );
    }

    #[test]
    fn valley_of_empty_histogram_is_none() {
        let h = Histogram::new(0.0, 1.0, 10);
        assert_eq!(find_valley(&h), None);
    }

    #[test]
    fn adjustment_moves_halfway() {
        let h = figure3_histogram();
        let valley = find_valley(&h).unwrap();
        let (t, moved) = adjust_threshold(0.0, &h, 0.01);
        assert!(moved);
        assert!((t - valley / 2.0).abs() < 1e-9);
    }

    #[test]
    fn adjustment_converges_geometrically() {
        let h = figure3_histogram();
        let valley = find_valley(&h).unwrap();
        let mut t = 0.0;
        for _ in 0..40 {
            let (next, moved) = adjust_threshold(t, &h, 0.01);
            t = next;
            if !moved {
                break;
            }
        }
        assert!(
            (t - valley).abs() / valley < 0.02,
            "t = {t} should settle within ~1% of the valley {valley}"
        );
    }

    #[test]
    fn adjustment_stops_within_tolerance() {
        let h = figure3_histogram();
        let valley = find_valley(&h).unwrap();
        let (t, moved) = adjust_threshold(valley * 0.999, &h, 0.01);
        assert!(!moved);
        assert_eq!(t, valley * 0.999);
    }

    #[test]
    fn decide_threshold_reports_the_valley() {
        let h = figure3_histogram();
        let valley = find_valley(&h).unwrap();
        let d = decide_threshold(0.0, &h, 0.01);
        assert_eq!(d.valley, Some(valley));
        assert!(d.moved);
        assert!((d.log_t - valley / 2.0).abs() < 1e-9);
        // Frozen case: valley still reported, threshold untouched.
        let d2 = decide_threshold(valley, &h, 0.01);
        assert_eq!(d2.valley, Some(valley));
        assert!(!d2.moved);
        assert_eq!(d2.log_t, valley);
    }

    #[test]
    fn decide_threshold_without_a_valley_is_a_noop() {
        let h = Histogram::new(0.0, 1.0, 10);
        let d = decide_threshold(0.5, &h, 0.01);
        assert_eq!(d.valley, None);
        assert!(!d.moved);
        assert_eq!(d.log_t, 0.5);
    }
}
