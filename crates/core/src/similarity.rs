//! The CLUSEQ similarity measure and its dynamic program (§2, §4.3).
//!
//! `SIM_S(σ) = max over segments s_j…s_i of σ of P_S(segment) / Pʳ(segment)`
//! where `P_S` predicts under the cluster model and `Pʳ` under the
//! memoryless background. The paper computes it in one scan with the
//! recurrences
//!
//! ```text
//! Xᵢ = P_S(sᵢ | s₁…sᵢ₋₁) / p(sᵢ)
//! Yᵢ = max(Yᵢ₋₁ · Xᵢ, Xᵢ)        (best segment ending at i)
//! Zᵢ = max(Zᵢ₋₁, Yᵢ)             (best segment ending at or before i)
//! ```
//!
//! We work in **log space**: the paper's sequences run to thousands of
//! symbols, and a product of per-symbol ratios around 2 overflows `f64`
//! within a few hundred steps. All scores in this crate are natural
//! logarithms of the paper's similarity values ([`LogSim`]); `SIM ≥ t`
//! becomes `log SIM ≥ ln t`.

use cluseq_pst::{CompiledPst, ConditionalModel, Pst, QuantizedPst};
use cluseq_seq::{BackgroundModel, Symbol};

/// A similarity score in natural-log space (`ln SIM`).
///
/// `0.0` corresponds to the paper's `SIM = 1` — the boundary where a
/// sequence is no better explained by the cluster than by background noise.
pub type LogSim = f64;

/// The outcome of a similarity evaluation: the best score and the
/// maximizing segment `[start, end)` of the examined sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentSimilarity {
    /// `ln SIM_S(σ)`.
    pub log_sim: LogSim,
    /// Start (inclusive) of the maximizing segment.
    pub start: usize,
    /// End (exclusive) of the maximizing segment.
    pub end: usize,
}

impl SegmentSimilarity {
    /// The similarity in the paper's natural units (`exp` of the log).
    pub fn sim(&self) -> f64 {
        self.log_sim.exp()
    }

    /// Length of the maximizing segment.
    pub fn segment_len(&self) -> usize {
        self.end - self.start
    }
}

/// Computes `SIM_S(σ)` and its maximizing segment via the X/Y/Z dynamic
/// program, in a single scan of `seq`.
///
/// Per the paper, `Xᵢ` conditions on the *full prefix* `s₁…sᵢ₋₁` (the
/// model's longest-significant-suffix lookup truncates it internally);
/// this is what makes the single-scan recurrence exact for the measure the
/// paper evaluates.
///
/// An empty sequence has no non-empty segment: the result carries
/// `log_sim = -∞` and the empty segment `[0, 0)`.
///
/// ```
/// use cluseq_core::max_similarity;
/// use cluseq_pst::{Pst, PstParams};
/// use cluseq_seq::{Alphabet, BackgroundModel, Sequence};
///
/// let alphabet = Alphabet::from_chars("ab".chars());
/// let train = Sequence::parse_str(&alphabet, "abababababab").unwrap();
/// let pst = Pst::from_sequence(2, PstParams::default().with_significance(2), &train);
/// let bg = BackgroundModel::uniform(2);
///
/// // A probe matching the learned alternation scores far above 1 (> 0 in
/// // log space); its maximizing segment covers the whole probe.
/// let probe = Sequence::parse_str(&alphabet, "ababab").unwrap();
/// let sim = max_similarity(&pst, &bg, probe.symbols());
/// assert!(sim.log_sim > 1.0);
/// assert_eq!((sim.start, sim.end), (0, probe.len()));
/// ```
pub fn max_similarity<M: ConditionalModel>(
    model: &M,
    background: &BackgroundModel,
    seq: &[Symbol],
) -> SegmentSimilarity {
    let mut best = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    // Y-state: best chain ending at the current position, and its start.
    let mut y = f64::NEG_INFINITY;
    let mut y_start = 0usize;

    for i in 0..seq.len() {
        let p_model = model.predict(&seq[..i], seq[i]);
        debug_assert!(
            background.prob(seq[i]) > 0.0,
            "background probabilities must be positive"
        );
        // ln Xᵢ; a raw model probability of 0 (no smoothing) gives -∞,
        // which correctly voids any chain through position i.
        let x = p_model.ln() - background.ln_prob(seq[i]);

        // Yᵢ = max(Yᵢ₋₁·Xᵢ, Xᵢ) — extend the chain or restart at i.
        let extended = y + x;
        if extended >= x {
            y = extended;
        } else {
            y = x;
            y_start = i;
        }

        // Zᵢ = max(Zᵢ₋₁, Yᵢ).
        if y > best.log_sim {
            best = SegmentSimilarity {
                log_sim: y,
                start: y_start,
                end: i + 1,
            };
        }
    }
    best
}

/// [`max_similarity`] specialized to a [`Pst`] via its incremental
/// [scanner](cluseq_pst::ContextScanner) — the paper's auxiliary-link O(l)
/// variant. Produces bit-identical results to the generic version (the
/// scanner is exact, falling back to per-position walks after pruning);
/// only the per-position prediction cost changes.
///
/// This is the path the clustering driver uses: the similarity scan is the
/// dominant cost of CLUSEQ (every sequence × every cluster × every
/// iteration).
pub fn max_similarity_pst(
    pst: &Pst,
    background: &BackgroundModel,
    seq: &[Symbol],
) -> SegmentSimilarity {
    let mut scratch = Vec::new();
    max_similarity_pst_with_scratch(pst, background, seq, &mut scratch)
}

/// [`max_similarity_pst`] with a caller-supplied scanner scratch buffer.
///
/// The interpreted scanner needs a fallback context buffer after PST
/// pruning breaks the right-link structure; allocating it per (sequence,
/// cluster) pair makes the allocator a hot-loop cost — worst when the
/// incremental cache skips most pairs and the remaining fresh evaluations
/// are interleaved with allocator-free cache hits. Threading one buffer
/// through a whole scan keeps reuse paths allocation-free. Results are
/// bit-identical to [`max_similarity_pst`].
pub fn max_similarity_pst_with_scratch(
    pst: &Pst,
    background: &BackgroundModel,
    seq: &[Symbol],
    scratch: &mut Vec<Symbol>,
) -> SegmentSimilarity {
    let mut best = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    let mut y = f64::NEG_INFINITY;
    let mut y_start = 0usize;
    let mut scanner = pst.scanner_with_scratch(std::mem::take(scratch));

    for (i, &sym) in seq.iter().enumerate() {
        let p_model = scanner.predict_and_advance(sym);
        let x = p_model.ln() - background.ln_prob(sym);
        let extended = y + x;
        if extended >= x {
            y = extended;
        } else {
            y = x;
            y_start = i;
        }
        if y > best.log_sim {
            best = SegmentSimilarity {
                log_sim: y,
                start: y_start,
                end: i + 1,
            };
        }
    }
    *scratch = scanner.into_scratch();
    best
}

/// How often [`max_similarity_compiled_bounded`] re-evaluates its prune
/// bound, in symbols. Checking every position would spend more on bound
/// arithmetic than it saves; every 32 symbols the overhead is noise while
/// a hopeless pair is still abandoned almost immediately.
const PRUNE_CHECK_INTERVAL: usize = 32;

/// Safety margin for the early-exit decision. The upper bound is computed
/// with a different (shorter) chain of f64 operations than the DP itself,
/// so the two can disagree by accumulated rounding — at most a few ulps
/// per position, i.e. ≲1e-7 even for million-symbol sequences at the
/// paper's score magnitudes. Requiring the bound to clear the threshold by
/// this much before pruning makes rounding divergence irrelevant while
/// giving up no meaningful pruning power.
const PRUNE_SLACK: f64 = 1e-6;

/// [`max_similarity`] over a [`CompiledPst`]: the same X/Y/Z dynamic
/// program with the per-symbol model interpretation replaced by two array
/// loads (see [`cluseq_pst::compile`]).
///
/// Bit-identical to [`max_similarity_pst`] on the tree the automaton was
/// compiled from: the precomputed ratio table holds the same f64 values
/// the interpreted path computes per symbol, and the DP accumulates them
/// in the same order.
pub fn max_similarity_compiled(compiled: &CompiledPst, seq: &[Symbol]) -> SegmentSimilarity {
    let mut best = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    let mut y = f64::NEG_INFINITY;
    let mut y_start = 0usize;
    let mut state = CompiledPst::START;

    for (i, &sym) in seq.iter().enumerate() {
        let (x, next) = compiled.step(state, sym);
        state = next;
        let extended = y + x;
        if extended >= x {
            y = extended;
        } else {
            y = x;
            y_start = i;
        }
        if y > best.log_sim {
            best = SegmentSimilarity {
                log_sim: y,
                start: y_start,
                end: i + 1,
            };
        }
    }
    best
}

/// The outcome of a threshold-bounded similarity evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundedSimilarity {
    /// The scan ran to completion; the similarity is exact and
    /// bit-identical to the unbounded kernels.
    Exact(SegmentSimilarity),
    /// The scan proved mid-sequence that no segment can reach the
    /// threshold and exited early. The (unknown) exact similarity is
    /// strictly below the threshold the caller passed.
    Pruned,
}

impl BoundedSimilarity {
    /// The exact result, if the scan was not pruned.
    pub fn exact(self) -> Option<SegmentSimilarity> {
        match self {
            Self::Exact(s) => Some(s),
            Self::Pruned => None,
        }
    }

    /// Whether the scan early-exited.
    pub fn is_pruned(self) -> bool {
        matches!(self, Self::Pruned)
    }
}

/// How many entries of a scored row were pruned — the per-row kernel
/// early-exit count the tracing layer records at the worker that produced
/// the row.
pub fn prune_count(row: &[BoundedSimilarity]) -> u64 {
    row.iter().filter(|v| v.is_pruned()).count() as u64
}

/// [`max_similarity_compiled`] with threshold early-exit: once no suffix
/// extension can reach `threshold` (in log space), the scan abandons the
/// pair and reports [`BoundedSimilarity::Pruned`].
///
/// The bound: at position `i` with chain value `y` and automaton state
/// `u`, every later chain value is at most
///
/// ```text
/// max(max(y, 0) + best_step(u), 0) + (rem − 1) · max_step_plus
/// ```
///
/// where `rem` is the number of unconsumed symbols — the next position
/// contributes at most `best_step(u)` on top of either the current chain
/// or a restart, and each position after that at most `max_step_plus`
/// (clamped at zero because a chain can always restart). When that bound
/// cannot reach `threshold` (minus the `PRUNE_SLACK` guard of 1e-6) and no prior segment
/// reached it either, no future `Z` update can matter to a caller who only
/// asks "is the similarity ≥ threshold".
///
/// When the scan is *not* pruned the result is exact — identical to
/// [`max_similarity_compiled`] bit for bit, because the bound checks never
/// touch the DP state.
pub fn max_similarity_compiled_bounded(
    compiled: &CompiledPst,
    seq: &[Symbol],
    threshold: f64,
) -> BoundedSimilarity {
    let mut best = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    let mut y = f64::NEG_INFINITY;
    let mut y_start = 0usize;
    let mut state = CompiledPst::START;

    for (i, &sym) in seq.iter().enumerate() {
        if i % PRUNE_CHECK_INTERVAL == 0 && best.log_sim < threshold {
            let rem = (seq.len() - i) as f64;
            let bound = (y.max(0.0) + compiled.best_step(state)).max(0.0)
                + (rem - 1.0) * compiled.max_step_plus();
            if bound < threshold - PRUNE_SLACK {
                return BoundedSimilarity::Pruned;
            }
        }
        let (x, next) = compiled.step(state, sym);
        state = next;
        let extended = y + x;
        if extended >= x {
            y = extended;
        } else {
            y = x;
            y_start = i;
        }
        if y > best.log_sim {
            best = SegmentSimilarity {
                log_sim: y,
                start: y_start,
                end: i + 1,
            };
        }
    }
    BoundedSimilarity::Exact(best)
}

/// How many sequences the batched scan paths interleave against one
/// automaton. Eight lanes give the memory system eight independent table
/// loads per position (vs. one dependent chain for the single-sequence
/// scan) while the per-lane DP registers still fit in machine registers /
/// L1. Fixed — not thread-count dependent — so the engine's lane grouping
/// is part of the deterministic plan.
pub const BATCH_LANES: usize = 8;

/// Batched [`max_similarity_compiled`]: scans up to [`BATCH_LANES`] (or
/// any number of) sequences against one automaton, interleaved position by
/// position so the goto/ratio tables stay cache-hot across lanes.
///
/// **Bit-identity.** Each lane performs exactly the operation sequence of
/// the single-sequence scan — same f64 additions and comparisons in the
/// same per-lane order, same prune checks at the same positions — so
/// `out[lane]` is bit-identical to
/// [`max_similarity_compiled_bounded`]`(compiled, seqs[lane], t)` (or to
/// `Exact(`[`max_similarity_compiled`]`)` with `threshold = None`),
/// including *which* lanes prune. Only the cross-lane interleaving — which
/// no lane's arithmetic observes — differs.
///
/// A lane leaves the batch when its sequence is exhausted or its prune
/// bound trips; the scan ends when every lane is done. Empty sequences
/// yield the empty-segment `-∞` verdict, exactly like the single scans.
///
/// More than [`BATCH_LANES`] sequences are processed in chunks of
/// `BATCH_LANES`, grouped by length (see `length_grouped_order`) —
/// invisible per lane, since no lane's arithmetic ever observes another
/// lane; results come back in input order.
pub fn max_similarity_compiled_batch(
    compiled: &CompiledPst,
    seqs: &[&[Symbol]],
    threshold: Option<f64>,
) -> Vec<BoundedSimilarity> {
    let empty = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    let mut out = vec![BoundedSimilarity::Exact(empty); seqs.len()];
    for chunk in length_grouped_order(seqs).chunks(BATCH_LANES) {
        // Lanes the chunk scan never writes (empty sequences are born
        // retired) must keep the empty-segment verdict.
        let mut chunk_out = [BoundedSimilarity::Exact(empty); BATCH_LANES];
        let mut lanes: [&[Symbol]; BATCH_LANES] = [&[]; BATCH_LANES];
        for (slot, &idx) in chunk.iter().enumerate() {
            lanes[slot] = seqs[idx];
        }
        compiled_batch_lanes(
            compiled,
            &lanes[..chunk.len()],
            threshold,
            &mut chunk_out[..chunk.len()],
        );
        for (&idx, verdict) in chunk.iter().zip(&chunk_out) {
            out[idx] = *verdict;
        }
    }
    out
}

/// The lane-grouping order for a batched scan: sequence indices sorted by
/// descending length (ties by input order, so the grouping is
/// deterministic); callers chunk it into [`BATCH_LANES`]-sized groups of
/// *similar length*.
///
/// Lanes in a chunk advance in lockstep, so a chunk is only as fast as
/// its length spread allows — once the shortest lane retires, the
/// synchronized fast phase is over and stragglers finish on the
/// guarded path. Sorting makes chunks length-homogeneous. Legal because
/// lanes never interact: each lane's verdict is a pure function of
/// (automaton, sequence, threshold), so per-lane bit-identity survives
/// any grouping.
fn length_grouped_order(seqs: &[&[Symbol]]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..seqs.len()).collect();
    order.sort_by_key(|&idx| (usize::MAX - seqs[idx].len(), idx));
    order
}

/// One ≤[`BATCH_LANES`]-lane chunk of the batched compiled scan. The
/// per-lane DP registers live in fixed-size stack arrays indexed by a
/// constant-bound loop, so the inner loop carries no heap indirection and
/// no data-dependent bounds checks — the eight goto-table loads per
/// position are the only memory traffic that matters, and they are
/// mutually independent. The DP updates are written as value selects
/// (`if c { a } else { b }` expressions over scalars) rather than
/// statement branches: the chain-restart and best-so-far conditions flip
/// on data, so branch prediction can't learn them, but as selects they
/// cost a fixed couple of µops — same comparisons, same values, just no
/// pipeline flushes.
fn compiled_batch_lanes(
    compiled: &CompiledPst,
    seqs: &[&[Symbol]],
    threshold: Option<f64>,
    out: &mut [BoundedSimilarity],
) {
    debug_assert!(seqs.len() <= BATCH_LANES && out.len() == seqs.len());
    let n = seqs.len().min(BATCH_LANES);
    // Per-lane DP registers, structure-of-arrays; lanes past `seqs.len()`
    // (and empty sequences) are born retired. The best-so-far segment is
    // kept as three scalar arrays so its update is three selects, not a
    // conditional struct store.
    let mut state = [CompiledPst::START; BATCH_LANES];
    let mut y = [f64::NEG_INFINITY; BATCH_LANES];
    let mut y_start = [0usize; BATCH_LANES];
    let mut best_y = [f64::NEG_INFINITY; BATCH_LANES];
    let mut best_start = [0usize; BATCH_LANES];
    let mut best_end = [0usize; BATCH_LANES];
    let mut lanes: [&[Symbol]; BATCH_LANES] = [&[]; BATCH_LANES];
    let mut live = [false; BATCH_LANES];
    let mut remaining = 0usize;
    for (lane, seq) in seqs.iter().enumerate() {
        lanes[lane] = seq;
        live[lane] = !seq.is_empty();
        remaining += usize::from(live[lane]);
    }
    let max_step_plus = compiled.max_step_plus();
    let mut i = 0usize;

    // Synchronized fast phase: while every lane is live (so until the
    // shortest sequence ends, or a lane prunes), the inner row needs no
    // live/retirement tests — just `n` independent step+DP updates, which
    // is where the lane interleaving actually earns its ILP. Prune checks
    // run at the same `i % PRUNE_CHECK_INTERVAL == 0` positions as the
    // general loop, *before* that row's steps, so each lane still sees
    // the single-scan operation sequence exactly.
    if remaining == n && n > 0 {
        let min_len = lanes[..n].iter().map(|s| s.len()).min().expect("n > 0");
        while i < min_len {
            if let Some(t) = threshold {
                if i % PRUNE_CHECK_INTERVAL == 0 {
                    for lane in 0..n {
                        if best_y[lane] < t {
                            let rem = (lanes[lane].len() - i) as f64;
                            let bound = (y[lane].max(0.0) + compiled.best_step(state[lane]))
                                .max(0.0)
                                + (rem - 1.0) * max_step_plus;
                            if bound < t - PRUNE_SLACK {
                                out[lane] = BoundedSimilarity::Pruned;
                                live[lane] = false;
                                remaining -= 1;
                            }
                        }
                    }
                    if remaining < n {
                        break;
                    }
                }
            }
            for lane in 0..n {
                let (x, next) = compiled.step(state[lane], lanes[lane][i]);
                state[lane] = next;
                let extended = y[lane] + x;
                let keep = extended >= x;
                let y_new = if keep { extended } else { x };
                let start_new = if keep { y_start[lane] } else { i };
                y[lane] = y_new;
                y_start[lane] = start_new;
                let better = y_new > best_y[lane];
                best_y[lane] = if better { y_new } else { best_y[lane] };
                best_start[lane] = if better { start_new } else { best_start[lane] };
                best_end[lane] = if better { i + 1 } else { best_end[lane] };
            }
            i += 1;
        }
        // Lanes whose sequence ended exactly at `i` retire now, as the
        // single scan would have done right after their final step.
        for lane in 0..n {
            if live[lane] && lanes[lane].len() == i {
                out[lane] = BoundedSimilarity::Exact(SegmentSimilarity {
                    log_sim: best_y[lane],
                    start: best_start[lane],
                    end: best_end[lane],
                });
                live[lane] = false;
            }
        }
    }

    // Straggler lanes finish serially, each a plain single-sequence scan
    // continuing from position `i` with its carried DP registers — the
    // same operations at the same absolute positions (prune checks
    // included) as the single kernel, at the single kernel's speed. A
    // lockstep tail would pay `BATCH_LANES` liveness tests per useful
    // step once most lanes have retired.
    for lane in 0..n {
        if !live[lane] {
            continue;
        }
        let seq = lanes[lane];
        let mut verdict = None;
        for j in i..seq.len() {
            if let Some(t) = threshold {
                if j % PRUNE_CHECK_INTERVAL == 0 && best_y[lane] < t {
                    let rem = (seq.len() - j) as f64;
                    let bound = (y[lane].max(0.0) + compiled.best_step(state[lane])).max(0.0)
                        + (rem - 1.0) * max_step_plus;
                    if bound < t - PRUNE_SLACK {
                        verdict = Some(BoundedSimilarity::Pruned);
                        break;
                    }
                }
            }
            let (x, next) = compiled.step(state[lane], seq[j]);
            state[lane] = next;
            let extended = y[lane] + x;
            let keep = extended >= x;
            let y_new = if keep { extended } else { x };
            let start_new = if keep { y_start[lane] } else { j };
            y[lane] = y_new;
            y_start[lane] = start_new;
            let better = y_new > best_y[lane];
            best_y[lane] = if better { y_new } else { best_y[lane] };
            best_start[lane] = if better { start_new } else { best_start[lane] };
            best_end[lane] = if better { j + 1 } else { best_end[lane] };
        }
        out[lane] = verdict.unwrap_or(BoundedSimilarity::Exact(SegmentSimilarity {
            log_sim: best_y[lane],
            start: best_start[lane],
            end: best_end[lane],
        }));
    }
}

/// The quantized X/Y/Z scan: [`max_similarity_compiled`] with the f64
/// ratio table replaced by a [`QuantizedPst`]'s `i16` fixed-point table
/// and the chain accumulated in exact `i64` arithmetic.
///
/// The DP mirrors the exact kernel's decisions step for step —
/// [`QuantizedPst::QVOID`] entries reproduce the `-∞` chain-restart
/// semantics — and only the winning chain value is mapped to log space
/// (`best_q as f64 × scale`). Integer accumulation makes the result
/// **byte-stable**: a pure function of (automaton, sequence) with no
/// dependence on evaluation order or thread count, so quantized verdicts
/// satisfy the incremental cache's column invariant just like exact ones.
///
/// The score deviates from [`max_similarity_compiled`] by at most
/// [`QuantizedPst::error_bound`]`(seq.len())`; the reported maximizing
/// segment is the quantized DP's own argmax, which may differ from the
/// exact kernel's when two segments score within the bound of each other.
pub fn max_similarity_quantized(quantized: &QuantizedPst, seq: &[Symbol]) -> SegmentSimilarity {
    match quantized_scan(quantized, seq, None) {
        BoundedSimilarity::Exact(s) => s,
        BoundedSimilarity::Pruned => unreachable!("unbounded scans never prune"),
    }
}

/// [`max_similarity_quantized`] with threshold early-exit, mirroring
/// [`max_similarity_compiled_bounded`]'s bound in the integer domain:
///
/// ```text
/// bound_q = max(max(y_q, 0) + best_step_q(u), 0) + (rem − 1) · max_step_plus_q
/// ```
///
/// `bound_q` dominates every future chain value *exactly* (integer
/// arithmetic has no rounding), and `i64 → f64` conversion plus the
/// correctly-rounded scale multiply are monotone — so `bound_q · scale <
/// threshold` proves the quantized similarity stays below the threshold
/// with **no safety slack** (the compiled kernel's `1e-6` margin exists
/// only to cover f64 bound-vs-DP rounding divergence, which cannot happen
/// here). Early exit never lies *about the quantized kernel's own score*;
/// callers comparing against the exact kernel must widen the threshold by
/// [`QuantizedPst::error_bound`].
///
/// When not pruned the result is bit-identical to
/// [`max_similarity_quantized`].
pub fn max_similarity_quantized_bounded(
    quantized: &QuantizedPst,
    seq: &[Symbol],
    threshold: f64,
) -> BoundedSimilarity {
    quantized_scan(quantized, seq, Some(threshold))
}

fn quantized_scan(
    quantized: &QuantizedPst,
    seq: &[Symbol],
    threshold: Option<f64>,
) -> BoundedSimilarity {
    let mut best = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    // Integer chain value; `y_void` marks the f64 kernel's `y = -∞` state
    // (chain killed by a QVOID step or not yet started).
    let mut best_q = i64::MIN;
    let mut y: i64 = 0;
    let mut y_void = true;
    let mut y_start = 0usize;
    let mut state = QuantizedPst::START;

    for (i, &sym) in seq.iter().enumerate() {
        if let Some(t) = threshold {
            if i % PRUNE_CHECK_INTERVAL == 0 && best.log_sim < t {
                let rem = (seq.len() - i) as i64;
                let y_plus = if y_void { 0 } else { y.max(0) };
                let bound_q = (y_plus + quantized.best_step_q(state)).max(0)
                    + (rem - 1) * quantized.max_step_plus_q();
                if quantized.dequantize(bound_q) < t {
                    return BoundedSimilarity::Pruned;
                }
            }
        }
        let (qx, next) = quantized.step(state, sym);
        state = next;
        if qx == QuantizedPst::QVOID {
            // x = -∞: the chain through i is void. The f64 kernel keeps
            // `y_start` untouched here (extended = -∞ ≥ x holds), so we
            // do too.
            y_void = true;
        } else {
            let x = i64::from(qx);
            if y_void {
                y = x;
                y_start = i;
                y_void = false;
            } else {
                let extended = y + x;
                if extended >= x {
                    y = extended;
                } else {
                    y = x;
                    y_start = i;
                }
            }
            if y > best_q {
                best_q = y;
                best = SegmentSimilarity {
                    log_sim: quantized.dequantize(y),
                    start: y_start,
                    end: i + 1,
                };
            }
        }
    }
    BoundedSimilarity::Exact(best)
}

/// Batched [`max_similarity_quantized`] — the quantized counterpart of
/// [`max_similarity_compiled_batch`], and the layout the batching was
/// built for: each (state, symbol) entry costs 6 bytes (`u32` goto +
/// `i16` ratio) instead of 12, so twice the automaton stays resident
/// while the lanes stride it.
///
/// Per lane, bit-identical to [`max_similarity_quantized_bounded`] (or
/// `Exact(`[`max_similarity_quantized`]`)` with `threshold = None`) — the
/// integer DP makes that trivially exact, with no floating-point caveats.
pub fn max_similarity_quantized_batch(
    quantized: &QuantizedPst,
    seqs: &[&[Symbol]],
    threshold: Option<f64>,
) -> Vec<BoundedSimilarity> {
    let empty = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    let mut out = vec![BoundedSimilarity::Exact(empty); seqs.len()];
    for chunk in length_grouped_order(seqs).chunks(BATCH_LANES) {
        // Lanes the chunk scan never writes (empty sequences are born
        // retired) must keep the empty-segment verdict.
        let mut chunk_out = [BoundedSimilarity::Exact(empty); BATCH_LANES];
        let mut lanes: [&[Symbol]; BATCH_LANES] = [&[]; BATCH_LANES];
        for (slot, &idx) in chunk.iter().enumerate() {
            lanes[slot] = seqs[idx];
        }
        quantized_batch_lanes(
            quantized,
            &lanes[..chunk.len()],
            threshold,
            &mut chunk_out[..chunk.len()],
        );
        for (&idx, verdict) in chunk.iter().zip(&chunk_out) {
            out[idx] = *verdict;
        }
    }
    out
}

/// One ≤[`BATCH_LANES`]-lane chunk of the batched quantized scan — the
/// same fixed-stack-array structure as [`compiled_batch_lanes`], with the
/// integer DP of [`max_similarity_quantized`] per lane.
fn quantized_batch_lanes(
    quantized: &QuantizedPst,
    seqs: &[&[Symbol]],
    threshold: Option<f64>,
    out: &mut [BoundedSimilarity],
) {
    debug_assert!(seqs.len() <= BATCH_LANES && out.len() == seqs.len());
    let empty = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    let mut state = [QuantizedPst::START; BATCH_LANES];
    let mut best_q = [i64::MIN; BATCH_LANES];
    let mut y = [0i64; BATCH_LANES];
    let mut y_void = [true; BATCH_LANES];
    let mut y_start = [0usize; BATCH_LANES];
    let mut best = [empty; BATCH_LANES];
    let mut lanes: [&[Symbol]; BATCH_LANES] = [&[]; BATCH_LANES];
    let mut live = [false; BATCH_LANES];
    let mut remaining = 0usize;
    for (lane, seq) in seqs.iter().enumerate() {
        lanes[lane] = seq;
        live[lane] = !seq.is_empty();
        remaining += usize::from(live[lane]);
    }
    let max_step_plus_q = quantized.max_step_plus_q();
    let n = seqs.len().min(BATCH_LANES);
    let mut i = 0usize;

    // Synchronized fast phase — see [`compiled_batch_lanes`]: while every
    // lane is live the inner row needs no live/retirement tests, and the
    // per-lane operation sequence is exactly the single-scan one.
    if remaining == n && n > 0 {
        let min_len = lanes[..n].iter().map(|s| s.len()).min().expect("n > 0");
        while i < min_len {
            if let Some(t) = threshold {
                if i % PRUNE_CHECK_INTERVAL == 0 {
                    for lane in 0..n {
                        if best[lane].log_sim < t {
                            let rem = (lanes[lane].len() - i) as i64;
                            let y_plus = if y_void[lane] { 0 } else { y[lane].max(0) };
                            let bound_q = (y_plus + quantized.best_step_q(state[lane])).max(0)
                                + (rem - 1) * max_step_plus_q;
                            if quantized.dequantize(bound_q) < t {
                                out[lane] = BoundedSimilarity::Pruned;
                                live[lane] = false;
                                remaining -= 1;
                            }
                        }
                    }
                    if remaining < n {
                        break;
                    }
                }
            }
            for lane in 0..n {
                let (qx, next) = quantized.step(state[lane], lanes[lane][i]);
                state[lane] = next;
                if qx == QuantizedPst::QVOID {
                    y_void[lane] = true;
                } else {
                    let x = i64::from(qx);
                    if y_void[lane] {
                        y[lane] = x;
                        y_start[lane] = i;
                        y_void[lane] = false;
                    } else {
                        let extended = y[lane] + x;
                        if extended >= x {
                            y[lane] = extended;
                        } else {
                            y[lane] = x;
                            y_start[lane] = i;
                        }
                    }
                    if y[lane] > best_q[lane] {
                        best_q[lane] = y[lane];
                        best[lane] = SegmentSimilarity {
                            log_sim: quantized.dequantize(y[lane]),
                            start: y_start[lane],
                            end: i + 1,
                        };
                    }
                }
            }
            i += 1;
        }
        for lane in 0..n {
            if live[lane] && lanes[lane].len() == i {
                out[lane] = BoundedSimilarity::Exact(best[lane]);
                live[lane] = false;
            }
        }
    }

    // Straggler lanes finish serially — see [`compiled_batch_lanes`]: the
    // same integer DP at the same absolute positions as the single
    // quantized scan, without the lockstep tail's per-step liveness tax.
    for lane in 0..n {
        if !live[lane] {
            continue;
        }
        let seq = lanes[lane];
        let mut verdict = None;
        for j in i..seq.len() {
            if let Some(t) = threshold {
                if j % PRUNE_CHECK_INTERVAL == 0 && best[lane].log_sim < t {
                    let rem = (seq.len() - j) as i64;
                    let y_plus = if y_void[lane] { 0 } else { y[lane].max(0) };
                    let bound_q = (y_plus + quantized.best_step_q(state[lane])).max(0)
                        + (rem - 1) * max_step_plus_q;
                    if quantized.dequantize(bound_q) < t {
                        verdict = Some(BoundedSimilarity::Pruned);
                        break;
                    }
                }
            }
            let (qx, next) = quantized.step(state[lane], seq[j]);
            state[lane] = next;
            if qx == QuantizedPst::QVOID {
                y_void[lane] = true;
            } else {
                let x = i64::from(qx);
                if y_void[lane] {
                    y[lane] = x;
                    y_start[lane] = j;
                    y_void[lane] = false;
                } else {
                    let extended = y[lane] + x;
                    if extended >= x {
                        y[lane] = extended;
                    } else {
                        y[lane] = x;
                        y_start[lane] = j;
                    }
                }
                if y[lane] > best_q[lane] {
                    best_q[lane] = y[lane];
                    best[lane] = SegmentSimilarity {
                        log_sim: quantized.dequantize(y[lane]),
                        start: y_start[lane],
                        end: j + 1,
                    };
                }
            }
        }
        out[lane] = verdict.unwrap_or(BoundedSimilarity::Exact(best[lane]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A mock model backed by an explicit (context, next) → probability
    /// table, keyed on the full context handed to `predict`.
    struct TableModel {
        n: usize,
        table: HashMap<(Vec<u16>, u16), f64>,
    }

    impl TableModel {
        fn new(n: usize, entries: &[(&[u16], u16, f64)]) -> Self {
            let table = entries
                .iter()
                .map(|&(ctx, next, p)| ((ctx.to_vec(), next), p))
                .collect();
            Self { n, table }
        }
    }

    impl ConditionalModel for TableModel {
        fn alphabet_size(&self) -> usize {
            self.n
        }
        fn predict(&self, context: &[Symbol], next: Symbol) -> f64 {
            let key: Vec<u16> = context.iter().map(|s| s.0).collect();
            *self
                .table
                .get(&(key, next.0))
                .unwrap_or_else(|| panic!("no table entry for {context:?} -> {next:?}"))
        }
    }

    fn syms(v: &[u16]) -> Vec<Symbol> {
        v.iter().copied().map(Symbol).collect()
    }

    /// The paper's Table 1 worked example: sequence "bbaa" against the
    /// Figure 1 tree with p(a) = 0.6, p(b) = 0.4. The expected intermediate
    /// values and the final SIM = 2.10 come straight from the table.
    #[test]
    fn paper_table1_bbaa_example() {
        const A: u16 = 0;
        const B: u16 = 1;
        // P(b) = 0.55, P(b|b) = 0.418, P(a|bb) = 0.87, P(a|bba) = 0.406.
        let model = TableModel::new(
            2,
            &[
                (&[], B, 0.55),
                (&[B], B, 0.418),
                (&[B, B], A, 0.87),
                (&[B, B, A], A, 0.406),
            ],
        );
        let bg = BackgroundModel::from_probs(vec![0.6, 0.4]);
        let seq = syms(&[B, B, A, A]);
        let result = max_similarity(&model, &bg, &seq);

        // Exact arithmetic gives 1.375 × 1.045 × 1.45 = 2.0834; the paper
        // displays 2.10 because its table shows intermediates rounded to
        // three significant digits and chains them.
        assert!(
            (result.sim() - 2.0834).abs() < 1e-3,
            "SIM = {}",
            result.sim()
        );
        assert!(
            (result.sim() - 2.10).abs() < 0.02,
            "matches the paper's display"
        );
        // The maximizing segment is "bba" = positions [0, 3).
        assert_eq!((result.start, result.end), (0, 3));
    }

    /// Re-derives the full X/Y/Z rows of Table 1.
    #[test]
    fn paper_table1_intermediate_rows() {
        const A: u16 = 0;
        const B: u16 = 1;
        let probs = [0.55, 0.418, 0.87, 0.406];
        let bg = [0.4, 0.4, 0.6, 0.6]; // p(b), p(b), p(a), p(a)
        let x: Vec<f64> = probs.iter().zip(bg).map(|(p, q)| p / q).collect();
        // The paper's table shows intermediates rounded to 3 significant
        // digits (and chains the rounded values), so compare within 0.02.
        let expected_x = [1.38, 1.05, 1.45, 0.677];
        for (got, want) in x.iter().zip(expected_x) {
            assert!((got - want).abs() < 0.02, "X: got {got}, want {want}");
        }
        let mut y = vec![x[0]];
        let mut z = vec![x[0]];
        for i in 1..4 {
            y.push((y[i - 1] * x[i]).max(x[i]));
            z.push(z[i - 1].max(y[i]));
        }
        let expected_y = [1.38, 1.45, 2.10, 1.42];
        let expected_z = [1.38, 1.45, 2.10, 2.10];
        for i in 0..4 {
            assert!((y[i] - expected_y[i]).abs() < 0.02, "Y[{i}] = {}", y[i]);
            assert!((z[i] - expected_z[i]).abs() < 0.02, "Z[{i}] = {}", z[i]);
        }
        // Consistency between the hand-rolled recurrence and the library.
        let model = TableModel::new(
            2,
            &[
                (&[], B, 0.55),
                (&[B], B, 0.418),
                (&[B, B], A, 0.87),
                (&[B, B, A], A, 0.406),
            ],
        );
        let bgm = BackgroundModel::from_probs(vec![0.6, 0.4]);
        let result = max_similarity(&model, &bgm, &syms(&[B, B, A, A]));
        assert!((result.sim() - z[3]).abs() < 1e-9);
    }

    /// Brute-force reference: SIM over all O(l²) segments, where each
    /// segment is scored with full-prefix conditioning exactly as the DP
    /// does.
    fn brute_force<M: ConditionalModel>(model: &M, bg: &BackgroundModel, seq: &[Symbol]) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for start in 0..seq.len() {
            let mut acc = 0.0;
            for i in start..seq.len() {
                acc += model.predict(&seq[..i], seq[i]).ln() - bg.prob(seq[i]).ln();
                best = best.max(acc);
            }
        }
        best
    }

    /// A deterministic pseudo-model for cross-checking the DP against the
    /// brute force on arbitrary sequences.
    struct HashModel;
    impl ConditionalModel for HashModel {
        fn alphabet_size(&self) -> usize {
            3
        }
        fn predict(&self, context: &[Symbol], next: Symbol) -> f64 {
            let h = context
                .iter()
                .fold(17u64, |a, s| a.wrapping_mul(31).wrapping_add(s.0 as u64))
                .wrapping_mul(131)
                .wrapping_add(next.0 as u64);
            0.05 + 0.9 * ((h % 97) as f64 / 97.0)
        }
    }

    #[test]
    fn dp_matches_brute_force() {
        let bg = BackgroundModel::from_probs(vec![0.5, 0.3, 0.2]);
        let seqs: Vec<Vec<u16>> = vec![
            vec![0],
            vec![0, 1],
            vec![2, 2, 2, 2],
            vec![0, 1, 2, 0, 1, 2, 1, 0],
            vec![1, 0, 0, 2, 1, 1, 1, 0, 2, 2, 0, 1],
        ];
        for raw in seqs {
            let seq = syms(&raw);
            let dp = max_similarity(&HashModel, &bg, &seq);
            let bf = brute_force(&HashModel, &bg, &seq);
            assert!(
                (dp.log_sim - bf).abs() < 1e-9,
                "sequence {raw:?}: dp {} vs brute force {bf}",
                dp.log_sim
            );
            // The reported segment really achieves the reported score.
            let mut acc = 0.0;
            for i in dp.start..dp.end {
                acc += HashModel.predict(&seq[..i], seq[i]).ln() - bg.prob(seq[i]).ln();
            }
            assert!((acc - dp.log_sim).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_sequence_scores_negative_infinity() {
        let bg = BackgroundModel::uniform(2);
        let r = max_similarity(&HashModel, &bg, &[]);
        assert_eq!(r.log_sim, f64::NEG_INFINITY);
        assert_eq!(r.segment_len(), 0);
    }

    #[test]
    fn uniform_model_over_uniform_background_scores_one() {
        struct Uniform;
        impl ConditionalModel for Uniform {
            fn alphabet_size(&self) -> usize {
                4
            }
            fn predict(&self, _c: &[Symbol], _n: Symbol) -> f64 {
                0.25
            }
        }
        let bg = BackgroundModel::uniform(4);
        let seq = syms(&[0, 1, 2, 3, 0, 1]);
        let r = max_similarity(&Uniform, &bg, &seq);
        assert!(r.log_sim.abs() < 1e-12, "ln SIM = 0 means SIM = 1");
    }

    #[test]
    fn zero_probability_voids_chains_through_that_position() {
        // Position 1 is impossible under the model; the best segment must
        // avoid it.
        struct Spiky;
        impl ConditionalModel for Spiky {
            fn alphabet_size(&self) -> usize {
                2
            }
            fn predict(&self, context: &[Symbol], _n: Symbol) -> f64 {
                if context.len() == 1 {
                    0.0
                } else {
                    0.9
                }
            }
        }
        let bg = BackgroundModel::uniform(2);
        let seq = syms(&[0, 0, 0, 0]);
        let r = max_similarity(&Spiky, &bg, &seq);
        assert!(
            r.start >= 2 || r.end <= 1,
            "segment {:?} crosses the void",
            (r.start, r.end)
        );
        assert!(r.log_sim.is_finite());
    }

    #[test]
    fn pst_scan_version_matches_generic_version() {
        use cluseq_pst::{Pst, PstParams};
        let mut pst = Pst::new(
            3,
            PstParams::default().with_significance(2).with_max_depth(4),
        );
        let train = syms(&[0, 1, 2, 0, 1, 2, 0, 0, 1, 1, 2, 2, 0, 1, 2]);
        pst.add_segment(&train);
        let bg = BackgroundModel::from_probs(vec![0.5, 0.3, 0.2]);
        for probe in [
            syms(&[0, 1, 2, 0, 1]),
            syms(&[2, 2, 2]),
            syms(&[1]),
            syms(&[]),
            syms(&[0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 2, 0, 1, 2]),
        ] {
            let generic = max_similarity(&pst, &bg, &probe);
            let scan = max_similarity_pst(&pst, &bg, &probe);
            assert_eq!(generic, scan, "probe {probe:?}");
        }
    }

    #[test]
    fn pst_scan_version_matches_after_pruning() {
        use cluseq_pst::{Pst, PstParams};
        let mut pst = Pst::new(
            3,
            PstParams::default().with_significance(1).with_max_depth(5),
        );
        let train: Vec<Symbol> = (0..200u16).map(|i| Symbol(i * 7 % 3)).collect();
        pst.add_segment(&train);
        pst.prune_to(pst.bytes() / 2);
        let bg = BackgroundModel::uniform(3);
        let probe = syms(&[0, 1, 2, 1, 0, 2, 2, 1, 0, 0]);
        assert_eq!(
            max_similarity(&pst, &bg, &probe),
            max_similarity_pst(&pst, &bg, &probe)
        );
    }

    #[test]
    fn compiled_kernel_is_bit_identical_to_interpreted() {
        use cluseq_pst::{Pst, PstParams};
        let mut pst = Pst::new(
            3,
            PstParams::default().with_significance(2).with_max_depth(4),
        );
        let train = syms(&[0, 1, 2, 0, 1, 2, 0, 0, 1, 1, 2, 2, 0, 1, 2, 0, 1, 2]);
        pst.add_segment(&train);
        let bg = BackgroundModel::from_probs(vec![0.5, 0.3, 0.2]);
        let compiled = cluseq_pst::CompiledPst::compile(&pst, &bg);
        for probe in [
            syms(&[0, 1, 2, 0, 1]),
            syms(&[2, 2, 2]),
            syms(&[1]),
            syms(&[]),
            syms(&[0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 2, 0, 1, 2]),
        ] {
            let interpreted = max_similarity_pst(&pst, &bg, &probe);
            let fast = max_similarity_compiled(&compiled, &probe);
            assert_eq!(
                interpreted.log_sim.to_bits(),
                fast.log_sim.to_bits(),
                "probe {probe:?}"
            );
            assert_eq!((interpreted.start, interpreted.end), (fast.start, fast.end));
        }
    }

    #[test]
    fn bounded_scan_is_exact_when_not_pruned() {
        use cluseq_pst::{CompiledPst, Pst, PstParams};
        let mut pst = Pst::new(
            2,
            PstParams::default().with_significance(2).with_max_depth(3),
        );
        pst.add_segment(&syms(&[0, 1, 0, 1, 0, 1, 0, 1, 0, 1]));
        let bg = BackgroundModel::uniform(2);
        let compiled = CompiledPst::compile(&pst, &bg);
        let probe = syms(&[0, 1, 0, 1, 0, 1]);
        let exact = max_similarity_compiled(&compiled, &probe);
        // A threshold the probe clearly beats: never pruned, identical.
        match max_similarity_compiled_bounded(&compiled, &probe, exact.log_sim - 1.0) {
            BoundedSimilarity::Exact(s) => {
                assert_eq!(s.log_sim.to_bits(), exact.log_sim.to_bits());
                assert_eq!((s.start, s.end), (exact.start, exact.end));
            }
            BoundedSimilarity::Pruned => panic!("a reachable threshold must not prune"),
        }
        assert_eq!(
            max_similarity_compiled_bounded(&compiled, &probe, exact.log_sim - 1.0)
                .exact()
                .map(|s| s.log_sim),
            Some(exact.log_sim)
        );
    }

    #[test]
    fn pruned_pairs_are_truly_below_threshold() {
        use cluseq_pst::{CompiledPst, Pst, PstParams};
        let mut pst = Pst::new(
            2,
            PstParams::default().with_significance(2).with_max_depth(3),
        );
        pst.add_segment(&syms(&[0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1]));
        let bg = BackgroundModel::uniform(2);
        let compiled = CompiledPst::compile(&pst, &bg);
        // A long anti-correlated probe: every threshold that prunes it must
        // sit strictly above its exact similarity.
        let probe: Vec<Symbol> = (0..200).map(|i| Symbol((i / 7 % 2) as u16)).collect();
        let exact = max_similarity_compiled(&compiled, &probe);
        let huge = exact.log_sim + 1_000.0;
        let verdict = max_similarity_compiled_bounded(&compiled, &probe, huge);
        assert!(verdict.is_pruned(), "an unreachable threshold must prune");
        // And pruning never lies: whenever *any* threshold prunes, the
        // exact score is below it.
        for k in 0..60 {
            let t = exact.log_sim - 3.0 + k as f64 * 0.2;
            if max_similarity_compiled_bounded(&compiled, &probe, t).is_pruned() {
                assert!(
                    exact.log_sim < t,
                    "pruned at threshold {t} but exact is {}",
                    exact.log_sim
                );
            }
        }
    }

    fn batch_fixture() -> (CompiledPst, Vec<Vec<Symbol>>) {
        use cluseq_pst::{Pst, PstParams};
        let mut pst = Pst::new(
            3,
            PstParams::default().with_significance(2).with_max_depth(4),
        );
        pst.add_segment(&syms(&[
            0, 1, 2, 0, 1, 2, 0, 0, 1, 1, 2, 2, 0, 1, 2, 0, 1, 2,
        ]));
        let bg = BackgroundModel::from_probs(vec![0.5, 0.3, 0.2]);
        let compiled = CompiledPst::compile(&pst, &bg);
        let probes = vec![
            syms(&[0, 1, 2, 0, 1]),
            syms(&[2, 2, 2]),
            syms(&[]),
            (0..150u16).map(|i| Symbol(i * 5 % 3)).collect(),
            syms(&[1]),
            (0..90u16).map(|i| Symbol(i % 3)).collect(),
        ];
        (compiled, probes)
    }

    #[test]
    fn batched_scan_is_bit_identical_to_single_scans() {
        let (compiled, probes) = batch_fixture();
        let slices: Vec<&[Symbol]> = probes.iter().map(Vec::as_slice).collect();
        let batch = max_similarity_compiled_batch(&compiled, &slices, None);
        for (lane, probe) in probes.iter().enumerate() {
            let single = max_similarity_compiled(&compiled, probe);
            let got = batch[lane].exact().expect("unbounded batch is exact");
            assert_eq!(
                got.log_sim.to_bits(),
                single.log_sim.to_bits(),
                "lane {lane}"
            );
            assert_eq!((got.start, got.end), (single.start, single.end));
        }
    }

    #[test]
    fn batched_bounded_scan_matches_single_bounded_scans() {
        let (compiled, probes) = batch_fixture();
        let slices: Vec<&[Symbol]> = probes.iter().map(Vec::as_slice).collect();
        for t in [-5.0, 0.0, 2.0, 50.0, 1e6] {
            let batch = max_similarity_compiled_batch(&compiled, &slices, Some(t));
            for (lane, probe) in probes.iter().enumerate() {
                let single = max_similarity_compiled_bounded(&compiled, probe, t);
                assert_eq!(batch[lane], single, "lane {lane} threshold {t}");
            }
        }
    }

    #[test]
    fn quantized_scan_stays_within_the_documented_bound() {
        let (compiled, probes) = batch_fixture();
        let quantized = compiled.quantize();
        for probe in &probes {
            let exact = max_similarity_compiled(&compiled, probe);
            let quant = max_similarity_quantized(&quantized, probe);
            if exact.log_sim.is_finite() {
                let err = (quant.log_sim - exact.log_sim).abs();
                let bound = quantized.error_bound(probe.len());
                assert!(err <= bound, "err {err} vs bound {bound}");
            } else {
                assert_eq!(quant.log_sim, f64::NEG_INFINITY);
            }
        }
    }

    #[test]
    fn quantized_early_exit_never_lies_about_its_own_score() {
        let (compiled, probes) = batch_fixture();
        let quantized = compiled.quantize();
        for probe in &probes {
            let exact = max_similarity_quantized(&quantized, probe);
            for k in 0..40 {
                let t = exact.log_sim.max(-10.0) - 2.0 + 0.3 * k as f64;
                match max_similarity_quantized_bounded(&quantized, probe, t) {
                    BoundedSimilarity::Pruned => {
                        assert!(
                            exact.log_sim < t,
                            "pruned at {t} but scores {}",
                            exact.log_sim
                        )
                    }
                    BoundedSimilarity::Exact(s) => {
                        assert_eq!(s.log_sim.to_bits(), exact.log_sim.to_bits());
                        assert_eq!((s.start, s.end), (exact.start, exact.end));
                    }
                }
            }
        }
    }

    #[test]
    fn quantized_batch_is_bit_identical_to_quantized_single_scans() {
        let (compiled, probes) = batch_fixture();
        let quantized = compiled.quantize();
        let slices: Vec<&[Symbol]> = probes.iter().map(Vec::as_slice).collect();
        let batch = max_similarity_quantized_batch(&quantized, &slices, None);
        for (lane, probe) in probes.iter().enumerate() {
            let single = max_similarity_quantized(&quantized, probe);
            let got = batch[lane].exact().expect("unbounded batch is exact");
            assert_eq!(
                got.log_sim.to_bits(),
                single.log_sim.to_bits(),
                "lane {lane}"
            );
        }
        for t in [-1.0, 1.0, 30.0] {
            let batch = max_similarity_quantized_batch(&quantized, &slices, Some(t));
            for (lane, probe) in probes.iter().enumerate() {
                let single = max_similarity_quantized_bounded(&quantized, probe, t);
                assert_eq!(batch[lane], single, "lane {lane} threshold {t}");
            }
        }
    }

    #[test]
    fn quantized_void_chains_match_the_exact_kernel() {
        // Unsmoothed alternating tree: many contexts have raw probability
        // 0 for the off-pattern symbol, i.e. -∞ ratio entries.
        use cluseq_pst::{Pst, PstParams};
        let mut pst = Pst::new(
            2,
            PstParams::default()
                .with_significance(1)
                .with_max_depth(3)
                .without_smoothing(),
        );
        pst.add_segment(&syms(&[0, 1, 0, 1, 0, 1, 0, 1, 0, 1]));
        let bg = BackgroundModel::uniform(2);
        let compiled = CompiledPst::compile(&pst, &bg);
        let quantized = compiled.quantize();
        for probe in [
            syms(&[0, 1, 0, 1]),
            syms(&[0, 0, 1, 1, 0, 1]),
            syms(&[1, 1, 1, 1]),
        ] {
            let exact = max_similarity_compiled(&compiled, &probe);
            let quant = max_similarity_quantized(&quantized, &probe);
            assert_eq!(
                exact.log_sim.is_finite(),
                quant.log_sim.is_finite(),
                "probe {probe:?}"
            );
            if exact.log_sim.is_finite() {
                assert!(
                    (quant.log_sim - exact.log_sim).abs() <= quantized.error_bound(probe.len())
                );
            }
        }
    }

    #[test]
    fn segment_sim_exponentiates() {
        let s = SegmentSimilarity {
            log_sim: 0.0,
            start: 1,
            end: 4,
        };
        assert_eq!(s.sim(), 1.0);
        assert_eq!(s.segment_len(), 3);
    }
}
