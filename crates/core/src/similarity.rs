//! The CLUSEQ similarity measure and its dynamic program (§2, §4.3).
//!
//! `SIM_S(σ) = max over segments s_j…s_i of σ of P_S(segment) / Pʳ(segment)`
//! where `P_S` predicts under the cluster model and `Pʳ` under the
//! memoryless background. The paper computes it in one scan with the
//! recurrences
//!
//! ```text
//! Xᵢ = P_S(sᵢ | s₁…sᵢ₋₁) / p(sᵢ)
//! Yᵢ = max(Yᵢ₋₁ · Xᵢ, Xᵢ)        (best segment ending at i)
//! Zᵢ = max(Zᵢ₋₁, Yᵢ)             (best segment ending at or before i)
//! ```
//!
//! We work in **log space**: the paper's sequences run to thousands of
//! symbols, and a product of per-symbol ratios around 2 overflows `f64`
//! within a few hundred steps. All scores in this crate are natural
//! logarithms of the paper's similarity values ([`LogSim`]); `SIM ≥ t`
//! becomes `log SIM ≥ ln t`.

use cluseq_pst::{CompiledPst, ConditionalModel, Pst};
use cluseq_seq::{BackgroundModel, Symbol};

/// A similarity score in natural-log space (`ln SIM`).
///
/// `0.0` corresponds to the paper's `SIM = 1` — the boundary where a
/// sequence is no better explained by the cluster than by background noise.
pub type LogSim = f64;

/// The outcome of a similarity evaluation: the best score and the
/// maximizing segment `[start, end)` of the examined sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentSimilarity {
    /// `ln SIM_S(σ)`.
    pub log_sim: LogSim,
    /// Start (inclusive) of the maximizing segment.
    pub start: usize,
    /// End (exclusive) of the maximizing segment.
    pub end: usize,
}

impl SegmentSimilarity {
    /// The similarity in the paper's natural units (`exp` of the log).
    pub fn sim(&self) -> f64 {
        self.log_sim.exp()
    }

    /// Length of the maximizing segment.
    pub fn segment_len(&self) -> usize {
        self.end - self.start
    }
}

/// Computes `SIM_S(σ)` and its maximizing segment via the X/Y/Z dynamic
/// program, in a single scan of `seq`.
///
/// Per the paper, `Xᵢ` conditions on the *full prefix* `s₁…sᵢ₋₁` (the
/// model's longest-significant-suffix lookup truncates it internally);
/// this is what makes the single-scan recurrence exact for the measure the
/// paper evaluates.
///
/// An empty sequence has no non-empty segment: the result carries
/// `log_sim = -∞` and the empty segment `[0, 0)`.
///
/// ```
/// use cluseq_core::max_similarity;
/// use cluseq_pst::{Pst, PstParams};
/// use cluseq_seq::{Alphabet, BackgroundModel, Sequence};
///
/// let alphabet = Alphabet::from_chars("ab".chars());
/// let train = Sequence::parse_str(&alphabet, "abababababab").unwrap();
/// let pst = Pst::from_sequence(2, PstParams::default().with_significance(2), &train);
/// let bg = BackgroundModel::uniform(2);
///
/// // A probe matching the learned alternation scores far above 1 (> 0 in
/// // log space); its maximizing segment covers the whole probe.
/// let probe = Sequence::parse_str(&alphabet, "ababab").unwrap();
/// let sim = max_similarity(&pst, &bg, probe.symbols());
/// assert!(sim.log_sim > 1.0);
/// assert_eq!((sim.start, sim.end), (0, probe.len()));
/// ```
pub fn max_similarity<M: ConditionalModel>(
    model: &M,
    background: &BackgroundModel,
    seq: &[Symbol],
) -> SegmentSimilarity {
    let mut best = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    // Y-state: best chain ending at the current position, and its start.
    let mut y = f64::NEG_INFINITY;
    let mut y_start = 0usize;

    for i in 0..seq.len() {
        let p_model = model.predict(&seq[..i], seq[i]);
        debug_assert!(
            background.prob(seq[i]) > 0.0,
            "background probabilities must be positive"
        );
        // ln Xᵢ; a raw model probability of 0 (no smoothing) gives -∞,
        // which correctly voids any chain through position i.
        let x = p_model.ln() - background.ln_prob(seq[i]);

        // Yᵢ = max(Yᵢ₋₁·Xᵢ, Xᵢ) — extend the chain or restart at i.
        let extended = y + x;
        if extended >= x {
            y = extended;
        } else {
            y = x;
            y_start = i;
        }

        // Zᵢ = max(Zᵢ₋₁, Yᵢ).
        if y > best.log_sim {
            best = SegmentSimilarity {
                log_sim: y,
                start: y_start,
                end: i + 1,
            };
        }
    }
    best
}

/// [`max_similarity`] specialized to a [`Pst`] via its incremental
/// [scanner](cluseq_pst::ContextScanner) — the paper's auxiliary-link O(l)
/// variant. Produces bit-identical results to the generic version (the
/// scanner is exact, falling back to per-position walks after pruning);
/// only the per-position prediction cost changes.
///
/// This is the path the clustering driver uses: the similarity scan is the
/// dominant cost of CLUSEQ (every sequence × every cluster × every
/// iteration).
pub fn max_similarity_pst(
    pst: &Pst,
    background: &BackgroundModel,
    seq: &[Symbol],
) -> SegmentSimilarity {
    let mut scratch = Vec::new();
    max_similarity_pst_with_scratch(pst, background, seq, &mut scratch)
}

/// [`max_similarity_pst`] with a caller-supplied scanner scratch buffer.
///
/// The interpreted scanner needs a fallback context buffer after PST
/// pruning breaks the right-link structure; allocating it per (sequence,
/// cluster) pair makes the allocator a hot-loop cost — worst when the
/// incremental cache skips most pairs and the remaining fresh evaluations
/// are interleaved with allocator-free cache hits. Threading one buffer
/// through a whole scan keeps reuse paths allocation-free. Results are
/// bit-identical to [`max_similarity_pst`].
pub fn max_similarity_pst_with_scratch(
    pst: &Pst,
    background: &BackgroundModel,
    seq: &[Symbol],
    scratch: &mut Vec<Symbol>,
) -> SegmentSimilarity {
    let mut best = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    let mut y = f64::NEG_INFINITY;
    let mut y_start = 0usize;
    let mut scanner = pst.scanner_with_scratch(std::mem::take(scratch));

    for (i, &sym) in seq.iter().enumerate() {
        let p_model = scanner.predict_and_advance(sym);
        let x = p_model.ln() - background.ln_prob(sym);
        let extended = y + x;
        if extended >= x {
            y = extended;
        } else {
            y = x;
            y_start = i;
        }
        if y > best.log_sim {
            best = SegmentSimilarity {
                log_sim: y,
                start: y_start,
                end: i + 1,
            };
        }
    }
    *scratch = scanner.into_scratch();
    best
}

/// How often [`max_similarity_compiled_bounded`] re-evaluates its prune
/// bound, in symbols. Checking every position would spend more on bound
/// arithmetic than it saves; every 32 symbols the overhead is noise while
/// a hopeless pair is still abandoned almost immediately.
const PRUNE_CHECK_INTERVAL: usize = 32;

/// Safety margin for the early-exit decision. The upper bound is computed
/// with a different (shorter) chain of f64 operations than the DP itself,
/// so the two can disagree by accumulated rounding — at most a few ulps
/// per position, i.e. ≲1e-7 even for million-symbol sequences at the
/// paper's score magnitudes. Requiring the bound to clear the threshold by
/// this much before pruning makes rounding divergence irrelevant while
/// giving up no meaningful pruning power.
const PRUNE_SLACK: f64 = 1e-6;

/// [`max_similarity`] over a [`CompiledPst`]: the same X/Y/Z dynamic
/// program with the per-symbol model interpretation replaced by two array
/// loads (see [`cluseq_pst::compile`]).
///
/// Bit-identical to [`max_similarity_pst`] on the tree the automaton was
/// compiled from: the precomputed ratio table holds the same f64 values
/// the interpreted path computes per symbol, and the DP accumulates them
/// in the same order.
pub fn max_similarity_compiled(compiled: &CompiledPst, seq: &[Symbol]) -> SegmentSimilarity {
    let mut best = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    let mut y = f64::NEG_INFINITY;
    let mut y_start = 0usize;
    let mut state = CompiledPst::START;

    for (i, &sym) in seq.iter().enumerate() {
        let (x, next) = compiled.step(state, sym);
        state = next;
        let extended = y + x;
        if extended >= x {
            y = extended;
        } else {
            y = x;
            y_start = i;
        }
        if y > best.log_sim {
            best = SegmentSimilarity {
                log_sim: y,
                start: y_start,
                end: i + 1,
            };
        }
    }
    best
}

/// The outcome of a threshold-bounded similarity evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundedSimilarity {
    /// The scan ran to completion; the similarity is exact and
    /// bit-identical to the unbounded kernels.
    Exact(SegmentSimilarity),
    /// The scan proved mid-sequence that no segment can reach the
    /// threshold and exited early. The (unknown) exact similarity is
    /// strictly below the threshold the caller passed.
    Pruned,
}

impl BoundedSimilarity {
    /// The exact result, if the scan was not pruned.
    pub fn exact(self) -> Option<SegmentSimilarity> {
        match self {
            Self::Exact(s) => Some(s),
            Self::Pruned => None,
        }
    }

    /// Whether the scan early-exited.
    pub fn is_pruned(self) -> bool {
        matches!(self, Self::Pruned)
    }
}

/// How many entries of a scored row were pruned — the per-row kernel
/// early-exit count the tracing layer records at the worker that produced
/// the row.
pub fn prune_count(row: &[BoundedSimilarity]) -> u64 {
    row.iter().filter(|v| v.is_pruned()).count() as u64
}

/// [`max_similarity_compiled`] with threshold early-exit: once no suffix
/// extension can reach `threshold` (in log space), the scan abandons the
/// pair and reports [`BoundedSimilarity::Pruned`].
///
/// The bound: at position `i` with chain value `y` and automaton state
/// `u`, every later chain value is at most
///
/// ```text
/// max(max(y, 0) + best_step(u), 0) + (rem − 1) · max_step_plus
/// ```
///
/// where `rem` is the number of unconsumed symbols — the next position
/// contributes at most `best_step(u)` on top of either the current chain
/// or a restart, and each position after that at most `max_step_plus`
/// (clamped at zero because a chain can always restart). When that bound
/// cannot reach `threshold` (minus the `PRUNE_SLACK` guard of 1e-6) and no prior segment
/// reached it either, no future `Z` update can matter to a caller who only
/// asks "is the similarity ≥ threshold".
///
/// When the scan is *not* pruned the result is exact — identical to
/// [`max_similarity_compiled`] bit for bit, because the bound checks never
/// touch the DP state.
pub fn max_similarity_compiled_bounded(
    compiled: &CompiledPst,
    seq: &[Symbol],
    threshold: f64,
) -> BoundedSimilarity {
    let mut best = SegmentSimilarity {
        log_sim: f64::NEG_INFINITY,
        start: 0,
        end: 0,
    };
    let mut y = f64::NEG_INFINITY;
    let mut y_start = 0usize;
    let mut state = CompiledPst::START;

    for (i, &sym) in seq.iter().enumerate() {
        if i % PRUNE_CHECK_INTERVAL == 0 && best.log_sim < threshold {
            let rem = (seq.len() - i) as f64;
            let bound = (y.max(0.0) + compiled.best_step(state)).max(0.0)
                + (rem - 1.0) * compiled.max_step_plus();
            if bound < threshold - PRUNE_SLACK {
                return BoundedSimilarity::Pruned;
            }
        }
        let (x, next) = compiled.step(state, sym);
        state = next;
        let extended = y + x;
        if extended >= x {
            y = extended;
        } else {
            y = x;
            y_start = i;
        }
        if y > best.log_sim {
            best = SegmentSimilarity {
                log_sim: y,
                start: y_start,
                end: i + 1,
            };
        }
    }
    BoundedSimilarity::Exact(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A mock model backed by an explicit (context, next) → probability
    /// table, keyed on the full context handed to `predict`.
    struct TableModel {
        n: usize,
        table: HashMap<(Vec<u16>, u16), f64>,
    }

    impl TableModel {
        fn new(n: usize, entries: &[(&[u16], u16, f64)]) -> Self {
            let table = entries
                .iter()
                .map(|&(ctx, next, p)| ((ctx.to_vec(), next), p))
                .collect();
            Self { n, table }
        }
    }

    impl ConditionalModel for TableModel {
        fn alphabet_size(&self) -> usize {
            self.n
        }
        fn predict(&self, context: &[Symbol], next: Symbol) -> f64 {
            let key: Vec<u16> = context.iter().map(|s| s.0).collect();
            *self
                .table
                .get(&(key, next.0))
                .unwrap_or_else(|| panic!("no table entry for {context:?} -> {next:?}"))
        }
    }

    fn syms(v: &[u16]) -> Vec<Symbol> {
        v.iter().copied().map(Symbol).collect()
    }

    /// The paper's Table 1 worked example: sequence "bbaa" against the
    /// Figure 1 tree with p(a) = 0.6, p(b) = 0.4. The expected intermediate
    /// values and the final SIM = 2.10 come straight from the table.
    #[test]
    fn paper_table1_bbaa_example() {
        const A: u16 = 0;
        const B: u16 = 1;
        // P(b) = 0.55, P(b|b) = 0.418, P(a|bb) = 0.87, P(a|bba) = 0.406.
        let model = TableModel::new(
            2,
            &[
                (&[], B, 0.55),
                (&[B], B, 0.418),
                (&[B, B], A, 0.87),
                (&[B, B, A], A, 0.406),
            ],
        );
        let bg = BackgroundModel::from_probs(vec![0.6, 0.4]);
        let seq = syms(&[B, B, A, A]);
        let result = max_similarity(&model, &bg, &seq);

        // Exact arithmetic gives 1.375 × 1.045 × 1.45 = 2.0834; the paper
        // displays 2.10 because its table shows intermediates rounded to
        // three significant digits and chains them.
        assert!(
            (result.sim() - 2.0834).abs() < 1e-3,
            "SIM = {}",
            result.sim()
        );
        assert!(
            (result.sim() - 2.10).abs() < 0.02,
            "matches the paper's display"
        );
        // The maximizing segment is "bba" = positions [0, 3).
        assert_eq!((result.start, result.end), (0, 3));
    }

    /// Re-derives the full X/Y/Z rows of Table 1.
    #[test]
    fn paper_table1_intermediate_rows() {
        const A: u16 = 0;
        const B: u16 = 1;
        let probs = [0.55, 0.418, 0.87, 0.406];
        let bg = [0.4, 0.4, 0.6, 0.6]; // p(b), p(b), p(a), p(a)
        let x: Vec<f64> = probs.iter().zip(bg).map(|(p, q)| p / q).collect();
        // The paper's table shows intermediates rounded to 3 significant
        // digits (and chains the rounded values), so compare within 0.02.
        let expected_x = [1.38, 1.05, 1.45, 0.677];
        for (got, want) in x.iter().zip(expected_x) {
            assert!((got - want).abs() < 0.02, "X: got {got}, want {want}");
        }
        let mut y = vec![x[0]];
        let mut z = vec![x[0]];
        for i in 1..4 {
            y.push((y[i - 1] * x[i]).max(x[i]));
            z.push(z[i - 1].max(y[i]));
        }
        let expected_y = [1.38, 1.45, 2.10, 1.42];
        let expected_z = [1.38, 1.45, 2.10, 2.10];
        for i in 0..4 {
            assert!((y[i] - expected_y[i]).abs() < 0.02, "Y[{i}] = {}", y[i]);
            assert!((z[i] - expected_z[i]).abs() < 0.02, "Z[{i}] = {}", z[i]);
        }
        // Consistency between the hand-rolled recurrence and the library.
        let model = TableModel::new(
            2,
            &[
                (&[], B, 0.55),
                (&[B], B, 0.418),
                (&[B, B], A, 0.87),
                (&[B, B, A], A, 0.406),
            ],
        );
        let bgm = BackgroundModel::from_probs(vec![0.6, 0.4]);
        let result = max_similarity(&model, &bgm, &syms(&[B, B, A, A]));
        assert!((result.sim() - z[3]).abs() < 1e-9);
    }

    /// Brute-force reference: SIM over all O(l²) segments, where each
    /// segment is scored with full-prefix conditioning exactly as the DP
    /// does.
    fn brute_force<M: ConditionalModel>(model: &M, bg: &BackgroundModel, seq: &[Symbol]) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for start in 0..seq.len() {
            let mut acc = 0.0;
            for i in start..seq.len() {
                acc += model.predict(&seq[..i], seq[i]).ln() - bg.prob(seq[i]).ln();
                best = best.max(acc);
            }
        }
        best
    }

    /// A deterministic pseudo-model for cross-checking the DP against the
    /// brute force on arbitrary sequences.
    struct HashModel;
    impl ConditionalModel for HashModel {
        fn alphabet_size(&self) -> usize {
            3
        }
        fn predict(&self, context: &[Symbol], next: Symbol) -> f64 {
            let h = context
                .iter()
                .fold(17u64, |a, s| a.wrapping_mul(31).wrapping_add(s.0 as u64))
                .wrapping_mul(131)
                .wrapping_add(next.0 as u64);
            0.05 + 0.9 * ((h % 97) as f64 / 97.0)
        }
    }

    #[test]
    fn dp_matches_brute_force() {
        let bg = BackgroundModel::from_probs(vec![0.5, 0.3, 0.2]);
        let seqs: Vec<Vec<u16>> = vec![
            vec![0],
            vec![0, 1],
            vec![2, 2, 2, 2],
            vec![0, 1, 2, 0, 1, 2, 1, 0],
            vec![1, 0, 0, 2, 1, 1, 1, 0, 2, 2, 0, 1],
        ];
        for raw in seqs {
            let seq = syms(&raw);
            let dp = max_similarity(&HashModel, &bg, &seq);
            let bf = brute_force(&HashModel, &bg, &seq);
            assert!(
                (dp.log_sim - bf).abs() < 1e-9,
                "sequence {raw:?}: dp {} vs brute force {bf}",
                dp.log_sim
            );
            // The reported segment really achieves the reported score.
            let mut acc = 0.0;
            for i in dp.start..dp.end {
                acc += HashModel.predict(&seq[..i], seq[i]).ln() - bg.prob(seq[i]).ln();
            }
            assert!((acc - dp.log_sim).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_sequence_scores_negative_infinity() {
        let bg = BackgroundModel::uniform(2);
        let r = max_similarity(&HashModel, &bg, &[]);
        assert_eq!(r.log_sim, f64::NEG_INFINITY);
        assert_eq!(r.segment_len(), 0);
    }

    #[test]
    fn uniform_model_over_uniform_background_scores_one() {
        struct Uniform;
        impl ConditionalModel for Uniform {
            fn alphabet_size(&self) -> usize {
                4
            }
            fn predict(&self, _c: &[Symbol], _n: Symbol) -> f64 {
                0.25
            }
        }
        let bg = BackgroundModel::uniform(4);
        let seq = syms(&[0, 1, 2, 3, 0, 1]);
        let r = max_similarity(&Uniform, &bg, &seq);
        assert!(r.log_sim.abs() < 1e-12, "ln SIM = 0 means SIM = 1");
    }

    #[test]
    fn zero_probability_voids_chains_through_that_position() {
        // Position 1 is impossible under the model; the best segment must
        // avoid it.
        struct Spiky;
        impl ConditionalModel for Spiky {
            fn alphabet_size(&self) -> usize {
                2
            }
            fn predict(&self, context: &[Symbol], _n: Symbol) -> f64 {
                if context.len() == 1 {
                    0.0
                } else {
                    0.9
                }
            }
        }
        let bg = BackgroundModel::uniform(2);
        let seq = syms(&[0, 0, 0, 0]);
        let r = max_similarity(&Spiky, &bg, &seq);
        assert!(
            r.start >= 2 || r.end <= 1,
            "segment {:?} crosses the void",
            (r.start, r.end)
        );
        assert!(r.log_sim.is_finite());
    }

    #[test]
    fn pst_scan_version_matches_generic_version() {
        use cluseq_pst::{Pst, PstParams};
        let mut pst = Pst::new(
            3,
            PstParams::default().with_significance(2).with_max_depth(4),
        );
        let train = syms(&[0, 1, 2, 0, 1, 2, 0, 0, 1, 1, 2, 2, 0, 1, 2]);
        pst.add_segment(&train);
        let bg = BackgroundModel::from_probs(vec![0.5, 0.3, 0.2]);
        for probe in [
            syms(&[0, 1, 2, 0, 1]),
            syms(&[2, 2, 2]),
            syms(&[1]),
            syms(&[]),
            syms(&[0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 2, 0, 1, 2]),
        ] {
            let generic = max_similarity(&pst, &bg, &probe);
            let scan = max_similarity_pst(&pst, &bg, &probe);
            assert_eq!(generic, scan, "probe {probe:?}");
        }
    }

    #[test]
    fn pst_scan_version_matches_after_pruning() {
        use cluseq_pst::{Pst, PstParams};
        let mut pst = Pst::new(
            3,
            PstParams::default().with_significance(1).with_max_depth(5),
        );
        let train: Vec<Symbol> = (0..200u16).map(|i| Symbol(i * 7 % 3)).collect();
        pst.add_segment(&train);
        pst.prune_to(pst.bytes() / 2);
        let bg = BackgroundModel::uniform(3);
        let probe = syms(&[0, 1, 2, 1, 0, 2, 2, 1, 0, 0]);
        assert_eq!(
            max_similarity(&pst, &bg, &probe),
            max_similarity_pst(&pst, &bg, &probe)
        );
    }

    #[test]
    fn compiled_kernel_is_bit_identical_to_interpreted() {
        use cluseq_pst::{Pst, PstParams};
        let mut pst = Pst::new(
            3,
            PstParams::default().with_significance(2).with_max_depth(4),
        );
        let train = syms(&[0, 1, 2, 0, 1, 2, 0, 0, 1, 1, 2, 2, 0, 1, 2, 0, 1, 2]);
        pst.add_segment(&train);
        let bg = BackgroundModel::from_probs(vec![0.5, 0.3, 0.2]);
        let compiled = cluseq_pst::CompiledPst::compile(&pst, &bg);
        for probe in [
            syms(&[0, 1, 2, 0, 1]),
            syms(&[2, 2, 2]),
            syms(&[1]),
            syms(&[]),
            syms(&[0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 2, 0, 1, 2]),
        ] {
            let interpreted = max_similarity_pst(&pst, &bg, &probe);
            let fast = max_similarity_compiled(&compiled, &probe);
            assert_eq!(
                interpreted.log_sim.to_bits(),
                fast.log_sim.to_bits(),
                "probe {probe:?}"
            );
            assert_eq!((interpreted.start, interpreted.end), (fast.start, fast.end));
        }
    }

    #[test]
    fn bounded_scan_is_exact_when_not_pruned() {
        use cluseq_pst::{CompiledPst, Pst, PstParams};
        let mut pst = Pst::new(
            2,
            PstParams::default().with_significance(2).with_max_depth(3),
        );
        pst.add_segment(&syms(&[0, 1, 0, 1, 0, 1, 0, 1, 0, 1]));
        let bg = BackgroundModel::uniform(2);
        let compiled = CompiledPst::compile(&pst, &bg);
        let probe = syms(&[0, 1, 0, 1, 0, 1]);
        let exact = max_similarity_compiled(&compiled, &probe);
        // A threshold the probe clearly beats: never pruned, identical.
        match max_similarity_compiled_bounded(&compiled, &probe, exact.log_sim - 1.0) {
            BoundedSimilarity::Exact(s) => {
                assert_eq!(s.log_sim.to_bits(), exact.log_sim.to_bits());
                assert_eq!((s.start, s.end), (exact.start, exact.end));
            }
            BoundedSimilarity::Pruned => panic!("a reachable threshold must not prune"),
        }
        assert_eq!(
            max_similarity_compiled_bounded(&compiled, &probe, exact.log_sim - 1.0)
                .exact()
                .map(|s| s.log_sim),
            Some(exact.log_sim)
        );
    }

    #[test]
    fn pruned_pairs_are_truly_below_threshold() {
        use cluseq_pst::{CompiledPst, Pst, PstParams};
        let mut pst = Pst::new(
            2,
            PstParams::default().with_significance(2).with_max_depth(3),
        );
        pst.add_segment(&syms(&[0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1]));
        let bg = BackgroundModel::uniform(2);
        let compiled = CompiledPst::compile(&pst, &bg);
        // A long anti-correlated probe: every threshold that prunes it must
        // sit strictly above its exact similarity.
        let probe: Vec<Symbol> = (0..200).map(|i| Symbol((i / 7 % 2) as u16)).collect();
        let exact = max_similarity_compiled(&compiled, &probe);
        let huge = exact.log_sim + 1_000.0;
        let verdict = max_similarity_compiled_bounded(&compiled, &probe, huge);
        assert!(verdict.is_pruned(), "an unreachable threshold must prune");
        // And pruning never lies: whenever *any* threshold prunes, the
        // exact score is below it.
        for k in 0..60 {
            let t = exact.log_sim - 3.0 + k as f64 * 0.2;
            if max_similarity_compiled_bounded(&compiled, &probe, t).is_pruned() {
                assert!(
                    exact.log_sim < t,
                    "pruned at threshold {t} but exact is {}",
                    exact.log_sim
                );
            }
        }
    }

    #[test]
    fn segment_sim_exponentiates() {
        let s = SegmentSimilarity {
            log_sim: 0.0,
            start: 1,
            end: 4,
        };
        assert_eq!(s.sim(), 1.0);
        assert_eq!(s.segment_len(), 3);
    }
}
