//! Online (streaming) continuation of a finished clustering.
//!
//! **Extension beyond the paper.** CLUSEQ's cluster model makes streaming
//! natural — a new sequence is scored against each PST in one scan, joins
//! clusters above the threshold, and its maximizing segment refines the
//! models it joined, exactly as the batch re-clustering step does. What
//! the batch algorithm gets from iteration — the ability to *discover new
//! clusters* — an online variant must approximate: sequences that join
//! nothing are buffered, and when enough buffered sequences turn out to be
//! mutually similar they seed a fresh cluster on the spot.
//!
//! ```
//! use cluseq_core::online::OnlineCluseq;
//! use cluseq_core::{Cluseq, CluseqParams};
//! use cluseq_seq::{Sequence, SequenceDatabase};
//!
//! let db = SequenceDatabase::from_strs(
//!     std::iter::repeat("abababababab").take(20)
//!         .chain(std::iter::repeat("cdcdcdcdcdcd").take(20)),
//! );
//! let params = CluseqParams::default().with_significance(4).with_initial_clusters(2);
//! let outcome = Cluseq::new(params.clone()).run(&db);
//!
//! let mut online = OnlineCluseq::from_outcome(&outcome, &params, db.alphabet().len());
//! // Longer than the training members, so its best segment scores at
//! // least as high as theirs (comfortably above the learned threshold).
//! let fresh = Sequence::parse_str(db.alphabet(), "abababababababab").unwrap();
//! let report = online.process(&fresh);
//! assert!(!report.joined.is_empty());
//! ```

use cluseq_pst::PstParams;
use cluseq_seq::{BackgroundModel, Sequence};

use crate::cluster::Cluster;
use crate::config::CluseqParams;
use crate::outcome::CluseqOutcome;
use crate::score::parallel_map;
use crate::similarity::{max_similarity_pst, LogSim};

/// What happened to one streamed sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Clusters the sequence joined (slot, log-similarity), best first.
    pub joined: Vec<(usize, LogSim)>,
    /// Slot of a cluster freshly spawned from the outlier buffer by this
    /// sequence's arrival, if any.
    pub spawned: Option<usize>,
    /// Whether the sequence went to the outlier buffer instead of a
    /// cluster.
    pub buffered: bool,
}

/// Streaming clusterer seeded from a batch result.
#[derive(Debug)]
pub struct OnlineCluseq {
    clusters: Vec<Cluster>,
    background: BackgroundModel,
    log_t: f64,
    pst_params: PstParams,
    alphabet_size: usize,
    next_id: usize,
    /// Recent sequences that joined nothing.
    buffer: Vec<Sequence>,
    /// Spawn a cluster once this many buffered sequences agree (the seed
    /// included). Mirrors the batch consolidation minimum.
    min_support: usize,
    /// Outliers older than this are evicted (confirmed noise).
    max_buffer: usize,
    /// Worker threads for the read-only scoring passes.
    threads: usize,
    processed: u64,
}

impl OnlineCluseq {
    /// Continues from a finished batch run. `params` supplies the PST
    /// settings and the consolidation minimum for spawned clusters.
    pub fn from_outcome(
        outcome: &CluseqOutcome,
        params: &CluseqParams,
        alphabet_size: usize,
    ) -> Self {
        let next_id = outcome.clusters.iter().map(|c| c.id + 1).max().unwrap_or(0);
        Self {
            clusters: outcome.clusters.clone(),
            background: outcome.background.clone(),
            log_t: outcome.final_log_t,
            pst_params: params.pst_params(),
            alphabet_size,
            next_id,
            buffer: Vec::new(),
            min_support: params.effective_min_exclusive().max(2),
            max_buffer: 256,
            threads: params.threads,
            processed: 0,
        }
    }

    /// The live clusters (models evolve as the stream is absorbed).
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// The decision threshold, log-space.
    pub fn log_t(&self) -> f64 {
        self.log_t
    }

    /// Sequences processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Current outlier-buffer size.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Processes one sequence: join-and-absorb per the paper's
    /// re-clustering rule, or buffer and (maybe) spawn a new cluster.
    pub fn process(&mut self, seq: &Sequence) -> OnlineReport {
        self.processed += 1;
        let symbols = seq.symbols();
        // Score phase: each cluster's model is independent, so scoring is
        // a pure parallel map (bit-identical to the serial loop for any
        // thread count); absorption stays sequential in slot order.
        let sims = parallel_map(self.clusters.len(), self.threads, |slot| {
            max_similarity_pst(&self.clusters[slot].pst, &self.background, symbols)
        });
        let mut joined: Vec<(usize, LogSim)> = Vec::new();
        for (slot, sim) in sims.into_iter().enumerate() {
            if sim.log_sim >= self.log_t && !symbols.is_empty() {
                self.clusters[slot].absorb_segment(&symbols[sim.start..sim.end]);
                joined.push((slot, sim.log_sim));
            }
        }
        joined.sort_by(|a, b| b.1.total_cmp(&a.1));

        if !joined.is_empty() {
            return OnlineReport {
                joined,
                spawned: None,
                buffered: false,
            };
        }

        // Outlier path: buffer, then see whether the buffer now contains a
        // viable new cluster seeded by this arrival.
        self.buffer.push(seq.clone());
        let spawned = self.try_spawn();
        if self.buffer.len() > self.max_buffer {
            let excess = self.buffer.len() - self.max_buffer;
            self.buffer.drain(..excess);
        }
        OnlineReport {
            joined: Vec::new(),
            spawned,
            buffered: spawned.is_none(),
        }
    }

    /// Tries to found a cluster from the newest buffered sequence: if at
    /// least `min_support − 1` other buffered sequences score above the
    /// threshold against its single-sequence model, they all become the
    /// new cluster's first members.
    fn try_spawn(&mut self) -> Option<usize> {
        if self.buffer.len() < self.min_support {
            return None;
        }
        let seed_seq = self.buffer.last().expect("just pushed").clone();
        let mut cluster = Cluster::from_seed(
            self.next_id,
            usize::MAX, // stream sequences have no database id
            &seed_seq,
            self.alphabet_size,
            self.pst_params,
        );
        let sims = parallel_map(self.buffer.len() - 1, self.threads, |i| {
            max_similarity_pst(&cluster.pst, &self.background, self.buffer[i].symbols()).log_sim
        });
        let supporters: Vec<usize> = sims
            .into_iter()
            .enumerate()
            .filter_map(|(i, sim)| (sim >= self.log_t).then_some(i))
            .collect();
        if supporters.len() + 1 < self.min_support {
            return None;
        }
        // Mutual-consistency check before committing. A single-sequence
        // seed model is badly overfit, so mutually *dissimilar* outliers
        // can each clear the threshold on a short coincidental overlap
        // with the seed. Leave-one-out validation separates the two cases:
        // every prospective member must stay above the threshold against a
        // model built from the *other* members only. A genuinely shared
        // behaviour generalizes (as grown batch clusters do); pairwise
        // coincidences with the seed do not survive having the member's
        // own contribution withheld.
        let members: Vec<&Sequence> = supporters
            .iter()
            .map(|&i| &self.buffer[i])
            .chain(std::iter::once(&seed_seq))
            .collect();
        let consistent = (0..members.len()).all(|j| {
            let mut others = members.iter().enumerate().filter(|&(k, _)| k != j);
            let (_, first) = others.next().expect("min_support >= 2");
            let mut trial =
                Cluster::from_seed(0, usize::MAX, first, self.alphabet_size, self.pst_params);
            for (_, other) in others {
                let sim = max_similarity_pst(&trial.pst, &self.background, other.symbols());
                trial.absorb_segment(&other.symbols()[sim.start..sim.end]);
            }
            max_similarity_pst(&trial.pst, &self.background, members[j].symbols()).log_sim
                >= self.log_t
        });
        if !consistent {
            return None;
        }
        // Commit: grow the seed model with each supporter's maximizing
        // segment against the evolving cluster, as the batch re-clustering
        // rule does, then drain members back to front so indices stay
        // valid.
        for &i in supporters.iter() {
            let sim = max_similarity_pst(&cluster.pst, &self.background, self.buffer[i].symbols());
            let symbols = self.buffer[i].symbols();
            cluster.absorb_segment(&symbols[sim.start..sim.end]);
        }
        for &i in supporters.iter().rev() {
            self.buffer.remove(i);
        }
        self.buffer.pop(); // the seed itself
        self.next_id += 1;
        self.clusters.push(cluster);
        Some(self.clusters.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Cluseq;
    use cluseq_datagen::ClusterModel;
    use cluseq_seq::SequenceDatabase;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SequenceDatabase, OnlineCluseq) {
        let db = SyntheticFixture::db();
        let params = CluseqParams::default()
            .with_initial_clusters(2)
            .with_significance(8)
            .with_min_exclusive(5)
            .with_max_depth(6)
            .with_seed(3);
        let outcome = Cluseq::new(params.clone()).run(&db);
        assert!(outcome.cluster_count() >= 2, "fixture must cluster");
        let online = OnlineCluseq::from_outcome(&outcome, &params, db.alphabet().len());
        (db, online)
    }

    /// Two planted behaviours over a 40-symbol alphabet.
    struct SyntheticFixture;
    impl SyntheticFixture {
        fn db() -> SequenceDatabase {
            cluseq_datagen::SyntheticSpec {
                sequences: 120,
                clusters: 2,
                avg_len: 150,
                alphabet: 40,
                outlier_fraction: 0.0,
                seed: 77,
            }
            .generate()
        }
        fn fresh(cluster: u64, len: usize, rng: &mut StdRng) -> Sequence {
            ClusterModel::new(40, 77u64.wrapping_add(cluster * 0x51ED)).sample_sequence(len, rng)
        }
        fn novel(len: usize, rng: &mut StdRng) -> Sequence {
            // A third behaviour the batch run never saw.
            ClusterModel::new(40, 0xDEAD_BEEF).sample_sequence(len, rng)
        }
    }

    #[test]
    fn fresh_members_join_their_cluster() {
        let (_, mut online) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        for cluster in 0..2u64 {
            let seq = SyntheticFixture::fresh(cluster, 150, &mut rng);
            let report = online.process(&seq);
            assert!(
                !report.joined.is_empty(),
                "cluster-{cluster} sequence must join something"
            );
            assert!(!report.buffered);
        }
        assert_eq!(online.processed(), 2);
    }

    #[test]
    fn joining_refines_the_model() {
        let (_, mut online) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let seq = SyntheticFixture::fresh(0, 150, &mut rng);
        let report = online.process(&seq);
        let slot = report.joined[0].0;
        let before = online.clusters()[slot].pst.total_count();
        let seq2 = SyntheticFixture::fresh(0, 150, &mut rng);
        online.process(&seq2);
        assert!(
            online.clusters()[slot].pst.total_count() > before,
            "absorbing a member grows the model"
        );
    }

    #[test]
    fn novel_behaviour_spawns_a_cluster_after_enough_support() {
        let (_, mut online) = setup();
        let before = online.clusters().len();
        let mut rng = StdRng::seed_from_u64(3);
        let mut spawned_at = None;
        for i in 0..10 {
            let seq = SyntheticFixture::novel(150, &mut rng);
            let report = online.process(&seq);
            if report.spawned.is_some() {
                spawned_at = Some(i);
                break;
            }
        }
        assert!(
            spawned_at.is_some(),
            "a consistent novel behaviour must eventually found a cluster"
        );
        assert_eq!(online.clusters().len(), before + 1);
        // Later novel sequences join it directly.
        let seq = SyntheticFixture::novel(150, &mut rng);
        let report = online.process(&seq);
        assert_eq!(report.joined.first().map(|&(k, _)| k), Some(before));
    }

    #[test]
    fn pure_noise_stays_buffered_and_is_evicted() {
        let (_, mut online) = setup();
        let before = online.clusters().len();
        let mut rng = StdRng::seed_from_u64(4);
        let mut joined = 0usize;
        for _ in 0..40 {
            let noise = cluseq_datagen::outliers::random_sequence(40, 150, &mut rng);
            let report = online.process(&noise);
            if !report.joined.is_empty() {
                joined += 1;
            }
        }
        // A lucky segment can drag an occasional noise sequence over the
        // batch threshold; the bulk must stay out, and — the key claim —
        // mutually dissimilar noise never accumulates spawn support.
        assert!(joined <= 8, "{joined}/40 noise sequences joined");
        assert_eq!(
            online.clusters().len(),
            before,
            "mutually dissimilar noise never reaches spawn support"
        );
        assert!(online.buffered() <= 256);
    }
}
