//! New-cluster seed selection (paper §4.1).
//!
//! To generate `k_n` new clusters, `m = sample_factor × k_n` unclustered
//! sequences are sampled; each sample gets its own probabilistic suffix
//! tree; then a greedy farthest-first pass runs `k_n` steps, each time
//! choosing the remaining sample whose *highest* similarity to any cluster
//! in the current collection (existing clusters plus seeds already chosen)
//! is *lowest* — i.e. the sample least explained by everything so far.

use rand::seq::SliceRandom;
use rand::Rng;

use cluseq_pst::{Pst, PstParams};
use cluseq_seq::{BackgroundModel, SequenceStore};

use crate::cluster::Cluster;
use crate::config::ScanKernel;
use crate::kernel::ClusterAutomaton;
use crate::score::{parallel_map, parallel_map_with};
use crate::similarity::{max_similarity_pst, BoundedSimilarity};
use crate::telemetry::SeedingMetrics;
use crate::trace::{Phase, TraceSession};

/// Selects up to `k_n` seed sequence ids from `unclustered`.
///
/// Returns fewer than `k_n` seeds when there are not enough unclustered
/// sequences (or when `k_n` is 0).
///
/// Candidate model building and all candidate scoring are pure reads, run
/// through [`crate::score::parallel_map`] with `threads` workers; the
/// selection itself (and the RNG draw for the sample) is identical for any
/// thread count.
#[allow(clippy::too_many_arguments)] // internal driver call, mirrors §4.1's inputs
pub fn select_seeds(
    store: &dyn SequenceStore,
    background: &BackgroundModel,
    clusters: &[Cluster],
    unclustered: &[usize],
    k_n: usize,
    sample_factor: usize,
    pst_params: PstParams,
    threads: usize,
    kernel: ScanKernel,
    rng: &mut impl Rng,
) -> Vec<usize> {
    select_seeds_detailed(
        store,
        background,
        clusters,
        unclustered,
        k_n,
        sample_factor,
        pst_params,
        threads,
        kernel,
        rng,
        None,
    )
    .0
}

/// [`select_seeds`] plus the [`SeedingMetrics`] the telemetry layer
/// records. Draws from `rng` exactly as [`select_seeds`] does, so the two
/// are interchangeable without perturbing downstream RNG state.
///
/// Under an automaton kernel the candidate scoring runs on prebuilt
/// automata with threshold early-exit against the running farthest-first
/// maxima. Selection under the exact automaton kernels is bit-identical
/// to the interpreted path: a pruned pair is provably below the running
/// maximum, so it could never have raised it. The quantized kernel
/// selects on quantized scores — deterministic, and within the automaton
/// error bound of exact — with the same sound early-exit.
///
/// With a `trace` session, the candidate scoring passes run under nested
/// `seeding_score` spans (the caller holds the surrounding `seeding`
/// span); tracing changes no draw, score, or pick.
#[allow(clippy::too_many_arguments)] // internal driver call, mirrors §4.1's inputs
pub fn select_seeds_detailed(
    store: &dyn SequenceStore,
    background: &BackgroundModel,
    clusters: &[Cluster],
    unclustered: &[usize],
    k_n: usize,
    sample_factor: usize,
    pst_params: PstParams,
    threads: usize,
    kernel: ScanKernel,
    rng: &mut impl Rng,
    trace: Option<&TraceSession>,
) -> (Vec<usize>, SeedingMetrics) {
    let requested = k_n;
    let pool = unclustered.len();
    if k_n == 0 || unclustered.is_empty() {
        return (
            Vec::new(),
            SeedingMetrics {
                requested,
                pool,
                sampled: 0,
                chosen: 0,
            },
        );
    }
    let k_n = k_n.min(unclustered.len());
    let m = (sample_factor * k_n).min(unclustered.len());

    // Sample m candidates without replacement.
    let mut candidates: Vec<usize> = unclustered.to_vec();
    candidates.shuffle(rng);
    candidates.truncate(m);

    // One PST per candidate, used both to score candidates against chosen
    // seeds and (by the caller) to found the new cluster. Each worker
    // reads candidate sequences through its own store reader, so a
    // file-backed store pages candidates in without global state.
    let alphabet_size = store.alphabet().len();
    let candidate_psts: Vec<Pst> = parallel_map_with(
        candidates.len(),
        threads,
        || store.reader(),
        |reader, i| Pst::from_sequence(alphabet_size, pst_params, &reader.sequence(candidates[i])),
    );

    // Existing cluster models are compiled once and reused for every
    // candidate; each picked candidate's model is compiled once below.
    let cluster_automata: Option<Vec<ClusterAutomaton>> = kernel.uses_automaton().then(|| {
        parallel_map(clusters.len(), threads, |i| {
            ClusterAutomaton::build(&clusters[i].pst, background, kernel)
                .expect("automaton-backed kernel")
        })
    });

    // best_sim[i] = highest similarity of candidate i to any cluster chosen
    // so far (existing clusters first). Farthest-first then only needs to
    // fold in the newest seed each step.
    let score_span = trace.map(|t| t.span(Phase::SeedingScore));
    let mut best_sim: Vec<f64> = parallel_map_with(
        candidates.len(),
        threads,
        || store.reader(),
        |reader, i| {
            let seq = reader.symbols(candidates[i]);
            match &cluster_automata {
                Some(automata) => automata.iter().fold(f64::NEG_INFINITY, |acc, a| {
                    // Early-exit against the running max: a pruned score
                    // is strictly below `acc`, so the fold is unchanged.
                    match a.scan_bounded(seq, acc) {
                        BoundedSimilarity::Exact(sim) => acc.max(sim.log_sim),
                        BoundedSimilarity::Pruned => acc,
                    }
                }),
                None => clusters
                    .iter()
                    .map(|c| max_similarity_pst(&c.pst, background, seq).log_sim)
                    .fold(f64::NEG_INFINITY, f64::max),
            }
        },
    );
    drop(score_span);

    let mut chosen: Vec<usize> = Vec::with_capacity(k_n); // candidate indices
    let mut taken = vec![false; candidates.len()];
    for _ in 0..k_n {
        // The remaining candidate with the LEAST max-similarity.
        let Some(pick) = (0..candidates.len())
            .filter(|&i| !taken[i])
            .min_by(|&a, &b| best_sim[a].total_cmp(&best_sim[b]))
        else {
            break;
        };
        taken[pick] = true;
        chosen.push(pick);

        // Fold the new seed into every remaining candidate's best score.
        let _span = trace.map(|t| t.span(Phase::SeedingScore));
        let pick_automaton = cluster_automata.as_ref().map(|_| {
            ClusterAutomaton::build(&candidate_psts[pick], background, kernel)
                .expect("automaton-backed kernel")
        });
        let step: Vec<Option<f64>> = parallel_map_with(
            candidates.len(),
            threads,
            || store.reader(),
            |reader, i| {
                if taken[i] {
                    return None;
                }
                let seq = reader.symbols(candidates[i]);
                match &pick_automaton {
                    // A pruned score is strictly below best_sim[i], so it
                    // could not have passed the `sim > best_sim[i]` update.
                    Some(a) => match a.scan_bounded(seq, best_sim[i]) {
                        BoundedSimilarity::Exact(sim) => Some(sim.log_sim),
                        BoundedSimilarity::Pruned => None,
                    },
                    None => {
                        Some(max_similarity_pst(&candidate_psts[pick], background, seq).log_sim)
                    }
                }
            },
        );
        for (i, sim) in step.into_iter().enumerate() {
            if let Some(sim) = sim {
                if sim > best_sim[i] {
                    best_sim[i] = sim;
                }
            }
        }
    }

    let seeds: Vec<usize> = chosen.into_iter().map(|i| candidates[i]).collect();
    let metrics = SeedingMetrics {
        requested,
        pool,
        sampled: m,
        chosen: seeds.len(),
    };
    (seeds, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_seq::SequenceDatabase;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (SequenceDatabase, BackgroundModel) {
        // Three well-separated behaviours, several sequences each.
        let texts = [
            "abababababababababab",
            "abababababababababab",
            "abababababababababab",
            "cccccccccccccccccccc",
            "cccccccccccccccccccc",
            "cccccccccccccccccccc",
            "aabbaabbaabbaabbaabb",
            "aabbaabbaabbaabbaabb",
        ];
        let db = SequenceDatabase::from_strs(texts);
        let bg = db.background();
        (db, bg)
    }

    fn params() -> PstParams {
        PstParams::default().with_significance(2)
    }

    #[test]
    fn selects_requested_number_of_seeds() {
        let (db, bg) = fixture();
        let mut rng = StdRng::seed_from_u64(3);
        let all: Vec<usize> = (0..db.len()).collect();
        let seeds = select_seeds(
            &db,
            &bg,
            &[],
            &all,
            3,
            5,
            params(),
            1,
            ScanKernel::Interpreted,
            &mut rng,
        );
        assert_eq!(seeds.len(), 3);
        // All seeds are distinct and drawn from the pool.
        let mut s = seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn farthest_first_spreads_across_behaviours() {
        let (db, bg) = fixture();
        let mut rng = StdRng::seed_from_u64(11);
        let all: Vec<usize> = (0..db.len()).collect();
        // Sample everything (factor large enough) so selection is purely
        // similarity-driven.
        let seeds = select_seeds(
            &db,
            &bg,
            &[],
            &all,
            3,
            10,
            params(),
            1,
            ScanKernel::Interpreted,
            &mut rng,
        );
        // The three seeds should cover the three behaviours: ab-repeats
        // (ids 0-2), c-runs (3-5), aabb-repeats (6-7).
        let groups: Vec<usize> = seeds
            .iter()
            .map(|&id| match id {
                0..=2 => 0,
                3..=5 => 1,
                _ => 2,
            })
            .collect();
        let mut g = groups.clone();
        g.sort_unstable();
        g.dedup();
        assert_eq!(
            g.len(),
            3,
            "seeds {seeds:?} collapse into groups {groups:?}"
        );
    }

    #[test]
    fn seeds_avoid_existing_clusters() {
        let (db, bg) = fixture();
        let mut rng = StdRng::seed_from_u64(5);
        // An existing cluster already models the ab-repeat behaviour.
        let existing = Cluster::from_seed(0, 0, db.sequence(0), db.alphabet().len(), params());
        let pool: Vec<usize> = (1..db.len()).collect();
        let seeds = select_seeds(
            &db,
            &bg,
            &[existing],
            &pool,
            1,
            10,
            params(),
            1,
            ScanKernel::Interpreted,
            &mut rng,
        );
        assert_eq!(seeds.len(), 1);
        assert!(
            seeds[0] >= 3,
            "seed {} should come from an unmodeled behaviour",
            seeds[0]
        );
    }

    #[test]
    fn empty_pool_or_zero_k_yields_nothing() {
        let (db, bg) = fixture();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(select_seeds(
            &db,
            &bg,
            &[],
            &[],
            3,
            5,
            params(),
            1,
            ScanKernel::Interpreted,
            &mut rng
        )
        .is_empty());
        let all: Vec<usize> = (0..db.len()).collect();
        assert!(select_seeds(
            &db,
            &bg,
            &[],
            &all,
            0,
            5,
            params(),
            1,
            ScanKernel::Interpreted,
            &mut rng
        )
        .is_empty());
    }

    #[test]
    fn thread_count_does_not_change_selection() {
        let (db, bg) = fixture();
        let all: Vec<usize> = (0..db.len()).collect();
        let existing = Cluster::from_seed(0, 0, db.sequence(0), db.alphabet().len(), params());
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(11);
            select_seeds(
                &db,
                &bg,
                std::slice::from_ref(&existing),
                &all,
                3,
                10,
                params(),
                threads,
                ScanKernel::Interpreted,
                &mut rng,
            )
        };
        let reference = run(1);
        for threads in [2usize, 4, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn k_larger_than_pool_is_clamped() {
        let (db, bg) = fixture();
        let mut rng = StdRng::seed_from_u64(1);
        let pool = vec![0, 3];
        let seeds = select_seeds(
            &db,
            &bg,
            &[],
            &pool,
            10,
            5,
            params(),
            1,
            ScanKernel::Interpreted,
            &mut rng,
        );
        assert_eq!(seeds.len(), 2);
    }

    #[test]
    fn detailed_selection_matches_plain_and_reports_metrics() {
        let (db, bg) = fixture();
        let all: Vec<usize> = (0..db.len()).collect();
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let plain = select_seeds(
            &db,
            &bg,
            &[],
            &all,
            3,
            2,
            params(),
            1,
            ScanKernel::Interpreted,
            &mut rng_a,
        );
        let (detailed, metrics) = select_seeds_detailed(
            &db,
            &bg,
            &[],
            &all,
            3,
            2,
            params(),
            1,
            ScanKernel::Interpreted,
            &mut rng_b,
            None,
        );
        assert_eq!(plain, detailed, "identical RNG draws, identical seeds");
        // Both consumed the same amount of RNG state.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        assert_eq!(metrics.requested, 3);
        assert_eq!(metrics.pool, db.len());
        assert_eq!(metrics.sampled, 6);
        assert_eq!(metrics.chosen, 3);
    }

    #[test]
    fn detailed_selection_reports_empty_pool() {
        let (db, bg) = fixture();
        let mut rng = StdRng::seed_from_u64(1);
        let (seeds, metrics) = select_seeds_detailed(
            &db,
            &bg,
            &[],
            &[],
            3,
            5,
            params(),
            1,
            ScanKernel::Interpreted,
            &mut rng,
            None,
        );
        assert!(seeds.is_empty());
        assert_eq!(metrics.requested, 3);
        assert_eq!(metrics.pool, 0);
        assert_eq!(metrics.sampled, 0);
        assert_eq!(metrics.chosen, 0);
    }

    #[test]
    fn compiled_kernel_selects_identical_seeds() {
        let (db, bg) = fixture();
        let all: Vec<usize> = (0..db.len()).collect();
        let existing = Cluster::from_seed(0, 0, db.sequence(0), db.alphabet().len(), params());
        let run = |kernel: ScanKernel| {
            let mut rng = StdRng::seed_from_u64(11);
            let seeds = select_seeds(
                &db,
                &bg,
                std::slice::from_ref(&existing),
                &all,
                3,
                10,
                params(),
                1,
                kernel,
                &mut rng,
            );
            // Both kernels must consume identical RNG state too.
            (seeds, rng.gen::<u64>())
        };
        let reference = run(ScanKernel::Interpreted);
        assert_eq!(reference, run(ScanKernel::Compiled));
        assert_eq!(reference, run(ScanKernel::Batched));
        // Quantized selection runs on quantized scores, which may rank
        // near-ties differently, but it must consume identical RNG state
        // and pick the requested number of distinct seeds.
        let (seeds_q, rng_q) = run(ScanKernel::Quantized);
        assert_eq!(rng_q, reference.1, "RNG draws are kernel-independent");
        assert_eq!(seeds_q.len(), reference.0.len());
        let mut distinct = seeds_q.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), seeds_q.len());
    }
}
