//! A cheap monotonic stamp for hot-path stage timing.
//!
//! `Instant::now()` costs ~30ns per read on a typical Linux host (a vDSO
//! `clock_gettime`); a traced serve request takes about nine stamps, so
//! the clock alone would eat ~2% of a ~13µs request. [`Stamp::now`]
//! reads the x86-64 time-stamp counter instead (~7ns) and converts tick
//! deltas to nanoseconds with a factor calibrated once per process
//! against `Instant`. On other architectures — or if the TSC turns out
//! to be unusable — it falls back to `Instant` transparently.
//!
//! Stamps are only meaningful *within* a process, and only as pairs fed
//! to [`Stamp::nanos_since`]; they are not wall-clock times and never
//! leave the process. Calibration error is bounded by the ~2ms
//! measurement window (well under 0.1%), which is far below the
//! histogram bucket resolution the nanos feed into. Unsynchronised TSCs
//! across cores could make a pair go backwards; the subtraction
//! saturates to zero, the same contract as `saturating_nanos`.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// How the process turns stamp deltas into nanoseconds.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Raw TSC ticks scaled by the calibrated tick length.
    Tsc { nanos_per_tick: f64 },
    /// `Instant`-based nanoseconds since the calibration origin.
    Clock,
}

/// The calibration result plus the origin instant for the fallback.
struct Calibration {
    mode: Mode,
    origin: Instant,
}

static CALIBRATION: OnceLock<Calibration> = OnceLock::new();

#[cfg(target_arch = "x86_64")]
fn ticks() -> u64 {
    // SAFETY: RDTSC is unprivileged and side-effect free; it is baseline
    // on every x86-64.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
fn ticks() -> u64 {
    0
}

fn calibration() -> &'static Calibration {
    CALIBRATION.get_or_init(|| {
        let origin = Instant::now();
        if cfg!(target_arch = "x86_64") {
            let t0 = ticks();
            // Spin ~2ms: long enough that Instant's own read cost is
            // noise, short enough to not matter at startup.
            while origin.elapsed() < Duration::from_millis(2) {
                std::hint::spin_loop();
            }
            let dt = ticks().saturating_sub(t0);
            let dn = origin.elapsed().as_nanos() as f64;
            // A modern TSC runs at 1-5 GHz; a tick outside [0.05, 20] ns
            // means the counter is stopped, emulated, or wild — fall
            // back to the real clock.
            let nanos_per_tick = if dt == 0 { 0.0 } else { dn / dt as f64 };
            if (0.05..=20.0).contains(&nanos_per_tick) {
                return Calibration {
                    mode: Mode::Tsc { nanos_per_tick },
                    origin,
                };
            }
        }
        Calibration {
            mode: Mode::Clock,
            origin,
        }
    })
}

/// Forces calibration now (one ~2ms spin per process). The serve daemon
/// calls this at startup so the first traced request doesn't pay it.
pub fn calibrate() {
    let _ = calibration();
}

/// One point in time, comparable only against other stamps from the same
/// process. `Copy`, 8 bytes, ~7ns to take on x86-64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp(u64);

impl Stamp {
    /// The current moment.
    #[inline]
    pub fn now() -> Stamp {
        let cal = calibration();
        match cal.mode {
            Mode::Tsc { .. } => Stamp(ticks()),
            Mode::Clock => Stamp(super::nanos_since(cal.origin)),
        }
    }

    /// Nanoseconds from `earlier` to `self`, saturating to zero if the
    /// pair is out of order.
    #[inline]
    pub fn nanos_since(self, earlier: Stamp) -> u64 {
        let delta = self.0.saturating_sub(earlier.0);
        match calibration().mode {
            Mode::Tsc { nanos_per_tick } => (delta as f64 * nanos_per_tick) as u64,
            Mode::Clock => delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_measure_real_time_within_tolerance() {
        calibrate();
        let a = Stamp::now();
        let wall = Instant::now();
        while wall.elapsed() < Duration::from_millis(5) {
            std::hint::spin_loop();
        }
        let measured = Stamp::now().nanos_since(a);
        let actual = wall.elapsed().as_nanos() as u64;
        // Same 5ms window, whatever clock source was picked: within 20%.
        assert!(
            measured > actual / 2 && measured < actual * 2,
            "stamp measured {measured}ns for ~{actual}ns of wall time"
        );
    }

    #[test]
    fn out_of_order_pairs_saturate_to_zero() {
        let a = Stamp::now();
        let b = Stamp::now();
        assert_eq!(a.nanos_since(b), 0);
    }
}
