//! Append-only crash-safe JSONL trace sink and its replay reader.
//!
//! Every event is one line: a JSON object whose first field is a
//! monotonically increasing `"seq"` number, so a reader can both detect
//! truncation and stitch a resumed run's events onto the original
//! stream. Durability mirrors the checkpoint layer's contract: writes
//! are buffered appends, and [`JsonlSink::sync`] (`fdatasync`) is called
//! by the driver on iteration boundaries *before* the checkpoint write —
//! so on any crash, the trace on disk covers at least as many iterations
//! as the newest checkpoint.
//!
//! # Crash tolerance
//!
//! A crash can leave at most one torn artifact: an unterminated final
//! line. Both ends handle it — [`JsonlSink::open_append`] truncates the
//! file back to its last `'\n'` before continuing (so a resumed run never
//! interleaves with garbage), and [`read_trace_str`] drops an
//! unterminated or unparsable tail, reporting it via
//! [`TraceReplay::truncated_tail`].

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use super::json::{self, JsonValue};

/// The open trace file plus the next sequence number to stamp.
#[derive(Debug)]
pub struct JsonlSink {
    file: File,
    next_seq: u64,
}

impl JsonlSink {
    /// Opens `path` for appending, repairing a torn tail first: the file
    /// is truncated back to its final `'\n'` (to zero if none), existing
    /// lines are scanned for their `"seq"` numbers, and the sink
    /// continues from the largest seen plus one.
    pub fn open_append(path: &Path) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let mut existing = String::new();
        file.read_to_string(&mut existing)?;
        let keep = existing.rfind('\n').map_or(0, |i| i + 1);
        if keep < existing.len() {
            file.set_len(keep as u64)?;
            file.seek(SeekFrom::End(0))?;
        }
        let next_seq = existing[..keep]
            .lines()
            .filter_map(|line| json::parse(line).ok())
            .filter_map(|v| v.get("seq").and_then(JsonValue::as_u64))
            .max()
            .map_or(0, |max| max + 1);
        Ok(Self { file, next_seq })
    }

    /// Appends one event line. `body` must be a JSON object rendered as
    /// `{...}`; the sink splices the sequence number in as the first
    /// field. Returns the sequence number written.
    pub fn write_event(&mut self, body: &str) -> io::Result<u64> {
        debug_assert!(body.starts_with('{') && body.ends_with('}'));
        let seq = self.next_seq;
        let rest = if body == "{}" { "}" } else { &body[1..] };
        let line = format!("{{\"seq\":{seq},{rest}\n");
        // One write call per line: the kernel appends atomically enough
        // that concurrent readers (the summary command on a live file)
        // see whole lines or nothing.
        self.file.write_all(line.as_bytes())?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Flushes file data to disk (`fdatasync`); the durability point.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// One parsed trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The event's stitching sequence number.
    pub seq: u64,
    /// The `"event"` discriminator (`run_start`, `resume`, `iteration`,
    /// `checkpoint`, `run_end`).
    pub kind: String,
    /// The whole event object.
    pub value: JsonValue,
}

/// A parsed trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReplay {
    /// Events in file order.
    pub events: Vec<TraceEvent>,
    /// Whether the file ended in a torn (unterminated or unparsable)
    /// final line that was dropped.
    pub truncated_tail: bool,
}

/// Parses a trace stream from its text. Interior lines must parse (a
/// malformed interior line is an error — it means the file is not a
/// trace, not that a crash tore it); only the final line is allowed to
/// be torn.
pub fn read_trace_str(text: &str) -> Result<TraceReplay, String> {
    let mut events = Vec::new();
    let mut truncated_tail = false;
    let terminated_len = text.rfind('\n').map_or(0, |i| i + 1);
    if terminated_len < text.len() {
        truncated_tail = true;
    }
    let lines: Vec<&str> = text[..terminated_len]
        .lines()
        .filter(|l| !l.trim().is_empty())
        .collect();
    for (i, line) in lines.iter().enumerate() {
        match parse_event(line) {
            Ok(ev) => events.push(ev),
            Err(e) if i + 1 == lines.len() => {
                // A torn final line can be newline-terminated if the crash
                // happened mid-`write_all` after an earlier partial flush;
                // tolerate exactly the last line.
                let _ = e;
                truncated_tail = true;
            }
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(TraceReplay {
        events,
        truncated_tail,
    })
}

/// Reads and parses a trace file (see [`read_trace_str`]).
pub fn read_trace(path: &Path) -> Result<TraceReplay, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    read_trace_str(&text)
}

fn parse_event(line: &str) -> Result<TraceEvent, String> {
    let value = json::parse(line).map_err(|e| e.to_string())?;
    let seq = value
        .get("seq")
        .and_then(JsonValue::as_u64)
        .ok_or("missing seq")?;
    let kind = value
        .get("event")
        .and_then(JsonValue::as_str)
        .ok_or("missing event")?
        .to_string();
    Ok(TraceEvent { seq, kind, value })
}

/// Stitches a replay's `iteration` events into one consistent timeline
/// across resumes, returned in iteration order.
///
/// A fresh `run_start` (one *not* followed by a `resume` event before the
/// next iteration) restarts the timeline — iterations recorded before it
/// belong to an abandoned run and are dropped. A resumed run replays the
/// checkpoint's records, re-emitting iterations that are already in the
/// file; later events win, so each iteration appears exactly once.
pub fn stitch_iterations(replay: &TraceReplay) -> Vec<JsonValue> {
    let mut iterations: Vec<(usize, JsonValue)> = Vec::new();
    let mut pending_fresh = false;
    for ev in &replay.events {
        match ev.kind.as_str() {
            "run_start" => pending_fresh = true,
            "resume" => pending_fresh = false,
            "iteration" => {
                if pending_fresh {
                    iterations.clear();
                    pending_fresh = false;
                }
                if let Some(n) = ev
                    .value
                    .get("iteration")
                    .and_then(JsonValue::as_u64)
                    .map(|n| n as usize)
                {
                    iterations.retain(|(i, _)| *i != n);
                    iterations.push((n, ev.value.clone()));
                }
            }
            _ => {}
        }
    }
    iterations.sort_by_key(|(i, _)| *i);
    iterations.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cluseq-sink-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("trace.jsonl")
    }

    #[test]
    fn writes_seq_stamped_lines() {
        let path = tmp("stamp");
        let _ = std::fs::remove_file(&path);
        let mut sink = JsonlSink::open_append(&path).unwrap();
        assert_eq!(sink.write_event(r#"{"event":"run_start"}"#).unwrap(), 0);
        assert_eq!(
            sink.write_event(r#"{"event":"iteration","iteration":0}"#)
                .unwrap(),
            1
        );
        sink.sync().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\"seq\":0,\"event\":\"run_start\"}\n{\"seq\":1,\"event\":\"iteration\",\"iteration\":0}\n"
        );
        let replay = read_trace_str(&text).unwrap();
        assert_eq!(replay.events.len(), 2);
        assert!(!replay.truncated_tail);
        assert_eq!(replay.events[1].kind, "iteration");
    }

    #[test]
    fn reopen_continues_sequence_and_repairs_torn_tail() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = JsonlSink::open_append(&path).unwrap();
            sink.write_event(r#"{"event":"run_start"}"#).unwrap();
            sink.write_event(r#"{"event":"iteration","iteration":0}"#)
                .unwrap();
        }
        // Simulate a crash mid-write: append half a line, no newline.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"seq\":2,\"event\":\"iter").unwrap();
        }
        let mut sink = JsonlSink::open_append(&path).unwrap();
        let seq = sink
            .write_event(r#"{"event":"resume","completed":1}"#)
            .unwrap();
        assert_eq!(seq, 2, "torn line dropped, sequence continues");
        drop(sink);
        let replay = read_trace(&path).unwrap();
        assert_eq!(replay.events.len(), 3);
        assert_eq!(replay.events[2].seq, 2);
        assert_eq!(replay.events[2].kind, "resume");
        assert!(!replay.truncated_tail, "tail was repaired at reopen");
    }

    #[test]
    fn reader_tolerates_torn_tail() {
        let good = "{\"seq\":0,\"event\":\"run_start\"}\n";
        for torn in ["{\"seq\":1,\"ev", "{\"seq\":1,\"event\":\"iteration\"", ""] {
            let replay = read_trace_str(&format!("{good}{torn}")).unwrap();
            assert_eq!(replay.events.len(), 1);
            assert_eq!(replay.truncated_tail, !torn.is_empty());
        }
    }

    #[test]
    fn reader_rejects_malformed_interior_line() {
        let text = "not json\n{\"seq\":0,\"event\":\"run_start\"}\n";
        assert!(read_trace_str(text).is_err());
    }

    #[test]
    fn stitch_dedupes_replayed_iterations() {
        let text = concat!(
            "{\"seq\":0,\"event\":\"run_start\"}\n",
            "{\"seq\":1,\"event\":\"iteration\",\"iteration\":0,\"pairs_scored\":10}\n",
            "{\"seq\":2,\"event\":\"iteration\",\"iteration\":1,\"pairs_scored\":20}\n",
            // Crash; resume from a checkpoint at iteration 2 replays both.
            "{\"seq\":3,\"event\":\"run_start\"}\n",
            "{\"seq\":4,\"event\":\"resume\",\"completed\":2}\n",
            "{\"seq\":5,\"event\":\"iteration\",\"iteration\":0,\"pairs_scored\":10}\n",
            "{\"seq\":6,\"event\":\"iteration\",\"iteration\":1,\"pairs_scored\":20}\n",
            "{\"seq\":7,\"event\":\"iteration\",\"iteration\":2,\"pairs_scored\":30}\n",
        );
        let replay = read_trace_str(text).unwrap();
        let iters = stitch_iterations(&replay);
        assert_eq!(iters.len(), 3);
        for (i, it) in iters.iter().enumerate() {
            assert_eq!(it.get("iteration").unwrap().as_u64(), Some(i as u64));
        }
    }

    #[test]
    fn stitch_fresh_run_start_restarts_timeline() {
        let text = concat!(
            "{\"seq\":0,\"event\":\"run_start\"}\n",
            "{\"seq\":1,\"event\":\"iteration\",\"iteration\":0,\"pairs_scored\":1}\n",
            // A fresh (non-resume) run over the same file abandons the old
            // timeline.
            "{\"seq\":2,\"event\":\"run_start\"}\n",
            "{\"seq\":3,\"event\":\"iteration\",\"iteration\":0,\"pairs_scored\":99}\n",
        );
        let replay = read_trace_str(text).unwrap();
        let iters = stitch_iterations(&replay);
        assert_eq!(iters.len(), 1);
        assert_eq!(iters[0].get("pairs_scored").unwrap().as_u64(), Some(99));
    }
}
