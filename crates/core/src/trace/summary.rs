//! Renders a JSONL trace into a per-phase, flamegraph-style text table.
//!
//! Backs the `trace-summary` CLI subcommand. The renderer works from the
//! replayed event stream alone: the header comes from the last
//! `run_start`, iterations are stitched across resumes
//! ([`super::sink::stitch_iterations`]), and the phase table prefers the
//! exact span aggregates in the last `run_end` event — falling back to
//! summing the per-iteration `phase_nanos` when the run is still going
//! (or crashed before `run_end`).
//!
//! Serve traces render too: a `serve_start`/`serve_swap`/`serve_end`
//! stream (from `cluseq serve --trace`) becomes a per-opcode latency
//! table with interpolated percentiles and a per-stage breakdown, and a
//! slow-request log (`--slow-log`) becomes a slowest-requests table. A
//! file may hold either kind of stream, or both.

use super::json::JsonValue;
use super::sink::{stitch_iterations, TraceReplay};
use super::{quantile_nanos, Phase, HIST_BUCKETS};

/// The rendered indentation of each phase (two spaces per nesting level).
fn indent(phase: Phase) -> usize {
    match phase {
        Phase::Iteration | Phase::Resume | Phase::Finalize => 0,
        Phase::SeedingScore => 4,
        _ => 2,
    }
}

fn fmt_secs(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1e9)
}

fn fmt_millis(nanos: u64) -> String {
    format!("{:.2}", nanos as f64 / 1e6)
}

struct Row {
    phase: Phase,
    total_nanos: u64,
    self_nanos: u64,
    count: u64,
    max_nanos: u64,
}

fn u64_field(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

/// Span rows from a `run_end` event's exact aggregates.
fn rows_from_run_end(run_end: &JsonValue) -> Option<Vec<Row>> {
    let spans = run_end.get("spans")?;
    let rows = Phase::ALL
        .iter()
        .filter_map(|&phase| {
            let s = spans.get(phase.as_str())?;
            Some(Row {
                phase,
                total_nanos: u64_field(s, "total_nanos"),
                self_nanos: u64_field(s, "self_nanos"),
                count: u64_field(s, "count"),
                max_nanos: u64_field(s, "max_nanos"),
            })
        })
        .collect::<Vec<_>>();
    (!rows.is_empty()).then_some(rows)
}

/// Approximate span rows summed from per-iteration `phase_nanos` — the
/// fallback when no `run_end` was recorded. Self time for the iteration
/// row is total minus the four inner phases; inner phases have no
/// recorded children at this granularity.
fn rows_from_iterations(iterations: &[JsonValue]) -> Vec<Row> {
    let keyed: [(Phase, &str); 5] = [
        (Phase::Seeding, "seeding"),
        (Phase::ScanScore, "scan_score"),
        (Phase::ScanAbsorb, "scan_absorb"),
        (Phase::Consolidate, "consolidate"),
        (Phase::Threshold, "threshold"),
    ];
    let mut rows: Vec<Row> = Vec::new();
    let mut iter_total = 0u64;
    let mut iter_children = 0u64;
    let mut iter_max = 0u64;
    for (phase, key) in keyed {
        let mut total = 0u64;
        let mut max = 0u64;
        for it in iterations {
            let v = it
                .get("phase_nanos")
                .map(|p| u64_field(p, key))
                .unwrap_or(0);
            total += v;
            max = max.max(v);
        }
        iter_children += total;
        rows.push(Row {
            phase,
            total_nanos: total,
            self_nanos: total,
            count: iterations.len() as u64,
            max_nanos: max,
        });
    }
    for it in iterations {
        let v = it
            .get("phase_nanos")
            .map(|p| u64_field(p, "total"))
            .unwrap_or(0);
        iter_total += v;
        iter_max = iter_max.max(v);
    }
    rows.insert(
        0,
        Row {
            phase: Phase::Iteration,
            total_nanos: iter_total,
            self_nanos: iter_total.saturating_sub(iter_children),
            count: iterations.len() as u64,
            max_nanos: iter_max,
        },
    );
    rows
}

/// Bucket counts plus observation sum for one histogram in a `serve_end`
/// snapshot.
fn hist_from_end(end: &JsonValue, name: &str) -> Option<([u64; HIST_BUCKETS], u64)> {
    let h = end.get("hists")?.get(name)?;
    let arr = h.get("counts")?.as_arr()?;
    let mut counts = [0u64; HIST_BUCKETS];
    for (slot, v) in counts.iter_mut().zip(arr) {
        *slot = v.as_u64().unwrap_or(0);
    }
    Some((counts, u64_field(h, "sum_nanos")))
}

fn fmt_quantile_ms(counts: &[u64; HIST_BUCKETS], q: f64) -> String {
    match quantile_nanos(counts, q) {
        Some(nanos) => format!("{:>9}", fmt_millis(nanos)),
        None => format!("{:>9}", "-"),
    }
}

/// The serve section of the report, if the stream holds any serve or
/// slow-request events.
fn render_serve(replay: &TraceReplay) -> Option<String> {
    let last_of = |kind: &str| {
        replay
            .events
            .iter()
            .rev()
            .find(|e| e.kind == kind)
            .map(|e| &e.value)
    };
    let start = last_of("serve_start");
    let end = last_of("serve_end");
    let swaps = replay.events.iter().filter(|e| e.kind == "serve_swap").count();
    let slow: Vec<&JsonValue> = replay
        .events
        .iter()
        .filter(|e| e.kind == "slow_request")
        .map(|e| &e.value)
        .collect();
    if start.is_none() && end.is_none() && swaps == 0 && slow.is_empty() {
        return None;
    }
    let mut out = String::new();
    if let Some(s) = start {
        out.push_str(&format!(
            "serve: {} — threads {}, max_batch {}, kernel {}, started at generation {} \
             ({} clusters)\n",
            s.get("addr").and_then(JsonValue::as_str).unwrap_or("?"),
            u64_field(s, "threads"),
            u64_field(s, "max_batch"),
            s.get("kernel").and_then(JsonValue::as_str).unwrap_or("?"),
            u64_field(s, "generation"),
            u64_field(s, "clusters"),
        ));
    }
    if swaps > 0 {
        out.push_str(&format!("serve swaps in stream: {swaps}\n"));
    }
    match end {
        Some(end) => {
            let counters = end.get("counters");
            let c = |key: &str| counters.map_or(0, |v| u64_field(v, key));
            out.push_str(&format!(
                "serve totals: {} ok, {} errors, {} batches, {} swaps, {} slow\n",
                c("serve_requests"),
                c("serve_errors"),
                c("serve_batches"),
                c("serve_swaps"),
                c("serve_slow_requests"),
            ));
            out.push_str(&format!(
                "\n{:<10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}  (latency ms, \
                 interpolated within power-of-two buckets)\n",
                "op", "count", "mean", "p50", "p95", "p99", "p999"
            ));
            for (label, hist) in [
                ("assign", "serve_assign"),
                ("score", "serve_score"),
                ("anomaly", "serve_anomaly"),
                ("admin", "serve_admin"),
            ] {
                let Some((counts, sum)) = hist_from_end(end, hist) else {
                    continue;
                };
                let count: u64 = counts.iter().sum();
                if count == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{:<10} {:>10} {:>9} {} {} {} {}\n",
                    label,
                    count,
                    fmt_millis(sum / count),
                    fmt_quantile_ms(&counts, 0.50),
                    fmt_quantile_ms(&counts, 0.95),
                    fmt_quantile_ms(&counts, 0.99),
                    fmt_quantile_ms(&counts, 0.999),
                ));
            }
            out.push_str(&format!(
                "\n{:<12} {:>10} {:>9} {:>9}  (stage ms)\n",
                "stage", "count", "mean", "p99"
            ));
            for (label, hist) in [
                ("accept", "serve_stage_accept"),
                ("decode", "serve_stage_decode"),
                ("queue_wait", "serve_stage_queue_wait"),
                ("batch_form", "serve_stage_batch_form"),
                ("scan", "serve_stage_scan"),
                ("encode", "serve_stage_encode"),
                ("write_back", "serve_stage_write_back"),
            ] {
                let Some((counts, sum)) = hist_from_end(end, hist) else {
                    continue;
                };
                let count: u64 = counts.iter().sum();
                if count == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{:<12} {:>10} {:>9} {}\n",
                    label,
                    count,
                    fmt_millis(sum / count),
                    fmt_quantile_ms(&counts, 0.99),
                ));
            }
            if let Some((counts, sum)) = hist_from_end(end, "serve_batch_jobs") {
                let count: u64 = counts.iter().sum();
                if count > 0 {
                    // Jobs ride the histogram in "micro-jobs" (n·1000).
                    out.push_str(&format!(
                        "mean batch size: {:.1} jobs over {} batches\n",
                        sum as f64 / 1000.0 / count as f64,
                        count,
                    ));
                }
            }
        }
        None => {
            if start.is_some() {
                out.push_str("serve still running (no serve_end snapshot)\n");
            }
        }
    }
    if !slow.is_empty() {
        let mut sorted: Vec<&JsonValue> = slow.clone();
        sorted.sort_by_key(|v| std::cmp::Reverse(u64_field(v, "total_nanos")));
        out.push_str(&format!(
            "\nslow requests: {} logged; slowest:\n{:<10} {:<8} {:<9} {:>10} {:>12}  \
             dominant stage\n",
            slow.len(),
            "id",
            "op",
            "transport",
            "total ms",
            "generation"
        ));
        for v in sorted.iter().take(8) {
            let dominant = v
                .get("stage_nanos")
                .and_then(JsonValue::as_obj)
                .and_then(|fields| {
                    fields
                        .iter()
                        .filter_map(|(k, v)| v.as_u64().map(|n| (k.as_str(), n)))
                        .max_by_key(|&(_, n)| n)
                })
                .map_or("?".to_string(), |(k, n)| {
                    format!("{k} ({} ms)", fmt_millis(n))
                });
            out.push_str(&format!(
                "{:<10} {:<8} {:<9} {:>10} {:>12}  {}\n",
                u64_field(v, "request_id"),
                v.get("op").and_then(JsonValue::as_str).unwrap_or("?"),
                v.get("transport").and_then(JsonValue::as_str).unwrap_or("?"),
                fmt_millis(u64_field(v, "total_nanos")),
                v.get("generation")
                    .and_then(JsonValue::as_u64)
                    .map_or("-".to_string(), |g| g.to_string()),
                dominant,
            ));
        }
    }
    Some(out)
}

/// Renders a replayed trace as the `trace-summary` report.
pub fn render_summary(replay: &TraceReplay) -> String {
    let serve_section = render_serve(replay);
    let has_clustering = replay.events.iter().any(|e| {
        matches!(
            e.kind.as_str(),
            "run_start" | "iteration" | "resume" | "checkpoint" | "run_end"
        )
    });
    // A pure serve trace (or slow-request log) skips the clustering
    // header and phase table entirely.
    if let (Some(serve), false) = (&serve_section, has_clustering) {
        return format!(
            "events: {}{}\n{}",
            replay.events.len(),
            if replay.truncated_tail {
                ", torn tail dropped"
            } else {
                ""
            },
            serve
        );
    }
    let mut out = String::new();
    let last_start = replay
        .events
        .iter()
        .rev()
        .find(|e| e.kind == "run_start")
        .map(|e| &e.value);
    let last_end = replay
        .events
        .iter()
        .rev()
        .find(|e| e.kind == "run_end")
        .map(|e| &e.value);
    let resumes = replay.events.iter().filter(|e| e.kind == "resume").count();
    let iterations = stitch_iterations(replay);

    if let Some(start) = last_start {
        out.push_str(&format!(
            "run: {} sequences, alphabet {}, threads {}, scan {}/{}, seed {}\n",
            u64_field(start, "sequences"),
            u64_field(start, "alphabet_size"),
            u64_field(start, "threads"),
            start
                .get("scan_mode")
                .and_then(JsonValue::as_str)
                .unwrap_or("?"),
            start
                .get("scan_kernel")
                .and_then(JsonValue::as_str)
                .unwrap_or("?"),
            u64_field(start, "seed"),
        ));
    }
    out.push_str(&format!(
        "events: {}, iterations: {}, resumes: {}{}{}\n",
        replay.events.len(),
        iterations.len(),
        resumes,
        if replay.truncated_tail {
            ", torn tail dropped"
        } else {
            ""
        },
        if last_end.is_some() {
            ""
        } else {
            ", run still in progress (no run_end)"
        },
    ));

    if let Some(last) = iterations.last() {
        out.push_str(&format!(
            "latest iteration {}: {} clusters, log_t {}, {} pairs scored, {} pruned\n",
            u64_field(last, "iteration"),
            u64_field(last, "clusters_live"),
            last.get("log_t")
                .and_then(JsonValue::as_f64)
                .map_or("?".to_string(), |v| format!("{v:.4}")),
            u64_field(last, "pairs_scored"),
            u64_field(last, "pairs_pruned"),
        ));
    }

    let (rows, exact) = match last_end.and_then(rows_from_run_end) {
        Some(rows) => (rows, true),
        None => (rows_from_iterations(&iterations), false),
    };
    out.push('\n');
    out.push_str(&format!(
        "phase{}  ({} span aggregates)\n",
        " ".repeat(19),
        if exact { "exact" } else { "approximate" }
    ));
    out.push_str(&format!(
        "{:<24} {:>10} {:>10} {:>8} {:>12}\n",
        "", "total s", "self s", "count", "max ms"
    ));
    for row in rows {
        if row.count == 0 && row.total_nanos == 0 {
            continue;
        }
        let label = format!("{}{}", " ".repeat(indent(row.phase)), row.phase.as_str());
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>8} {:>12}\n",
            label,
            fmt_secs(row.total_nanos),
            fmt_secs(row.self_nanos),
            row.count,
            fmt_millis(row.max_nanos),
        ));
    }
    if let Some(serve) = serve_section {
        out.push('\n');
        out.push_str(&serve);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::sink::read_trace_str;
    use super::*;

    const ITER: &str = concat!(
        "{\"seq\":0,\"event\":\"run_start\",\"sequences\":40,\"alphabet_size\":4,",
        "\"threads\":2,\"scan_mode\":\"incremental\",\"scan_kernel\":\"compiled\",\"seed\":7,",
        "\"initial_log_t\":0.5}\n",
        "{\"seq\":1,\"event\":\"iteration\",\"iteration\":0,\"clusters_live\":3,",
        "\"pairs_scored\":120,\"pairs_pruned\":10,\"log_t\":0.25,\"phase_nanos\":",
        "{\"seeding\":1000000,\"scan_score\":5000000,\"scan_absorb\":200000,",
        "\"consolidate\":300000,\"threshold\":100000,\"total\":7000000}}\n",
    );

    #[test]
    fn summary_without_run_end_uses_iteration_fallback() {
        let replay = read_trace_str(ITER).unwrap();
        let text = render_summary(&replay);
        assert!(text.contains("run: 40 sequences"), "{text}");
        assert!(text.contains("incremental/compiled"));
        assert!(text.contains("run still in progress"));
        assert!(text.contains("approximate"));
        assert!(text.contains("latest iteration 0: 3 clusters, log_t 0.2500"));
        assert!(text.contains(" iteration "));
        assert!(text.contains("  scan_score"));
    }

    #[test]
    fn summary_prefers_run_end_spans() {
        let trace = format!(
            "{ITER}{}",
            concat!(
                "{\"seq\":2,\"event\":\"run_end\",\"iterations\":1,\"clusters\":3,",
                "\"outliers\":2,\"final_log_t\":0.25,\"finalize_nanos\":1,\"total_nanos\":9,",
                "\"counters\":{\"pairs_scored\":120},\"spans\":{\"iteration\":",
                "{\"total_nanos\":7000000,\"self_nanos\":400000,\"count\":1,",
                "\"max_nanos\":7000000},\"scan_score\":{\"total_nanos\":5000000,",
                "\"self_nanos\":5000000,\"count\":1,\"max_nanos\":5000000}}}\n",
            )
        );
        let replay = read_trace_str(&trace).unwrap();
        let text = render_summary(&replay);
        assert!(text.contains("exact"), "{text}");
        assert!(!text.contains("run still in progress"));
        assert!(text.contains("scan_score"));
    }

    #[test]
    fn summary_of_empty_trace_does_not_panic() {
        let replay = read_trace_str("").unwrap();
        let text = render_summary(&replay);
        assert!(text.contains("events: 0, iterations: 0"));
    }

    fn serve_trace() -> String {
        // 10 assign observations in bucket 2 ([2, 4) µs), one accept
        // observation in bucket 0.
        let mut assign = [0u64; HIST_BUCKETS];
        assign[2] = 10;
        let mut accept = [0u64; HIST_BUCKETS];
        accept[0] = 1;
        let arr = |counts: &[u64; HIST_BUCKETS]| {
            counts
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            concat!(
                "{{\"seq\":0,\"event\":\"serve_start\",\"addr\":\"127.0.0.1:7878\",",
                "\"threads\":2,\"max_batch\":64,\"kernel\":\"compiled\",",
                "\"generation\":1,\"clusters\":4}}\n",
                "{{\"seq\":1,\"event\":\"serve_swap\",\"generation\":2,\"clusters\":4}}\n",
                "{{\"seq\":2,\"event\":\"serve_end\",\"counters\":{{",
                "\"serve_requests\":10,\"serve_errors\":1,\"serve_batches\":3,",
                "\"serve_swaps\":1,\"serve_slow_requests\":1}},\"hists\":{{",
                "\"serve_assign\":{{\"sum_nanos\":30000,\"counts\":[{assign}]}},",
                "\"serve_stage_accept\":{{\"sum_nanos\":500,\"counts\":[{accept}]}},",
                "\"serve_batch_jobs\":{{\"sum_nanos\":12000,\"counts\":[{accept}]}}",
                "}}}}\n",
            ),
            assign = arr(&assign),
            accept = arr(&accept),
        )
    }

    #[test]
    fn serve_trace_renders_without_clustering_header() {
        let replay = read_trace_str(&serve_trace()).unwrap();
        let text = render_summary(&replay);
        assert!(text.contains("serve: 127.0.0.1:7878"), "{text}");
        assert!(text.contains("serve swaps in stream: 1"));
        assert!(text.contains("serve totals: 10 ok, 1 errors, 3 batches"));
        assert!(text.contains("assign"));
        assert!(text.contains("mean batch size: 12.0 jobs over 1 batches"));
        // p50 of 10 observations in bucket 2 interpolates inside [2, 4) µs.
        assert!(!text.contains("run still in progress"), "{text}");
        assert!(!text.contains("phase"), "{text}");
    }

    #[test]
    fn slow_request_log_renders_slowest_table() {
        let trace = concat!(
            "{\"seq\":0,\"event\":\"slow_request\",\"request_id\":7,\"op\":\"assign\",",
            "\"transport\":\"binary\",\"generation\":3,\"seq_len\":40,\"error\":false,",
            "\"total_nanos\":250000000,\"threshold_nanos\":100000000,\"stage_nanos\":",
            "{\"accept\":1000,\"decode\":2000,\"queue_wait\":200000000,",
            "\"batch_form\":0,\"scan\":49997000,\"encode\":0,\"write_back\":0}}\n",
        );
        let replay = read_trace_str(trace).unwrap();
        let text = render_summary(&replay);
        assert!(text.contains("slow requests: 1 logged"), "{text}");
        assert!(text.contains("assign"));
        assert!(text.contains("queue_wait"), "dominant stage: {text}");
        assert!(text.contains("250.00"));
    }

    #[test]
    fn mixed_trace_appends_serve_section_after_phase_table() {
        let trace = format!("{ITER}{}", serve_trace());
        let replay = read_trace_str(&trace).unwrap();
        let text = render_summary(&replay);
        assert!(text.contains("run: 40 sequences"), "{text}");
        assert!(text.contains("serve totals"), "{text}");
    }
}
