//! Renders a JSONL trace into a per-phase, flamegraph-style text table.
//!
//! Backs the `trace-summary` CLI subcommand. The renderer works from the
//! replayed event stream alone: the header comes from the last
//! `run_start`, iterations are stitched across resumes
//! ([`super::sink::stitch_iterations`]), and the phase table prefers the
//! exact span aggregates in the last `run_end` event — falling back to
//! summing the per-iteration `phase_nanos` when the run is still going
//! (or crashed before `run_end`).

use super::json::JsonValue;
use super::sink::{stitch_iterations, TraceReplay};
use super::Phase;

/// The rendered indentation of each phase (two spaces per nesting level).
fn indent(phase: Phase) -> usize {
    match phase {
        Phase::Iteration | Phase::Resume | Phase::Finalize => 0,
        Phase::SeedingScore => 4,
        _ => 2,
    }
}

fn fmt_secs(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1e9)
}

fn fmt_millis(nanos: u64) -> String {
    format!("{:.2}", nanos as f64 / 1e6)
}

struct Row {
    phase: Phase,
    total_nanos: u64,
    self_nanos: u64,
    count: u64,
    max_nanos: u64,
}

fn u64_field(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

/// Span rows from a `run_end` event's exact aggregates.
fn rows_from_run_end(run_end: &JsonValue) -> Option<Vec<Row>> {
    let spans = run_end.get("spans")?;
    let rows = Phase::ALL
        .iter()
        .filter_map(|&phase| {
            let s = spans.get(phase.as_str())?;
            Some(Row {
                phase,
                total_nanos: u64_field(s, "total_nanos"),
                self_nanos: u64_field(s, "self_nanos"),
                count: u64_field(s, "count"),
                max_nanos: u64_field(s, "max_nanos"),
            })
        })
        .collect::<Vec<_>>();
    (!rows.is_empty()).then_some(rows)
}

/// Approximate span rows summed from per-iteration `phase_nanos` — the
/// fallback when no `run_end` was recorded. Self time for the iteration
/// row is total minus the four inner phases; inner phases have no
/// recorded children at this granularity.
fn rows_from_iterations(iterations: &[JsonValue]) -> Vec<Row> {
    let keyed: [(Phase, &str); 5] = [
        (Phase::Seeding, "seeding"),
        (Phase::ScanScore, "scan_score"),
        (Phase::ScanAbsorb, "scan_absorb"),
        (Phase::Consolidate, "consolidate"),
        (Phase::Threshold, "threshold"),
    ];
    let mut rows: Vec<Row> = Vec::new();
    let mut iter_total = 0u64;
    let mut iter_children = 0u64;
    let mut iter_max = 0u64;
    for (phase, key) in keyed {
        let mut total = 0u64;
        let mut max = 0u64;
        for it in iterations {
            let v = it
                .get("phase_nanos")
                .map(|p| u64_field(p, key))
                .unwrap_or(0);
            total += v;
            max = max.max(v);
        }
        iter_children += total;
        rows.push(Row {
            phase,
            total_nanos: total,
            self_nanos: total,
            count: iterations.len() as u64,
            max_nanos: max,
        });
    }
    for it in iterations {
        let v = it
            .get("phase_nanos")
            .map(|p| u64_field(p, "total"))
            .unwrap_or(0);
        iter_total += v;
        iter_max = iter_max.max(v);
    }
    rows.insert(
        0,
        Row {
            phase: Phase::Iteration,
            total_nanos: iter_total,
            self_nanos: iter_total.saturating_sub(iter_children),
            count: iterations.len() as u64,
            max_nanos: iter_max,
        },
    );
    rows
}

/// Renders a replayed trace as the `trace-summary` report.
pub fn render_summary(replay: &TraceReplay) -> String {
    let mut out = String::new();
    let last_start = replay
        .events
        .iter()
        .rev()
        .find(|e| e.kind == "run_start")
        .map(|e| &e.value);
    let last_end = replay
        .events
        .iter()
        .rev()
        .find(|e| e.kind == "run_end")
        .map(|e| &e.value);
    let resumes = replay.events.iter().filter(|e| e.kind == "resume").count();
    let iterations = stitch_iterations(replay);

    if let Some(start) = last_start {
        out.push_str(&format!(
            "run: {} sequences, alphabet {}, threads {}, scan {}/{}, seed {}\n",
            u64_field(start, "sequences"),
            u64_field(start, "alphabet_size"),
            u64_field(start, "threads"),
            start
                .get("scan_mode")
                .and_then(JsonValue::as_str)
                .unwrap_or("?"),
            start
                .get("scan_kernel")
                .and_then(JsonValue::as_str)
                .unwrap_or("?"),
            u64_field(start, "seed"),
        ));
    }
    out.push_str(&format!(
        "events: {}, iterations: {}, resumes: {}{}{}\n",
        replay.events.len(),
        iterations.len(),
        resumes,
        if replay.truncated_tail {
            ", torn tail dropped"
        } else {
            ""
        },
        if last_end.is_some() {
            ""
        } else {
            ", run still in progress (no run_end)"
        },
    ));

    if let Some(last) = iterations.last() {
        out.push_str(&format!(
            "latest iteration {}: {} clusters, log_t {}, {} pairs scored, {} pruned\n",
            u64_field(last, "iteration"),
            u64_field(last, "clusters_live"),
            last.get("log_t")
                .and_then(JsonValue::as_f64)
                .map_or("?".to_string(), |v| format!("{v:.4}")),
            u64_field(last, "pairs_scored"),
            u64_field(last, "pairs_pruned"),
        ));
    }

    let (rows, exact) = match last_end.and_then(rows_from_run_end) {
        Some(rows) => (rows, true),
        None => (rows_from_iterations(&iterations), false),
    };
    out.push('\n');
    out.push_str(&format!(
        "phase{}  ({} span aggregates)\n",
        " ".repeat(19),
        if exact { "exact" } else { "approximate" }
    ));
    out.push_str(&format!(
        "{:<24} {:>10} {:>10} {:>8} {:>12}\n",
        "", "total s", "self s", "count", "max ms"
    ));
    for row in rows {
        if row.count == 0 && row.total_nanos == 0 {
            continue;
        }
        let label = format!("{}{}", " ".repeat(indent(row.phase)), row.phase.as_str());
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>8} {:>12}\n",
            label,
            fmt_secs(row.total_nanos),
            fmt_secs(row.self_nanos),
            row.count,
            fmt_millis(row.max_nanos),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::sink::read_trace_str;
    use super::*;

    const ITER: &str = concat!(
        "{\"seq\":0,\"event\":\"run_start\",\"sequences\":40,\"alphabet_size\":4,",
        "\"threads\":2,\"scan_mode\":\"incremental\",\"scan_kernel\":\"compiled\",\"seed\":7,",
        "\"initial_log_t\":0.5}\n",
        "{\"seq\":1,\"event\":\"iteration\",\"iteration\":0,\"clusters_live\":3,",
        "\"pairs_scored\":120,\"pairs_pruned\":10,\"log_t\":0.25,\"phase_nanos\":",
        "{\"seeding\":1000000,\"scan_score\":5000000,\"scan_absorb\":200000,",
        "\"consolidate\":300000,\"threshold\":100000,\"total\":7000000}}\n",
    );

    #[test]
    fn summary_without_run_end_uses_iteration_fallback() {
        let replay = read_trace_str(ITER).unwrap();
        let text = render_summary(&replay);
        assert!(text.contains("run: 40 sequences"), "{text}");
        assert!(text.contains("incremental/compiled"));
        assert!(text.contains("run still in progress"));
        assert!(text.contains("approximate"));
        assert!(text.contains("latest iteration 0: 3 clusters, log_t 0.2500"));
        assert!(text.contains(" iteration "));
        assert!(text.contains("  scan_score"));
    }

    #[test]
    fn summary_prefers_run_end_spans() {
        let trace = format!(
            "{ITER}{}",
            concat!(
                "{\"seq\":2,\"event\":\"run_end\",\"iterations\":1,\"clusters\":3,",
                "\"outliers\":2,\"final_log_t\":0.25,\"finalize_nanos\":1,\"total_nanos\":9,",
                "\"counters\":{\"pairs_scored\":120},\"spans\":{\"iteration\":",
                "{\"total_nanos\":7000000,\"self_nanos\":400000,\"count\":1,",
                "\"max_nanos\":7000000},\"scan_score\":{\"total_nanos\":5000000,",
                "\"self_nanos\":5000000,\"count\":1,\"max_nanos\":5000000}}}\n",
            )
        );
        let replay = read_trace_str(&trace).unwrap();
        let text = render_summary(&replay);
        assert!(text.contains("exact"), "{text}");
        assert!(!text.contains("run still in progress"));
        assert!(text.contains("scan_score"));
    }

    #[test]
    fn summary_of_empty_trace_does_not_panic() {
        let replay = read_trace_str("").unwrap();
        let text = render_summary(&replay);
        assert!(text.contains("events: 0, iterations: 0"));
    }
}
