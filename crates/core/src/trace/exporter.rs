//! Prometheus text-format exporter: a `std::net::TcpListener` thread
//! serving the live [`TraceShared`] registry, no dependencies beyond
//! `std`.
//!
//! The server speaks just enough HTTP/1.0 for a scrape: it drains the
//! request head and answers `/metrics` (or `/`) with the full metrics
//! page; any other path gets a 404 so a misconfigured scraper fails
//! loudly instead of silently ingesting the wrong resource. Exposition
//! follows the Prometheus text format version 0.0.4: `# HELP` / `# TYPE`
//! headers, one sample per line, cumulative `_bucket` lines with an
//! `+Inf` terminal bucket for histograms. Reads are relaxed-atomic
//! snapshots — a scrape mid-iteration may be a few events behind a
//! concurrent worker, but every `_total` series is monotonic because the
//! underlying cells only ever increase.

use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use super::{bucket_upper_nanos, Counter, Gauge, HistKind, Phase, TraceShared, HIST_BUCKETS};

/// A running exporter; dropping it stops the listener thread.
pub struct ExporterHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ExporterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExporterHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ExporterHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ExporterHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; map an
        // unspecified bind address to loopback so the connect can land.
        let mut target = self.addr;
        match target.ip() {
            IpAddr::V4(ip) if ip.is_unspecified() => {
                target.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST));
            }
            IpAddr::V6(ip) if ip.is_unspecified() => {
                target.set_ip(IpAddr::V6(Ipv6Addr::LOCALHOST));
            }
            _ => {}
        }
        let _ = TcpStream::connect_timeout(&target, Duration::from_millis(500));
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and spawns the scrape thread.
pub fn start(shared: Arc<TraceShared>, addr: &str) -> io::Result<ExporterHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("cluseq-metrics".to_string())
        .spawn(move || serve(listener, shared, thread_stop))?;
    Ok(ExporterHandle {
        addr: bound,
        stop,
        join: Some(join),
    })
}

fn serve(listener: TcpListener, shared: Arc<TraceShared>, stop: Arc<AtomicBool>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = handle_scrape(stream, &shared);
    }
}

fn handle_scrape(mut stream: TcpStream, shared: &TraceShared) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Drain the request head so the client's send buffer is empty before
    // we close; only the request path matters.
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let path = request_path(&head);
    let response = if matches!(path, "/metrics" | "/") {
        let body = render(shared);
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = "see /metrics\n";
        format!(
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// The path component of the request line (`GET /metrics HTTP/1.0`);
/// defaults to `/metrics` when the head is malformed, so bare probes
/// still get a useful answer.
fn request_path(head: &[u8]) -> &str {
    std::str::from_utf8(head)
        .ok()
        .and_then(|s| s.lines().next())
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/metrics")
}

fn seconds(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

/// Renders the registry as a Prometheus text-format page.
pub fn render(shared: &TraceShared) -> String {
    let mut out = String::with_capacity(4096);

    // Gauges.
    out.push_str("# HELP cluseq_iteration Completed clustering iterations.\n");
    out.push_str("# TYPE cluseq_iteration gauge\n");
    out.push_str(&format!(
        "cluseq_iteration {}\n",
        shared.gauge(Gauge::Iteration)
    ));
    out.push_str("# HELP cluseq_clusters_live Clusters alive after the latest consolidation.\n");
    out.push_str("# TYPE cluseq_clusters_live gauge\n");
    out.push_str(&format!(
        "cluseq_clusters_live {}\n",
        shared.gauge(Gauge::ClustersLive)
    ));
    out.push_str("# HELP cluseq_threshold Similarity threshold t (natural units, exp of log_t).\n");
    out.push_str("# TYPE cluseq_threshold gauge\n");
    out.push_str(&format!(
        "cluseq_threshold {}\n",
        fmt_f64(shared.gauge_f64(Gauge::ThresholdLogT).exp())
    ));
    out.push_str("# HELP cluseq_serve_generation Live model generation of the serve daemon (0 when not serving).\n");
    out.push_str("# TYPE cluseq_serve_generation gauge\n");
    out.push_str(&format!(
        "cluseq_serve_generation {}\n",
        shared.gauge(Gauge::ServeGeneration)
    ));
    out.push_str("# HELP cluseq_serve_queue_depth Jobs waiting in the serve dispatcher queue.\n");
    out.push_str("# TYPE cluseq_serve_queue_depth gauge\n");
    out.push_str(&format!(
        "cluseq_serve_queue_depth {}\n",
        shared.gauge(Gauge::ServeQueueDepth)
    ));
    out.push_str(
        "# HELP cluseq_serve_in_flight Serve requests accepted and not yet answered.\n",
    );
    out.push_str("# TYPE cluseq_serve_in_flight gauge\n");
    out.push_str(&format!(
        "cluseq_serve_in_flight {}\n",
        // The gauge is +1/-1 balanced; a transient interleaving can read
        // as a wrapped negative, which is clamped to 0 for exposition.
        (shared.gauge(Gauge::ServeInFlight) as i64).max(0)
    ));
    out.push_str("# HELP cluseq_process_rss_bytes Resident set size of this process (0 where /proc is unavailable).\n");
    out.push_str("# TYPE cluseq_process_rss_bytes gauge\n");
    out.push_str(&format!("cluseq_process_rss_bytes {}\n", rss_bytes()));

    // Per-phase span time.
    out.push_str("# HELP cluseq_phase_seconds_total Wall time spent in each phase (span total).\n");
    out.push_str("# TYPE cluseq_phase_seconds_total counter\n");
    for phase in Phase::ALL {
        let s = shared.phase_stats(phase);
        out.push_str(&format!(
            "cluseq_phase_seconds_total{{phase=\"{}\"}} {}\n",
            phase.as_str(),
            fmt_f64(seconds(s.total_nanos))
        ));
    }
    out.push_str(
        "# HELP cluseq_phase_self_seconds_total Wall time per phase excluding nested phases.\n",
    );
    out.push_str("# TYPE cluseq_phase_self_seconds_total counter\n");
    for phase in Phase::ALL {
        let s = shared.phase_stats(phase);
        out.push_str(&format!(
            "cluseq_phase_self_seconds_total{{phase=\"{}\"}} {}\n",
            phase.as_str(),
            fmt_f64(seconds(s.self_nanos))
        ));
    }
    out.push_str("# HELP cluseq_phase_spans_total Spans recorded per phase.\n");
    out.push_str("# TYPE cluseq_phase_spans_total counter\n");
    for phase in Phase::ALL {
        out.push_str(&format!(
            "cluseq_phase_spans_total{{phase=\"{}\"}} {}\n",
            phase.as_str(),
            shared.phase_stats(phase).count
        ));
    }

    // Counters.
    for counter in Counter::ALL {
        let name = counter.as_str();
        out.push_str(&format!(
            "# HELP cluseq_{name}_total {}\n# TYPE cluseq_{name}_total counter\ncluseq_{name}_total {}\n",
            counter_help(counter),
            shared.counter(counter)
        ));
    }

    // Histograms. Latency histograms are exposed in seconds; the
    // batch-size histogram stores jobs scaled by 1000 (see
    // [`HistKind::ServeBatchJobs`]), so its edges and sum divide the
    // nano-shaped cells back into job counts.
    for hist in HistKind::ALL {
        let jobs_unit = hist == HistKind::ServeBatchJobs;
        let name = hist.as_str();
        let full = if jobs_unit {
            format!("cluseq_{name}")
        } else {
            format!("cluseq_{name}_seconds")
        };
        out.push_str(&format!(
            "# HELP {full} {}\n# TYPE {full} histogram\n",
            hist_help(hist)
        ));
        let counts = shared.hist_counts(hist);
        let mut cumulative = 0u64;
        for (b, count) in counts.iter().enumerate().take(HIST_BUCKETS) {
            cumulative += count;
            let le = match bucket_upper_nanos(b) {
                Some(nanos) if jobs_unit => fmt_f64(nanos as f64 / 1_000.0),
                Some(nanos) => fmt_f64(seconds(nanos)),
                None => "+Inf".to_string(),
            };
            out.push_str(&format!("{full}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        let sum = if jobs_unit {
            fmt_f64(shared.hist_sum(hist) as f64 / 1_000.0)
        } else {
            fmt_f64(seconds(shared.hist_sum(hist)))
        };
        out.push_str(&format!("{full}_sum {sum}\n{full}_count {cumulative}\n"));
    }
    out
}

/// Resident set size read live from `/proc/self/status` (`VmRSS`); 0 on
/// platforms without procfs or when the read fails — presence of the
/// series is stable either way, so dashboards never lose the panel.
fn rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                let rest = line.strip_prefix("VmRSS:")?;
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                Some(kb * 1024)
            })
        })
        .unwrap_or(0)
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        // `{}` on f64 is the shortest representation that round-trips;
        // Prometheus accepts Go-style floats, which this is a subset of.
        format!("{v}")
    }
}

fn counter_help(counter: Counter) -> &'static str {
    match counter {
        Counter::PairsScored => "Sequence/cluster pairs whose similarity was evaluated.",
        Counter::PairsPruned => "Pairs abandoned early by the compiled kernel's threshold exit.",
        Counter::Joins => "Pairs whose similarity reached the threshold.",
        Counter::NewJoins => "Joins by sequences not already members of the cluster.",
        Counter::MembershipChanges => "Cluster membership flips across all scans.",
        Counter::SeedCandidatesSampled => "Seed candidates sampled by the seeding phase.",
        Counter::SeedsChosen => "Seeds chosen (clusters born).",
        Counter::ClustersDismissed => "Clusters dismissed by consolidation.",
        Counter::ClustersMerged => "Dismissed clusters merged into a covering cluster.",
        Counter::ThresholdMoves => "Threshold-adjustment steps that moved the threshold.",
        Counter::CheckpointWrites => "Checkpoint write attempts.",
        Counter::CheckpointFailures => "Checkpoint write attempts that failed.",
        Counter::CheckpointBytes => "Bytes of checkpoint data successfully written.",
        Counter::ServeRequests => "Requests the serve daemon answered with a scored response.",
        Counter::ServeErrors => "Error frames/responses the serve daemon produced.",
        Counter::ServeBatches => "Scoring batches the serve dispatcher executed.",
        Counter::ServeSwaps => "Successful hot-swaps to a new model generation.",
        Counter::PairsReused => "Pairs answered from the incremental engine's similarity cache.",
        Counter::ClustersDirty => "Clusters entering a scan without a valid cached column.",
        Counter::PstRecompiles => "Cluster automata recompiled for dirty clusters.",
        Counter::ServeAssign => "ASSIGN requests completed by the serve daemon.",
        Counter::ServeScore => "SCORE requests completed by the serve daemon.",
        Counter::ServeAnomaly => "ANOMALY requests completed by the serve daemon.",
        Counter::ServeInfo => "INFO requests completed by the serve daemon.",
        Counter::ServeSwapRequests => "SWAP requests completed by the serve daemon.",
        Counter::ServeShutdown => "SHUTDOWN requests completed by the serve daemon.",
        Counter::ServeSlow => "Requests whose end-to-end latency crossed the slow threshold.",
    }
}

fn hist_help(hist: HistKind) -> &'static str {
    match hist {
        HistKind::ScoreRow => "Latency of scoring one sequence against all clusters.",
        HistKind::IterationWall => "Wall time of one whole iteration.",
        HistKind::CheckpointWrite => "Wall time of one checkpoint write.",
        HistKind::ServeRequest => "Serve request latency, enqueue to scored response.",
        HistKind::ServeAssign => "End-to-end ASSIGN latency, first byte to write-back.",
        HistKind::ServeScore => "End-to-end SCORE latency, first byte to write-back.",
        HistKind::ServeAnomaly => "End-to-end ANOMALY latency, first byte to write-back.",
        HistKind::ServeAdmin => "End-to-end latency of INFO/SWAP/SHUTDOWN requests.",
        HistKind::ServeAccept => "Stage: reading the rest of the request off the socket.",
        HistKind::ServeDecode => "Stage: decoding and validating the request payload.",
        HistKind::ServeQueueWait => "Stage: enqueue until drained into a dispatch batch.",
        HistKind::ServeBatchForm => "Stage: batch drain until scoring began.",
        HistKind::ServeScan => "Stage: the batched scoring pass.",
        HistKind::ServeEncode => "Stage: encoding the response.",
        HistKind::ServeWriteBack => "Stage: writing the response to the socket.",
        HistKind::ServeBatchJobs => "Jobs per dispatched serve batch (unit: jobs, not seconds).",
    }
}

#[cfg(test)]
mod tests {
    use super::super::TraceSession;
    use super::*;

    #[test]
    fn render_covers_required_series() {
        let s = TraceSession::in_memory();
        s.add(Counter::PairsScored, 7);
        s.gauge_set(Gauge::Iteration, 3);
        s.gauge_set_f64(Gauge::ThresholdLogT, 0.0);
        let page = render(s.shared());
        for needle in [
            "cluseq_iteration 3\n",
            "cluseq_clusters_live 0\n",
            "cluseq_threshold 1\n",
            "cluseq_pairs_scored_total 7\n",
            "cluseq_pairs_pruned_total 0\n",
            "cluseq_phase_seconds_total{phase=\"scan_score\"} 0\n",
            "cluseq_score_row_seconds_bucket{le=\"+Inf\"} 0\n",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let s = TraceSession::in_memory();
        s.observe(HistKind::ScoreRow, 0, 500); // bucket 0
        s.observe(HistKind::ScoreRow, 1, 1_500); // bucket 1
        let page = render(s.shared());
        assert!(page.contains("cluseq_score_row_seconds_bucket{le=\"0.000001\"} 1\n"));
        assert!(page.contains("cluseq_score_row_seconds_bucket{le=\"0.000002\"} 2\n"));
        assert!(page.contains("cluseq_score_row_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(page.contains("cluseq_score_row_seconds_count 2\n"));
        assert!(page.contains("cluseq_score_row_seconds_sum 0.000002\n"));
    }

    #[test]
    fn render_covers_serve_observability_series() {
        let s = TraceSession::in_memory();
        s.add(Counter::ServeAssign, 4);
        s.add(Counter::ServeSlow, 1);
        s.shared().gauge_set(Gauge::ServeQueueDepth, 5);
        s.shared().gauge_add(Gauge::ServeInFlight, 2);
        s.observe(HistKind::ServeQueueWait, 0, 2_500);
        // A 3-job batch is stored as 3 µs (unit: jobs).
        s.observe(HistKind::ServeBatchJobs, 0, 3_000);
        let page = render(s.shared());
        for needle in [
            "cluseq_serve_assign_requests_total 4\n",
            "cluseq_serve_score_requests_total 0\n",
            "cluseq_serve_slow_requests_total 1\n",
            "cluseq_serve_queue_depth 5\n",
            "cluseq_serve_in_flight 2\n",
            "cluseq_serve_stage_queue_wait_seconds_bucket{le=\"0.000004\"} 1\n",
            "cluseq_serve_batch_jobs_bucket{le=\"4\"} 1\n",
            "cluseq_serve_batch_jobs_sum 3\n",
            "cluseq_serve_batch_jobs_count 1\n",
            "cluseq_process_rss_bytes ",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
        // The jobs histogram must not carry a seconds suffix.
        assert!(!page.contains("cluseq_serve_batch_jobs_seconds"));
    }

    #[test]
    fn wrapped_in_flight_gauge_renders_as_zero() {
        let s = TraceSession::in_memory();
        s.shared().gauge_add(Gauge::ServeInFlight, -1);
        let page = render(s.shared());
        assert!(page.contains("cluseq_serve_in_flight 0\n"), "{page}");
    }

    #[test]
    fn scrape_over_tcp_round_trips() {
        let s = Arc::new(super::super::TraceShared::new());
        let handle = start(Arc::clone(&s), "127.0.0.1:0").unwrap();
        let addr = handle.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("cluseq_iteration 0\n"));
        drop(handle); // must not hang
    }
}
