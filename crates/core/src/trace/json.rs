//! A minimal JSON value and recursive-descent parser.
//!
//! The trace reader ([`super::sink`]) and the `trace-summary` renderer
//! need to *parse* the JSONL events this crate writes; the workspace has
//! no JSON dependency, so this is the counterpart to
//! `telemetry::JsonWriter`. It accepts standard JSON (RFC 8259) with two
//! deliberate simplifications: numbers are parsed as `f64` (every number
//! this crate emits round-trips — span nanos are far below 2^53 in
//! practice, and exact integer identity is checked by the tests through
//! `as_u64`), and `\uXXXX` escapes outside the basic multilingual plane
//! are accepted pairwise as surrogates.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value of `key` when `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value when `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an exact non-negative integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0).then_some(n as u64)
    }

    /// The boolean when `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements when `self` is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields when `self` is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Why a parse failed, with the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses `input` as a single JSON document (trailing whitespace allowed,
/// anything else after the value is an error).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Null));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\n\"\\\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\"\\Aé"));
        // Surrogate pair for U+1F600.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Raw UTF-8 passes through.
        let v = parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
            "\"\\q\"",
            "\"\\ud83d\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn exact_integers_round_trip() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
