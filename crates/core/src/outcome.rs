//! The result of a CLUSEQ run.

use cluseq_seq::{BackgroundModel, Symbol};

use crate::cluster::Cluster;
use crate::similarity::{max_similarity_pst, LogSim, SegmentSimilarity};

/// Per-iteration bookkeeping, reported for diagnostics and the sensitivity
/// experiments (Tables 5 and 6 track cluster counts and `t` over time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// 0-based iteration number.
    pub iteration: usize,
    /// Clusters generated at the start of this iteration (`k_n`).
    pub new_clusters: usize,
    /// Clusters dismissed by consolidation at the end (`k_c`).
    pub removed_clusters: usize,
    /// Clusters alive after consolidation.
    pub clusters_at_end: usize,
    /// Membership flips during the re-clustering scan.
    pub membership_changes: usize,
    /// The (log-space) similarity threshold used this iteration.
    pub log_t: f64,
    /// Whether threshold adjustment moved `t` after this iteration.
    pub threshold_moved: bool,
}

/// The final clustering: the surviving cluster models, the membership
/// structure, and the run history.
#[derive(Debug)]
pub struct CluseqOutcome {
    /// The surviving clusters, with their final member lists. Cluster
    /// models stay usable: see [`CluseqOutcome::classify`].
    pub clusters: Vec<Cluster>,
    /// For each sequence, the index (into `clusters`) of its
    /// highest-similarity cluster among those it belongs to.
    pub best_cluster: Vec<Option<usize>>,
    /// Sequence ids belonging to no cluster.
    pub outliers: Vec<usize>,
    /// The final similarity threshold, log-space.
    pub final_log_t: f64,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Per-iteration statistics.
    pub history: Vec<IterationStats>,
    /// The background model fitted on the input database (needed to score
    /// new sequences consistently).
    pub background: BackgroundModel,
}

impl CluseqOutcome {
    /// Number of surviving clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The final threshold in the paper's natural units.
    pub fn final_t(&self) -> f64 {
        self.final_log_t.exp()
    }

    /// Membership lists (`clusters[k].members`), in cluster order — the
    /// shape [`cluseq_eval::Confusion`] consumes.
    pub fn membership_lists(&self) -> Vec<Vec<usize>> {
        self.clusters.iter().map(|c| c.members.clone()).collect()
    }

    /// Hard assignment per sequence (best cluster or `None`).
    pub fn assignment(&self) -> &[Option<usize>] {
        &self.best_cluster
    }

    /// Fraction of sequences left unclustered.
    pub fn outlier_fraction(&self) -> f64 {
        if self.best_cluster.is_empty() {
            return 0.0;
        }
        self.outliers.len() as f64 / self.best_cluster.len() as f64
    }

    /// Scores a (possibly unseen) sequence against every final cluster,
    /// returning `(cluster index, log similarity, maximizing segment)`
    /// sorted by descending similarity.
    pub fn classify(&self, seq: &[Symbol]) -> Vec<(usize, SegmentSimilarity)> {
        let mut scored: Vec<(usize, SegmentSimilarity)> = self
            .clusters
            .iter()
            .enumerate()
            .map(|(k, c)| (k, max_similarity_pst(&c.pst, &self.background, seq)))
            .collect();
        scored.sort_by(|a, b| b.1.log_sim.total_cmp(&a.1.log_sim));
        scored
    }

    /// The clusters a new sequence would join under the final threshold.
    pub fn assign_new(&self, seq: &[Symbol]) -> Vec<(usize, LogSim)> {
        self.classify(seq)
            .into_iter()
            .filter(|(_, s)| s.log_sim >= self.final_log_t)
            .map(|(k, s)| (k, s.log_sim))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use cluseq_pst::PstParams;
    use cluseq_seq::{Alphabet, Sequence};

    fn outcome() -> (Alphabet, CluseqOutcome) {
        let alphabet = Alphabet::from_chars("abc".chars());
        let ab = Sequence::parse_str(&alphabet, "abababababab").unwrap();
        let cc = Sequence::parse_str(&alphabet, "cccccccccccc").unwrap();
        let params = PstParams::default().with_significance(2);
        let mut c0 = Cluster::from_seed(0, 0, &ab, 3, params);
        c0.members = vec![0, 1];
        let mut c1 = Cluster::from_seed(1, 2, &cc, 3, params);
        c1.members = vec![2];
        let bg = BackgroundModel::uniform(3);
        (
            alphabet,
            CluseqOutcome {
                clusters: vec![c0, c1],
                best_cluster: vec![Some(0), Some(0), Some(1), None],
                outliers: vec![3],
                // High enough that a lone lucky symbol (a single "b" after
                // an unknown context scores P(b|root)/bg ≈ 1.5) cannot pass.
                final_log_t: 1.0,
                iterations: 2,
                history: vec![],
                background: bg,
            },
        )
    }

    #[test]
    fn accessors_report_the_structure() {
        let (_, o) = outcome();
        assert_eq!(o.cluster_count(), 2);
        assert_eq!(o.membership_lists(), vec![vec![0, 1], vec![2]]);
        assert!((o.outlier_fraction() - 0.25).abs() < 1e-12);
        assert!((o.final_t() - 1.0f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn classify_ranks_the_generating_cluster_first() {
        let (alphabet, o) = outcome();
        let probe = Sequence::parse_str(&alphabet, "ababab").unwrap();
        let ranked = o.classify(probe.symbols());
        assert_eq!(ranked[0].0, 0, "ab-probe matches the ab-cluster best");
        assert!(ranked[0].1.log_sim > ranked[1].1.log_sim);
    }

    #[test]
    fn assign_new_applies_the_threshold() {
        let (alphabet, o) = outcome();
        let ab_probe = Sequence::parse_str(&alphabet, "abababab").unwrap();
        let joined = o.assign_new(ab_probe.symbols());
        assert!(joined.iter().any(|&(k, _)| k == 0));
        // A sequence avoiding both clusters' transitions scores below the
        // threshold against the ab-cluster: its only positive contribution
        // is single symbols after unknown contexts (ratio 1.5, ln ≈ 0.4).
        let noise = Sequence::parse_str(&alphabet, "ccbbccbb").unwrap();
        let joined = o.assign_new(noise.symbols());
        assert!(
            joined.iter().all(|&(k, _)| k != 0),
            "noise joined the ab-cluster: {joined:?}"
        );
    }
}
