//! Paged cluster models: lazily-built scan automata behind a
//! byte-budgeted LRU cache.
//!
//! At paper scale the corpus is the dominant memory cost, but the compiled
//! scan tables are the *second* one: every automaton-backed kernel holds
//! `O(nodes × |ℑ|)` table bytes per cluster, and the snapshot scan wants
//! all `k` of them at once. The [`ModelCache`] bounds that: automata are
//! built on first touch, retained up to a configured byte budget, and
//! evicted least-recently-used beyond it. Because
//! [`ClusterAutomaton::build`] is a pure function of `(pst, background,
//! kernel)`, an evicted automaton rebuilds bit-identically on the next
//! touch — eviction can cost time, never correctness.
//!
//! Entries are handed out as [`Arc`]s: a scan that is mid-pass keeps its
//! automata alive even if the cache evicts them concurrently-in-spirit
//! (the cache itself is single-threaded; "eviction" only drops the
//! cache's reference). The budget therefore bounds what the cache *keeps
//! resident across iterations*, while a single pass may transiently pin
//! the automata it is actively scanning with.
//!
//! Invalidation is explicit and caller-driven: the scan knows exactly
//! which clusters absorbed segments (their PSTs changed), consolidation
//! knows which clusters died or merged. There is no fingerprinting — the
//! caller's knowledge is authoritative, mirroring
//! [`crate::incremental::SimilarityCache`].

use std::collections::HashMap;
use std::sync::Arc;

use cluseq_seq::BackgroundModel;

use crate::cluster::Cluster;
use crate::config::ScanKernel;
use crate::kernel::ClusterAutomaton;

/// One resident automaton plus its bookkeeping.
#[derive(Debug)]
struct Entry {
    automaton: Arc<ClusterAutomaton>,
    bytes: usize,
    /// Monotone access tick — strictly increasing, so LRU order is total
    /// and eviction is deterministic.
    last_used: u64,
}

/// An LRU cache of compiled cluster automata, bounded by table bytes.
///
/// Keys are cluster ids (stable across a run, never reused). The cache is
/// kernel-agnostic per entry — a run uses one kernel throughout, and
/// [`ModelCache::clear`] handles the hot-swap case.
#[derive(Debug)]
pub struct ModelCache {
    entries: HashMap<usize, Entry>,
    budget_bytes: usize,
    resident_bytes: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelCache {
    /// A cache retaining at most `budget_bytes` of automaton tables
    /// across accesses. A budget of 0 still *works* — every access builds
    /// fresh and nothing is retained — it just degenerates to the
    /// uncached behavior.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            entries: HashMap::new(),
            budget_bytes,
            resident_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// A cache budgeted in mebibytes — the unit the `--model-cache-mb`
    /// flag speaks.
    pub fn with_budget_mb(mb: usize) -> Self {
        Self::new(mb.saturating_mul(1 << 20))
    }

    /// The automaton for `cluster` under `kernel`: the cached copy when
    /// the entry is resident, a fresh deterministic build otherwise.
    /// Returns `None` only for [`ScanKernel::Interpreted`], which has no
    /// automaton.
    ///
    /// The returned [`Arc`] stays valid regardless of later evictions or
    /// invalidations — the cache only ever drops *its own* reference.
    pub fn get_or_build(
        &mut self,
        cluster: &Cluster,
        background: &BackgroundModel,
        kernel: ScanKernel,
    ) -> Option<Arc<ClusterAutomaton>> {
        if !kernel.uses_automaton() {
            return None;
        }
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&cluster.id) {
            entry.last_used = self.clock;
            self.hits += 1;
            return Some(Arc::clone(&entry.automaton));
        }
        self.misses += 1;
        let automaton = Arc::new(
            ClusterAutomaton::build(&cluster.pst, background, kernel)
                .expect("automaton-backed kernel"),
        );
        let bytes = automaton.table_bytes();
        self.entries.insert(
            cluster.id,
            Entry {
                automaton: Arc::clone(&automaton),
                bytes,
                last_used: self.clock,
            },
        );
        self.resident_bytes += bytes;
        self.enforce_budget(cluster.id);
        Some(automaton)
    }

    /// Evicts least-recently-used entries until the budget holds. The
    /// just-touched entry `keep` is evicted only as a last resort (when it
    /// alone exceeds the budget) so a hot entry is never thrashed by its
    /// own insertion.
    fn enforce_budget(&mut self, keep: usize) {
        while self.resident_bytes > self.budget_bytes {
            let victim = self
                .entries
                .iter()
                .filter(|(&id, _)| id != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&id, _)| id);
            let victim = match victim {
                Some(id) => id,
                // Only `keep` is left; drop it too if it busts the budget
                // on its own (the caller's Arc keeps it alive for the
                // pass in flight).
                None => keep,
            };
            self.remove(victim);
            self.evictions += 1;
        }
    }

    fn remove(&mut self, id: usize) {
        if let Some(entry) = self.entries.remove(&id) {
            self.resident_bytes -= entry.bytes;
        }
    }

    /// Drops the entry for `id` (a cluster whose PST just changed). No-op
    /// when the entry is not resident.
    pub fn invalidate(&mut self, id: usize) {
        self.remove(id);
    }

    /// Keeps only entries whose cluster id satisfies `live` — called
    /// after consolidation removes or merges clusters.
    pub fn retain_live<F: Fn(usize) -> bool>(&mut self, live: F) {
        let dead: Vec<usize> = self
            .entries
            .keys()
            .copied()
            .filter(|&id| !live(id))
            .collect();
        for id in dead {
            self.remove(id);
        }
    }

    /// Drops everything (e.g. on a kernel change).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.resident_bytes = 0;
    }

    /// Table bytes currently retained by the cache.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The configured retention budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `id` currently has a resident automaton.
    pub fn contains(&self, id: usize) -> bool {
        self.entries.contains_key(&id)
    }

    /// Lifetime (hits, misses, evictions) — misses equal builds.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_pst::PstParams;
    use cluseq_seq::SequenceDatabase;

    fn fixture(n: usize) -> (SequenceDatabase, BackgroundModel, Vec<Cluster>) {
        let texts: Vec<String> = (0..n)
            .map(|i| {
                let unit = ["ab", "bc", "ca", "abc"][i % 4];
                unit.repeat(8 + i)
            })
            .collect();
        let db = SequenceDatabase::from_strs(texts.iter().map(String::as_str));
        let bg = db.background();
        let params = PstParams::default().with_significance(2);
        let clusters = (0..n)
            .map(|i| Cluster::from_seed(i, i, db.sequence(i), db.alphabet().len(), params))
            .collect();
        (db, bg, clusters)
    }

    #[test]
    fn cached_automata_scan_identically_to_fresh_builds() {
        let (db, bg, clusters) = fixture(4);
        for kernel in [
            ScanKernel::Compiled,
            ScanKernel::Batched,
            ScanKernel::Quantized,
        ] {
            let mut cache = ModelCache::with_budget_mb(64);
            for cluster in &clusters {
                let cached = cache.get_or_build(cluster, &bg, kernel).unwrap();
                let fresh = ClusterAutomaton::build(&cluster.pst, &bg, kernel).unwrap();
                for probe in 0..db.len() {
                    let seq = db.sequence(probe).symbols();
                    assert_eq!(
                        cached.scan(seq).log_sim.to_bits(),
                        fresh.scan(seq).log_sim.to_bits(),
                        "kernel={kernel} cluster={} probe={probe}",
                        cluster.id
                    );
                }
            }
        }
    }

    #[test]
    fn interpreted_kernel_gets_no_automaton_and_caches_nothing() {
        let (_db, bg, clusters) = fixture(1);
        let mut cache = ModelCache::with_budget_mb(1);
        assert!(cache
            .get_or_build(&clusters[0], &bg, ScanKernel::Interpreted)
            .is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0, 0));
    }

    #[test]
    fn second_touch_is_a_hit_not_a_rebuild() {
        let (_db, bg, clusters) = fixture(2);
        let mut cache = ModelCache::with_budget_mb(64);
        let first = cache
            .get_or_build(&clusters[0], &bg, ScanKernel::Compiled)
            .unwrap();
        let second = cache
            .get_or_build(&clusters[0], &bg, ScanKernel::Compiled)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit must reuse the build");
        assert_eq!(cache.stats(), (1, 1, 0));
    }

    #[test]
    fn eviction_is_lru_and_rebuilds_are_invisible() {
        let (_db, bg, clusters) = fixture(3);
        let sizes: Vec<usize> = clusters
            .iter()
            .map(|c| {
                ClusterAutomaton::build(&c.pst, &bg, ScanKernel::Compiled)
                    .unwrap()
                    .table_bytes()
            })
            .collect();
        // Budget for exactly two of the three automata.
        let budget = sizes[0] + sizes[1].max(sizes[2]);
        let mut cache = ModelCache::new(budget);
        let a0 = cache
            .get_or_build(&clusters[0], &bg, ScanKernel::Compiled)
            .unwrap();
        cache.get_or_build(&clusters[1], &bg, ScanKernel::Compiled);
        // Touch 0 again so 1 is the LRU victim when 2 arrives.
        cache.get_or_build(&clusters[0], &bg, ScanKernel::Compiled);
        cache.get_or_build(&clusters[2], &bg, ScanKernel::Compiled);
        assert!(cache.contains(0) && cache.contains(2) && !cache.contains(1));
        assert!(cache.resident_bytes() <= cache.budget_bytes());
        // The rebuilt entry scans bit-identically to the pre-eviction one.
        let rebuilt = cache
            .get_or_build(&clusters[1], &bg, ScanKernel::Compiled)
            .unwrap();
        let reference =
            ClusterAutomaton::build(&clusters[1].pst, &bg, ScanKernel::Compiled).unwrap();
        let probe: Vec<cluseq_seq::Symbol> = (0..8).map(|i| cluseq_seq::Symbol(i % 3)).collect();
        assert_eq!(
            rebuilt.scan(&probe).log_sim.to_bits(),
            reference.scan(&probe).log_sim.to_bits()
        );
        drop(a0);
    }

    #[test]
    fn an_oversized_entry_is_returned_but_not_retained() {
        let (_db, bg, clusters) = fixture(1);
        let mut cache = ModelCache::new(0);
        let arc = cache
            .get_or_build(&clusters[0], &bg, ScanKernel::Compiled)
            .unwrap();
        assert!(arc.table_bytes() > 0, "the caller still gets the build");
        assert!(cache.is_empty(), "0-budget cache retains nothing");
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn invalidate_and_retain_live_drop_entries_and_bytes() {
        let (_db, bg, clusters) = fixture(4);
        let mut cache = ModelCache::with_budget_mb(64);
        for c in &clusters {
            cache.get_or_build(c, &bg, ScanKernel::Quantized);
        }
        assert_eq!(cache.len(), 4);
        cache.invalidate(2);
        assert!(!cache.contains(2));
        cache.retain_live(|id| id == 0);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(0));
        let expected = ClusterAutomaton::build(&clusters[0].pst, &bg, ScanKernel::Quantized)
            .unwrap()
            .table_bytes();
        assert_eq!(cache.resident_bytes(), expected);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }
}
