//! CLUSEQ — efficient and effective sequence clustering
//! (Yang & Wang, ICDE 2003).
//!
//! CLUSEQ groups symbol sequences into (possibly overlapping) clusters by
//! their *sequential* statistical features. Each cluster is modeled by the
//! conditional probability distribution of the next symbol given a
//! preceding segment, held in a [probabilistic suffix tree](cluseq_pst);
//! the similarity of a sequence to a cluster is the largest ratio, over all
//! of its contiguous segments, between the probability of generating the
//! segment under the cluster's model and under a memoryless background
//! model. The algorithm iterates new-cluster generation, re-clustering,
//! and cluster consolidation, adapting both the number of clusters and the
//! similarity threshold automatically.
//!
//! # Quickstart
//!
//! ```
//! use cluseq_core::{Cluseq, CluseqParams};
//! use cluseq_seq::SequenceDatabase;
//!
//! // Two obvious groups: "ab"-repeats and "ba"-prefixed "c"-runs.
//! let texts: Vec<String> = (0..40)
//!     .map(|i| {
//!         if i % 2 == 0 {
//!             "abababababababab".to_string()
//!         } else {
//!             "ccccccccccccccc".to_string()
//!         }
//!     })
//!     .collect();
//! let db = SequenceDatabase::from_strs(texts.iter().map(|s| s.as_str()));
//!
//! let params = CluseqParams::default()
//!     .with_initial_clusters(2)
//!     .with_significance(2)
//!     .with_seed(7);
//! let outcome = Cluseq::new(params).run(&db);
//! assert!(outcome.cluster_count() >= 2);
//! ```
//!
//! To watch a run instead of just reading its end state, pass a
//! [`telemetry::RunObserver`] to [`Cluseq::run_observed`] — the bundled
//! [`telemetry::RunReport`] records per-iteration phase timings, cluster
//! lifecycle counts, threshold trajectory, and model sizes.

#![warn(missing_docs)]

pub mod algorithm;
pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod consolidate;
pub mod failpoint;
pub mod incremental;
pub mod kernel;
pub mod models;
pub mod online;
pub mod order;
pub mod outcome;
pub mod persist;
pub mod recluster;
pub mod score;
pub mod seeding;
pub mod serve;
pub mod similarity;
pub mod telemetry;
pub mod threshold;
pub mod trace;

pub use algorithm::Cluseq;
pub use checkpoint::Checkpoint;
pub use cluster::Cluster;
pub use config::{CheckpointPolicy, CluseqParams, ConsolidationMode, ScanKernel, ScanMode};
pub use failpoint::{FailPlan, FailingReader, FailingWriter};
pub use incremental::SimilarityCache;
pub use kernel::ClusterAutomaton;
pub use models::ModelCache;
pub use online::{OnlineCluseq, OnlineReport};
pub use order::ExaminationOrder;
pub use outcome::{CluseqOutcome, IterationStats};
pub use recluster::ScanOptions;
pub use score::ScoreEngine;
pub use serve::{ServeConfig, Server, ServerHandle};
pub use similarity::{
    max_similarity, max_similarity_compiled, max_similarity_compiled_batch,
    max_similarity_compiled_bounded, max_similarity_pst, max_similarity_pst_with_scratch,
    max_similarity_quantized, max_similarity_quantized_batch, max_similarity_quantized_bounded,
    prune_count, BoundedSimilarity, LogSim, SegmentSimilarity, BATCH_LANES,
};
pub use telemetry::{
    CheckpointEvent, IterationRecord, NoopObserver, ResumeInfo, RunObserver, RunReport,
};
pub use trace::{TraceConfig, TraceSession};
