//! Sequence examination orders (paper §6.3).
//!
//! The paper compares three orders for the per-iteration sequence scan:
//! fixed (by id — the default, avoiding random disk I/O), random (a fresh
//! permutation each iteration), and cluster-based (all sequences of one
//! previous-iteration cluster examined consecutively — shown to trap the
//! algorithm in local optima at 65% accuracy vs 82–83%).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The order in which sequences are examined during re-clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExaminationOrder {
    /// Ascending sequence id, identical every iteration (paper default).
    Fixed,
    /// A fresh random permutation every iteration.
    Random,
    /// Sequences grouped by the cluster they belonged to after the previous
    /// iteration (unclustered sequences last). Included because the paper
    /// demonstrates it *harms* quality.
    ClusterBased,
}

impl ExaminationOrder {
    /// Produces the examination order for one iteration.
    ///
    /// `previous_best` maps each sequence to the cluster slot it was
    /// assigned to after the previous iteration (`None` = unclustered);
    /// only `ClusterBased` consults it.
    pub fn sequence_order(
        self,
        n: usize,
        previous_best: &[Option<usize>],
        rng: &mut impl Rng,
    ) -> Vec<usize> {
        match self {
            ExaminationOrder::Fixed => (0..n).collect(),
            ExaminationOrder::Random => {
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(rng);
                order
            }
            ExaminationOrder::ClusterBased => {
                debug_assert_eq!(previous_best.len(), n);
                let mut order: Vec<usize> = (0..n).collect();
                // Stable sort: within a cluster, ids stay ascending.
                // Unclustered sequences (None) sort last.
                order.sort_by_key(|&i| match previous_best.get(i).copied().flatten() {
                    Some(c) => (0usize, c),
                    None => (1usize, 0),
                });
                order
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_order_is_the_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let order = ExaminationOrder::Fixed.sequence_order(5, &[None; 5], &mut rng);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_order_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut order = ExaminationOrder::Random.sequence_order(50, &[None; 50], &mut rng);
        order.sort_unstable();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn random_order_differs_between_draws() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = ExaminationOrder::Random.sequence_order(50, &[None; 50], &mut rng);
        let b = ExaminationOrder::Random.sequence_order(50, &[None; 50], &mut rng);
        assert_ne!(a, b, "two draws from the same rng should differ");
    }

    #[test]
    fn cluster_based_groups_members() {
        let mut rng = StdRng::seed_from_u64(1);
        let prev = vec![Some(1), Some(0), None, Some(1), Some(0)];
        let order = ExaminationOrder::ClusterBased.sequence_order(5, &prev, &mut rng);
        // Cluster 0 first (ids 1, 4), then cluster 1 (0, 3), then outliers.
        assert_eq!(order, vec![1, 4, 0, 3, 2]);
    }

    #[test]
    fn cluster_based_with_no_history_is_stable() {
        let mut rng = StdRng::seed_from_u64(1);
        let order = ExaminationOrder::ClusterBased.sequence_order(4, &[None; 4], &mut rng);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
