//! Ablation benchmarks for the design choices DESIGN.md calls out: the
//! reversed-tree longest-significant-suffix lookup, smoothing, greedy
//! farthest-first seeding, and the (non-paper) PST-rebuild variant. Each
//! measures the *whole clustering run* under the toggled choice, so the
//! numbers show the end-to-end cost/benefit, and prints the quality
//! alongside (Criterion measures time; quality is asserted to stderr once
//! per configuration).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cluseq_core::{Cluseq, CluseqParams, ConsolidationMode};
use cluseq_datagen::SyntheticSpec;
use cluseq_eval::{Confusion, MatchStrategy};
use cluseq_seq::SequenceDatabase;

fn workload() -> SequenceDatabase {
    SyntheticSpec {
        sequences: 200,
        clusters: 5,
        avg_len: 120,
        alphabet: 60,
        outlier_fraction: 0.05,
        seed: 31,
    }
    .generate()
}

fn base_params() -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(5)
        .with_significance(8)
        .with_max_depth(6)
        .with_max_iterations(20)
        .with_seed(2)
}

fn report_quality(db: &SequenceDatabase, name: &str, params: CluseqParams) {
    let outcome = Cluseq::new(params).run(db);
    let c = Confusion::new(
        &db.labels(),
        &outcome.membership_lists(),
        MatchStrategy::Hungarian,
    );
    eprintln!(
        "[ablation quality] {name}: accuracy {:.3}, {} clusters",
        c.accuracy(),
        outcome.cluster_count()
    );
}

fn bench_ablations(c: &mut Criterion) {
    let db = workload();
    let configs: Vec<(&str, CluseqParams)> = vec![
        ("baseline", base_params()),
        ("no_smoothing", {
            let mut p = base_params();
            p.smoothing = None;
            p
        }),
        ("random_seeding", {
            // sample_factor 1 ⇒ the greedy pass degenerates to taking the
            // random sample as-is: ablates farthest-first selection.
            base_params().with_sample_factor(1)
        }),
        ("rebuild_psts", base_params().with_pst_rebuild(true)),
        ("shallow_memory", base_params().with_max_depth(2)),
        ("no_threshold_adjust", {
            base_params()
                .with_threshold_adjustment(false)
                .with_initial_threshold(2.0)
        }),
        (
            "merge_consolidation",
            base_params().with_consolidation(ConsolidationMode::MergeIntoCovering),
        ),
    ];

    let mut group = c.benchmark_group("cluseq_ablations");
    group.sample_size(10);
    for (name, params) in &configs {
        report_quality(&db, name, params.clone());
        group.bench_with_input(BenchmarkId::new("variant", name), params, |b, params| {
            b.iter(|| {
                let outcome = Cluseq::new(params.clone()).run(&db);
                black_box(outcome.cluster_count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
