//! The re-clustering scan under both [`ScanMode`]s and several thread
//! counts (the tentpole measurement for the deterministic parallel
//! scoring engine).
//!
//! Two groups:
//!
//! * `scan` — one `recluster` call over grown cluster models. Each
//!   iteration clones the cluster state first (the scan mutates it); the
//!   clone cost is identical across variants, so relative numbers are
//!   conservative but comparable.
//! * `pipeline` — the whole `Cluseq::run`, where seeding, the scan
//!   (snapshot mode only), and the final assignment pass all ride the
//!   engine.
//!
//! Snapshot results are bit-identical across thread counts — asserted by
//! the test suite, so this harness only measures.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cluseq_core::recluster::{recluster, ScanOptions};
use cluseq_core::{Cluseq, CluseqParams, Cluster, ScanMode};
use cluseq_datagen::SyntheticSpec;
use cluseq_seq::SequenceDatabase;

fn workload() -> SequenceDatabase {
    // The figure-6 family of workloads, at a laptop-friendly size.
    SyntheticSpec {
        sequences: 400,
        clusters: 5,
        avg_len: 150,
        alphabet: 60,
        outlier_fraction: 0.05,
        seed: 31,
    }
    .generate()
}

fn params() -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(5)
        .with_significance(8)
        .with_max_depth(6)
        .with_max_iterations(20)
        .with_seed(2)
}

/// Grown cluster models + the state a scan needs, prepared once.
struct ScanFixture {
    db: SequenceDatabase,
    clusters: Vec<Cluster>,
    log_t: f64,
    order: Vec<usize>,
    background: cluseq_seq::BackgroundModel,
}

fn scan_fixture() -> ScanFixture {
    let db = workload();
    // A full run produces realistic grown models and a converged
    // threshold; benchmark one more scan from that state.
    let outcome = Cluseq::new(params()).run(&db);
    let background = db.background();
    let order: Vec<usize> = (0..db.len()).collect();
    ScanFixture {
        log_t: outcome.final_log_t,
        clusters: outcome.clusters,
        background,
        order,
        db,
    }
}

fn bench_scan(c: &mut Criterion) {
    let fx = scan_fixture();
    let mut group = c.benchmark_group("scan");
    group.throughput(Throughput::Elements(
        (fx.db.len() * fx.clusters.len()) as u64,
    ));
    group.bench_function("incremental/1", |b| {
        b.iter(|| {
            let mut clusters = fx.clusters.clone();
            recluster(
                &fx.db,
                &mut clusters,
                fx.log_t,
                &fx.order,
                &fx.background,
                ScanOptions::default(),
            )
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("snapshot", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut clusters = fx.clusters.clone();
                    recluster(
                        &fx.db,
                        &mut clusters,
                        fx.log_t,
                        &fx.order,
                        &fx.background,
                        ScanOptions {
                            mode: ScanMode::Snapshot,
                            threads,
                            ..ScanOptions::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let db = workload();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(db.len() as u64));
    group.bench_function("incremental/1", |b| {
        b.iter(|| Cluseq::new(params()).run(black_box(&db)))
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("snapshot", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    Cluseq::new(
                        params()
                            .with_scan_mode(ScanMode::Snapshot)
                            .with_threads(threads),
                    )
                    .run(black_box(&db))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scan, bench_pipeline);
criterion_main!(benches);
