//! Criterion benchmark: the paper's §2 complexity argument, measured.
//!
//! Comparing two cluster models by variational distance or KL divergence
//! enumerates all O(|ℑ|^L) segments up to length L; the prediction-based
//! similarity the paper adopts instead scores a concrete sequence in a
//! single scan. This bench pits the two against each other as L grows —
//! the divergence cost explodes exponentially while the similarity scan
//! stays flat.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cluseq_core::max_similarity_pst;
use cluseq_datagen::ClusterModel;
use cluseq_pst::{divergence, Pst, PstParams};
use cluseq_seq::{BackgroundModel, Sequence};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALPHABET: usize = 10;

fn model(key: u64) -> Pst {
    let mut rng = StdRng::seed_from_u64(key);
    let gen = ClusterModel::new(ALPHABET, key);
    let mut pst = Pst::new(
        ALPHABET,
        PstParams::default().with_max_depth(8).with_significance(3),
    );
    for _ in 0..5 {
        let seq: Sequence = gen.sample_sequence(500, &mut rng);
        pst.add_sequence(&seq);
    }
    pst
}

fn bench_divergence_blowup(c: &mut Criterion) {
    let a = model(1);
    let b = model(2);
    let mut group = c.benchmark_group("model_comparison_cost");
    group.sample_size(10);

    // The paper's rejected approach: exponential in the context length.
    for max_len in [2usize, 3, 4, 5] {
        eprintln!(
            "[divergence] L = {max_len}: {} segments to enumerate",
            divergence::segment_space(ALPHABET, max_len)
        );
        group.bench_with_input(
            BenchmarkId::new("variational_distance_L", max_len),
            &max_len,
            |bch, &l| bch.iter(|| black_box(divergence::variational_distance(&a, &b, l))),
        );
    }

    // The paper's adopted approach: score a representative sequence under
    // the other model — linear in the sequence, regardless of L.
    let mut rng = StdRng::seed_from_u64(9);
    let probe = ClusterModel::new(ALPHABET, 2).sample_sequence(500, &mut rng);
    let bg = BackgroundModel::uniform(ALPHABET);
    group.bench_function("prediction_similarity_scan", |bch| {
        bch.iter(|| black_box(max_similarity_pst(&a, &bg, probe.symbols()).log_sim))
    });
    group.finish();
}

criterion_group!(benches, bench_divergence_blowup);
criterion_main!(benches);
